"""Table 1 — failure-free total time: standard TCP vs ST-TCP.

Regenerates the paper's Table 1 rows (§6.1).  Expected shape: every
ST-TCP row matches the Standard TCP row to well under 1% for every
application and every heartbeat interval — "ST-TCP does not incur any
performance overhead over the standard TCP".
"""

from __future__ import annotations

import pytest

from repro.apps.workload import bulk_workload, echo_workload, interactive_workload
from repro.harness.experiments import format_table1, table1
from repro.harness.runner import run_workload
from repro.sttcp.config import STTCPConfig
from repro.util.units import MB

from benchmarks.conftest import run_once


def test_table1_full(benchmark, scale, store):
    """The whole table, printed in the paper's layout."""
    records = run_once(benchmark, lambda: table1(scale, store=store))
    print()
    print(format_table1(records))
    standard = records[0]
    for row in records[1:]:
        for column in (key for key in row if key != "config"):
            assert row[column] == pytest.approx(standard[column], rel=0.05)


@pytest.mark.parametrize(
    "workload",
    [echo_workload(100), interactive_workload(100), bulk_workload(1 * MB)],
    ids=["echo", "interactive", "bulk-1MB"],
)
@pytest.mark.parametrize("mode", ["standard", "sttcp-50ms"])
def test_table1_cell(benchmark, workload, mode):
    """One (workload, protocol) cell — the benchmark unit of Table 1."""
    sttcp = STTCPConfig(hb_interval=0.05) if mode == "sttcp-50ms" else None

    def cell():
        return run_workload(workload, sttcp=sttcp, seed=100, deadline=600.0)

    run = run_once(benchmark, cell)
    run.require_clean()
    print(f"\n{mode} {workload.name}: {run.total_time:.3f}s simulated")

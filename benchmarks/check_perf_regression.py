#!/usr/bin/env python
"""Fail when sim-kernel benchmark throughput regresses past tolerance.

Compares the ``events_per_sec`` figures a pytest-benchmark run attached to
``extra_info`` (``BENCH_simcore.json``) against the committed baseline in
``benchmarks/BENCH_baseline.json``::

    PYTHONPATH=src python -m pytest benchmarks/bench_simcore.py \
        --benchmark-json=BENCH_simcore.json
    python benchmarks/check_perf_regression.py BENCH_simcore.json

Exit status is non-zero if any benchmark present in both files dropped by
more than the tolerance (default 20%; override with ``--tolerance`` or the
``BENCH_TOLERANCE`` env var — useful on slow shared runners, where absolute
numbers are noisy).  Benchmarks missing from the baseline only warn, so
adding a benchmark does not break CI; refresh the baseline afterwards with
``--update`` (on a quiet machine) and commit it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_baseline.json"
DEFAULT_TOLERANCE = 0.20


#: Gated ``extra_info`` metrics.  ``events_per_sec`` keeps the bare
#: benchmark name (the historical key shape); further metrics get a
#: ``name[metric]`` key so one benchmark can gate several rates —
#: ``bench_scale.py`` gates simulator, segment, and connection
#: throughput, ``bench_cluster.py`` adds completed failover pairs per
#: second, and ``bench_simcore.py`` gates the segment-pool ingest rate.
METRICS = (
    "events_per_sec",
    "segments_per_sec",
    "connections_per_sec",
    "pairs_per_sec",
)


def load_throughputs(bench_json: Path) -> dict:
    """``{benchmark name[metric]: rate}`` from a pytest-benchmark JSON."""
    data = json.loads(bench_json.read_text())
    throughputs = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        for metric in METRICS:
            value = extra.get(metric)
            if value is not None:
                key = (
                    bench["name"]
                    if metric == "events_per_sec"
                    else f"{bench['name']}[{metric}]"
                )
                throughputs[key] = float(value)
    return throughputs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed baseline"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional drop (default 0.20, env BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    args = parser.parse_args(argv)

    current = load_throughputs(args.bench_json)
    if not current:
        print(f"error: no events_per_sec extra_info in {args.bench_json}")
        return 2

    if args.update:
        baseline = {
            "note": "events/sec floor for check_perf_regression.py; "
            "refresh with --update on a quiet machine",
            "benchmarks": {name: round(value) for name, value in sorted(current.items())},
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found (run with --update first)")
        return 2
    reference = json.loads(args.baseline.read_text())["benchmarks"]

    failures = []
    for name, value in sorted(current.items()):
        base = reference.get(name)
        if base is None:
            print(f"warn: {name}: no baseline entry ({value:,.0f} events/s now)")
            continue
        change = value / base - 1.0
        status = "ok"
        if change < -args.tolerance:
            status = "REGRESSION"
            failures.append(name)
        print(
            f"{status:>10}  {name}: {value:,.0f} events/s "
            f"vs baseline {base:,.0f} ({change:+.1%})"
        )

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

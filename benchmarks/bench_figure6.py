"""Figure 6 — Bulk transfer total time vs size, with and without failover.

Expected shape: both curves grow linearly in the transfer size, offset by
an approximately size-independent failover gap; at short HB intervals the
gap is "insignificant compared to the total time taken" (§6.2).
"""

from __future__ import annotations

from repro.harness.experiments import figure6, format_figure6

from benchmarks.conftest import run_once


def test_figure6(benchmark, scale, store):
    points = run_once(
        benchmark, lambda: figure6(scale, hb_grid=(0.05, 0.2), store=store)
    )
    print()
    print(format_figure6(points))
    by_hb = {}
    for point in points:
        by_hb.setdefault(point["hb"], []).append(point)
    for hb, series in by_hb.items():
        series.sort(key=lambda p: p["size"])
        # Monotonic growth in size for both curves.
        no_failure = [p["no_failure_time"] for p in series]
        with_failure = [p["failure_time"] for p in series]
        assert no_failure == sorted(no_failure)
        assert all(w > n for w, n in zip(with_failure, no_failure))
        # The failover gap does not grow with the size.
        gaps = [p["failover_time"] for p in series]
        assert max(gaps) < min(gaps) + 4 * hb + 2.0
    # At 50 ms HB, the gap is a small fraction of the largest transfer.
    largest = max(by_hb[0.05], key=lambda p: p["size"])
    assert largest["failover_time"] < largest["no_failure_time"]

"""Ablation benchmarks A1–A4 (design choices DESIGN.md calls out).

* A1 — §4.3 acknowledgment strategy (X / SyncTime) on an upload stream.
* A2 — ST-TCP vs the FT-TCP restart-and-replay baseline.
* A3 — double-failure masking via the packet logger (§3.2).
* A4 — UDP-channel overhead vs the second-buffer size (§4.3 arithmetic).
* A5 — heartbeat miss threshold: robustness vs detection speed (§4.4).
"""

from __future__ import annotations

from repro.harness.experiments import (
    ablation_detection,
    ablation_ftcp,
    ablation_logger,
    ablation_overhead,
    ablation_sync,
)
from repro.harness.tables import format_table, rows_from_records
from repro.util.units import KB

from benchmarks.conftest import run_once


def test_ablation_sync_strategy(benchmark, store):
    records = run_once(
        benchmark,
        lambda: ablation_sync(
            upload_size=512 * KB,
            sync_times=(0.05, 1.0),
            x_fractions=(0.25, 0.75, 1.0),
            store=store,
        ),
    )
    print()
    print(
        format_table(
            ["sync_time", "x_fraction", "total_time", "acks_sent", "retention_peak", "overflow_peak"],
            rows_from_records(records, ["sync_time", "x_fraction", "total_time", "acks_sent", "retention_peak", "overflow_peak"]),
            title="A1: acknowledgment strategy (upload 512 KB)",
        )
    )
    # Smaller X → more acks → less retention pressure.
    small_x = [r for r in records if r["x_fraction"] == 0.25]
    large_x = [r for r in records if r["x_fraction"] == 1.0]
    assert min(r["acks_sent"] for r in small_x) > max(r["acks_sent"] for r in large_x)
    assert min(r["retention_peak"] for r in small_x) <= min(
        r["retention_peak"] for r in large_x
    )


def test_ablation_ftcp_comparison(benchmark, store):
    records = run_once(
        benchmark,
        lambda: ablation_ftcp(bulk_size=256 * KB, crash_fractions=(0.25, 0.75), store=store),
    )
    print()
    print(
        format_table(
            ["protocol", "crash_fraction", "failover_time", "detection_latency"],
            rows_from_records(records, ["protocol", "crash_fraction", "failover_time", "detection_latency"]),
            title="A2: ST-TCP vs FT-TCP failover",
        )
    )
    st = {r["crash_fraction"]: r["failover_time"] for r in records if r["protocol"] == "ST-TCP"}
    ft = {r["crash_fraction"]: r["failover_time"] for r in records if r["protocol"] == "FT-TCP"}
    # FT-TCP is always slower, and its penalty grows with history.
    for fraction in st:
        assert ft[fraction] > st[fraction]
    assert (ft[0.75] - st[0.75]) > (ft[0.25] - st[0.25])


def test_ablation_logger_double_failure(benchmark, store):
    records = run_once(benchmark, lambda: ablation_logger(store=store))
    print()
    print(
        format_table(
            ["logger", "completed", "verified", "logger_bytes_recovered"],
            rows_from_records(records, ["logger", "completed", "verified", "logger_bytes_recovered"]),
            title="A3: double-failure masking",
            float_format="{:.0f}",
        )
    )
    by_logger = {r["logger"]: r for r in records}
    assert by_logger[True]["completed"] and by_logger[True]["verified"]
    assert not by_logger[False]["completed"]


def test_ablation_channel_overhead(benchmark, store):
    records = run_once(
        benchmark,
        lambda: ablation_overhead(upload_size=512 * KB, second_buffers=(4 * KB, 16 * KB, 32 * KB), store=store),
    )
    print()
    print(
        format_table(
            ["second_buffer", "x_bytes", "acks_sent", "overhead_percent"],
            rows_from_records(records, ["second_buffer", "x_bytes", "acks_sent", "overhead_percent"]),
            title="A4: UDP-channel overhead vs second-buffer size",
        )
    )
    # Overhead shrinks as the second buffer (and hence X) grows.
    overheads = [r["overhead_percent"] for r in records]
    assert overheads == sorted(overheads, reverse=True)
    # The paper's 4 KB arithmetic (§4.3) lands in the right band.
    assert 3.0 < records[0]["overhead_percent"] < 9.0


def test_ablation_detection_threshold(benchmark, store):
    records = run_once(
        benchmark, lambda: ablation_detection(thresholds=(1, 2, 3, 5), store=store)
    )
    print()
    print(
        format_table(
            ["threshold", "wrong_suspicion", "service_ok_after", "detection_latency", "failover_time"],
            rows_from_records(records, ["threshold", "wrong_suspicion", "service_ok_after", "detection_latency", "failover_time"]),
            title="A5: heartbeat miss threshold under 30% channel loss",
        )
    )
    by_threshold = {int(r["threshold"]): r for r in records}
    # Endpoints are decisive; the middle of the sweep depends on how the
    # (seeded) 30% loss pattern happens to cluster.  Threshold 1 trips
    # almost surely, threshold 5 is robust even at this harsh loss rate.
    assert by_threshold[1]["wrong_suspicion"]
    assert not by_threshold[5]["wrong_suspicion"]
    # STONITH keeps even wrong suspicions transparent to the client.
    assert all(r["service_ok_after"] for r in records)
    # Detection latency grows with the threshold.
    latencies = [by_threshold[t]["detection_latency"] for t in (1, 2, 3, 5)]
    assert latencies == sorted(latencies)

"""Cluster fabric benchmark: failover throughput and election latency.

Runs the shipped ``smoke`` scenario (2 primaries, 2-host backup pool,
mid-run crash → fenced takeover → replacement election → re-shadow) and
gates two rates via ``check_perf_regression.py``:

* ``events_per_sec`` — simulator throughput with the full fabric
  (switch, GVI multicast, per-pair engines, arbiter) in the event path;
* ``pairs_per_sec`` — completed client/service pairs per wall second,
  the end-to-end cost of one verified failover story.

Election latency is simulated time, hence deterministic — it is asserted
against the scenario's budget here (no baseline noise) and exported as
``election_sync_ms`` for the benchmark artifact.
"""

from __future__ import annotations

from repro.cluster import run_cluster
from repro.harness.experiments import resolve_scenario


def test_cluster_smoke_failover(benchmark):
    spec = resolve_scenario("smoke")
    record = benchmark.pedantic(lambda: run_cluster(spec), rounds=3, iterations=1)
    invariants = record["invariants"]
    assert record["ok"], invariants
    assert record["clients_verified"]
    # Deterministic sim-time gates: the takeover and every election
    # (takeover replacement *and* orphan re-shadow) within budget.
    assert record["takeover_latency"] <= invariants["takeover_budget"]
    sync_latencies = [e["sync_latency"] for e in record["elections"]]
    assert sync_latencies and all(
        latency is not None and latency <= invariants["election_budget"]
        for latency in sync_latencies
    )
    mean = benchmark.stats.stats.mean
    pairs = len(record["pairs"])
    print(
        f"\ncluster smoke: {record['sim_events']} events, {pairs} pairs, "
        f"{record['sim_events'] / mean:,.0f} events/s, "
        f"{pairs / mean:,.1f} pairs/s, "
        f"max election sync {max(sync_latencies) * 1000:.1f} ms (sim)"
    )
    benchmark.extra_info["events"] = record["sim_events"]
    benchmark.extra_info["events_per_sec"] = round(record["sim_events"] / mean)
    benchmark.extra_info["pairs_per_sec"] = round(pairs / mean)
    benchmark.extra_info["election_sync_ms"] = round(max(sync_latencies) * 1000, 2)

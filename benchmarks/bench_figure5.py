"""Figures 5(a) and 5(b) — Echo/Interactive total time vs HB interval.

Expected shape: the with-failure curve grows roughly linearly in the
heartbeat interval while the no-failure curve stays flat (§6.2,
"the failover time is directly dependent on the HB interval").
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import figure5, format_figure5

from benchmarks.conftest import run_once

#: Reduced sweep for the default benchmark run.
QUICK_SWEEP = (0.05, 0.2, 0.5, 1.0)


@pytest.mark.parametrize("application", ["echo", "interactive"], ids=["5a", "5b"])
def test_figure5(benchmark, scale, store, application):
    points = run_once(
        benchmark,
        lambda: figure5(application, scale, hb_sweep=QUICK_SWEEP, store=store),
    )
    print()
    print(format_figure5(points, application))
    # No-failure curve flat; with-failure curve increasing.
    no_failure = [p["no_failure_time"] for p in points]
    assert max(no_failure) - min(no_failure) < 0.1 * max(no_failure) + 0.05
    with_failure = [p["failure_time"] for p in points]
    assert with_failure[-1] > with_failure[0]
    # Failover grows at least linearly with HB across the sweep ends.
    ratio = points[-1]["failover_time"] / points[0]["failover_time"]
    assert ratio > (QUICK_SWEEP[-1] / QUICK_SWEEP[0]) * 0.3

"""Sim-kernel microbenchmarks: raw scheduler throughput + one bulk run.

These track the engine itself rather than a paper artefact.  CI runs them
with ``--benchmark-json=BENCH_simcore.json`` so the events/sec trajectory
is recorded per commit; each benchmark also attaches its throughput to
``extra_info`` in that JSON.
"""

from __future__ import annotations

from repro.apps.workload import bulk_workload
from repro.harness.runner import run_workload
from repro.metrics import perf
from repro.net.segment_pool import SegmentPool
from repro.sim.datapath import DATAPATH_ENV
from repro.sim.scheduler import Scheduler
from repro.util.bytespan import as_span
from repro.util.units import MB

#: Events per round for the scheduler microbenchmarks.
EVENTS = 50_000

#: Segment-pool microbenchmark shape: app-sized writes carved into
#: MSS-sized segments, the send path's actual access pattern.
POOL_CHUNK = 32 * 1024
POOL_MSS = 1460
POOL_CHUNKS = 1_000
#: MSS segments carved out of one chunk / the whole round.
POOL_SLICES = len(range(0, POOL_CHUNK - POOL_MSS + 1, POOL_MSS))
POOL_SEGMENTS = POOL_CHUNKS * POOL_SLICES


def _noop() -> None:
    pass


def test_scheduler_dispatch(benchmark):
    """Push/pop throughput of the bare event heap (no cancellations)."""

    def setup():
        scheduler = Scheduler()
        for i in range(EVENTS):
            scheduler.schedule_at(i * 1e-6, _noop)
        return (scheduler,), {}

    def drain(scheduler):
        scheduler.run_until()
        return scheduler.executed_count

    executed = benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    assert executed == EVENTS
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_scheduler_dispatch_object_arm(benchmark, monkeypatch):
    """The same drain pinned to ``REPRO_DATAPATH=object`` (per-event
    ``run_next`` dispatch).

    The gap between this number and ``test_scheduler_dispatch`` is what
    slot-drain batching buys; the perf gate holds both arms so a
    regression in either is visible.  The arm is read at scheduler
    construction, so flipping the env var inside ``setup`` is enough.
    """
    monkeypatch.setenv(DATAPATH_ENV, "object")

    def setup():
        scheduler = Scheduler()
        assert not scheduler._batch  # pinned to the reference dispatch loop
        for i in range(EVENTS):
            scheduler.schedule_at(i * 1e-6, _noop)
        return (scheduler,), {}

    def drain(scheduler):
        scheduler.run_until()
        return scheduler.executed_count

    executed = benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    assert executed == EVENTS
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_scheduler_dispatch_with_cancellations(benchmark):
    """Same drain with 75% of entries cancelled — the lazy-discard path.

    This is the TCP shape: most retransmission timers are cancelled by an
    ACK long before they fire, so ``run_next_before`` spends much of its
    time skipping dead heap entries.
    """

    def setup():
        scheduler = Scheduler()
        live = 0
        for i in range(EVENTS):
            handle = scheduler.schedule_at(i * 1e-6, _noop)
            if i % 4:
                handle.cancel()
            else:
                live += 1
        return (scheduler, live), {}

    def drain(scheduler, live):
        scheduler.run_until()
        return scheduler.executed_count == live

    assert benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_scheduler_dispatch_with_cancellations_heap_backend(benchmark):
    """The same cancellation-heavy drain pinned to the heap-only backend.

    Tracks what the timing wheel buys us: the gap between this number and
    ``test_scheduler_dispatch_with_cancellations`` is the wheel's win.
    """

    def setup():
        scheduler = Scheduler(wheel=False)
        live = 0
        for i in range(EVENTS):
            handle = scheduler.schedule_at(i * 1e-6, _noop)
            if i % 4:
                handle.cancel()
            else:
                live += 1
        return (scheduler, live), {}

    def drain(scheduler, live):
        scheduler.run_until()
        return scheduler.executed_count == live

    assert benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_segment_pool_slice_fanout(benchmark):
    """Pooled send-path throughput: one copy in, zero-copy MSS slicing.

    Each round ingests app-sized writes and carves every one into MSS
    segments — the send buffer's access pattern, where a payload is
    copied once into a slab and then sliced for first transmission,
    retransmission, and the backup tap without further copies.  Spans
    are dropped batch-by-batch so slabs cycle through the free list,
    and the stats assert steady state runs on reuse, not allocation.
    """
    chunk = bytes(POOL_CHUNK)

    def setup():
        return (SegmentPool(),), {}

    def run(pool):
        live = []
        for _ in range(POOL_CHUNKS):
            span = pool.ingest(chunk)
            for offset in range(0, POOL_CHUNK - POOL_MSS + 1, POOL_MSS):
                live.append(span.slice(offset, offset + POOL_MSS))
            if len(live) >= 512:
                live.clear()  # delivered: slabs flow back via refcount
        live.clear()
        return pool

    pool = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    stats = pool.stats()
    assert stats["segments_pooled"] == POOL_CHUNKS
    # Steady state runs off the free list: far fewer slab allocations
    # than slab acquisitions.
    assert stats["slabs_reused"] > stats["pool_misses"]
    benchmark.extra_info["segments_per_sec"] = round(
        POOL_SEGMENTS / benchmark.stats.stats.mean
    )


def test_segment_pool_fresh_bytes_baseline(benchmark):
    """The object-arm span path the pool replaces: ``RealBytes`` ingest
    (a fresh ``bytes`` copy) plus a *copying* ``slice`` per MSS segment
    — the baseline that makes the pooled number meaningful in the JSON
    trajectory."""
    chunk = bytes(POOL_CHUNK)

    def run():
        live = []
        for _ in range(POOL_CHUNKS):
            span = as_span(chunk)
            for offset in range(0, POOL_CHUNK - POOL_MSS + 1, POOL_MSS):
                live.append(span.slice(offset, offset + POOL_MSS))
            if len(live) >= 512:
                live.clear()
        live.clear()
        return True

    assert benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["segments_per_sec"] = round(
        POOL_SEGMENTS / benchmark.stats.stats.mean
    )


def test_bulk_transfer_1mb(benchmark):
    """End-to-end kernel throughput: a full 1 MB bulk transfer."""

    def run():
        with perf.track() as probe:
            run_workload(bulk_workload(1 * MB), seed=42, deadline=600.0).require_clean()
        return probe.telemetry()

    telemetry = benchmark.pedantic(run, rounds=3, iterations=1)
    print(
        f"\n1 MB bulk: {telemetry['events']} events, "
        f"{telemetry['sim_seconds']:.2f} sim-s, "
        f"{telemetry['events_per_sec']:,.0f} events/s"
    )
    benchmark.extra_info["events"] = telemetry["events"]
    benchmark.extra_info["events_per_sec"] = round(telemetry["events_per_sec"])

"""Sim-kernel microbenchmarks: raw scheduler throughput + one bulk run.

These track the engine itself rather than a paper artefact.  CI runs them
with ``--benchmark-json=BENCH_simcore.json`` so the events/sec trajectory
is recorded per commit; each benchmark also attaches its throughput to
``extra_info`` in that JSON.
"""

from __future__ import annotations

from repro.apps.workload import bulk_workload
from repro.harness.runner import run_workload
from repro.metrics import perf
from repro.sim.scheduler import Scheduler
from repro.util.units import MB

#: Events per round for the scheduler microbenchmarks.
EVENTS = 50_000


def _noop() -> None:
    pass


def test_scheduler_dispatch(benchmark):
    """Push/pop throughput of the bare event heap (no cancellations)."""

    def setup():
        scheduler = Scheduler()
        for i in range(EVENTS):
            scheduler.schedule_at(i * 1e-6, _noop)
        return (scheduler,), {}

    def drain(scheduler):
        scheduler.run_until()
        return scheduler.executed_count

    executed = benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    assert executed == EVENTS
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_scheduler_dispatch_with_cancellations(benchmark):
    """Same drain with 75% of entries cancelled — the lazy-discard path.

    This is the TCP shape: most retransmission timers are cancelled by an
    ACK long before they fire, so ``run_next_before`` spends much of its
    time skipping dead heap entries.
    """

    def setup():
        scheduler = Scheduler()
        live = 0
        for i in range(EVENTS):
            handle = scheduler.schedule_at(i * 1e-6, _noop)
            if i % 4:
                handle.cancel()
            else:
                live += 1
        return (scheduler, live), {}

    def drain(scheduler, live):
        scheduler.run_until()
        return scheduler.executed_count == live

    assert benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_scheduler_dispatch_with_cancellations_heap_backend(benchmark):
    """The same cancellation-heavy drain pinned to the heap-only backend.

    Tracks what the timing wheel buys us: the gap between this number and
    ``test_scheduler_dispatch_with_cancellations`` is the wheel's win.
    """

    def setup():
        scheduler = Scheduler(wheel=False)
        live = 0
        for i in range(EVENTS):
            handle = scheduler.schedule_at(i * 1e-6, _noop)
            if i % 4:
                handle.cancel()
            else:
                live += 1
        return (scheduler, live), {}

    def drain(scheduler, live):
        scheduler.run_until()
        return scheduler.executed_count == live

    assert benchmark.pedantic(drain, setup=setup, rounds=5, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(EVENTS / benchmark.stats.stats.mean)


def test_bulk_transfer_1mb(benchmark):
    """End-to-end kernel throughput: a full 1 MB bulk transfer."""

    def run():
        with perf.track() as probe:
            run_workload(bulk_workload(1 * MB), seed=42, deadline=600.0).require_clean()
        return probe.telemetry()

    telemetry = benchmark.pedantic(run, rounds=3, iterations=1)
    print(
        f"\n1 MB bulk: {telemetry['events']} events, "
        f"{telemetry['sim_seconds']:.2f} sim-s, "
        f"{telemetry['events_per_sec']:,.0f} events/s"
    )
    benchmark.extra_info["events"] = telemetry["events"]
    benchmark.extra_info["events_per_sec"] = round(telemetry["events_per_sec"])

"""Observability microbenchmarks: trace emit and flight-recorder cost.

The flight recorder is designed to fly on every drill and every harness
run, so its per-record cost is a hot-path number worth pinning.  Both
benchmarks attach throughput to ``extra_info`` (as ``events_per_sec``,
one record = one event) so ``check_perf_regression.py`` gates them
against ``BENCH_baseline.json`` like the scheduler benchmarks.
"""

from __future__ import annotations

from repro.obs.recorder import FlightRecorder
from repro.sim.trace import Tracer

#: Records per round.
RECORDS = 200_000


def test_trace_emit_disabled(benchmark):
    """The cost left in a hot path when nobody is listening: one
    ``enabled_for`` check, no record built."""
    tracer = Tracer()

    def emit_all():
        emitted = 0
        for i in range(RECORDS):
            if tracer.enabled_for("tcp"):
                tracer.emit(i * 1e-6, "tcp", "send", seq=i)
                emitted += 1
        return emitted

    assert benchmark.pedantic(emit_all, rounds=5, iterations=1) == 0
    benchmark.extra_info["events_per_sec"] = round(
        RECORDS / benchmark.stats.stats.mean
    )


def test_trace_emit_flight_recorder(benchmark):
    """Records/sec through a wildcard flight recorder — the always-on
    black-box configuration every drill runs with."""

    def setup():
        tracer = Tracer()
        flight = FlightRecorder()
        tracer.add_sink(flight)
        return (tracer, flight), {}

    def emit_all(tracer, flight):
        for i in range(RECORDS):
            tracer.emit(i * 1e-6, "tcp", "send", seq=i, length=1400)
        return flight.total_records

    total = benchmark.pedantic(emit_all, setup=setup, rounds=5, iterations=1)
    assert total == RECORDS
    benchmark.extra_info["events_per_sec"] = round(
        RECORDS / benchmark.stats.stats.mean
    )


def test_tsdb_sampling_overhead(benchmark):
    """Dispatch throughput with the TSDB sampling a populated registry.

    The acceptance bound: sampling on the default cadence adds at most
    5% over the identical run with no TSDB attached.  Both arms are
    timed as best-of-rounds (min is the noise-robust statistic on a
    shared runner); the gated ``events_per_sec`` additionally pins the
    absolute throughput trajectory in ``BENCH_baseline.json``.
    """
    from repro.obs.timeseries import TimeSeriesDB
    from repro.sim.simulator import Simulator

    events = 50_000
    step = 1e-5  # 50k events = 0.5 sim-s = 10 samples at the 50ms cadence

    def build(with_tsdb):
        sim = Simulator(seed=1)
        # A populated registry: a few hosts' worth of instruments.
        counters = [
            sim.metrics.counter(f"h{h}.tcp.{name}")
            for h in range(4)
            for name in ("segments_in", "segments_out", "retransmits")
        ]
        for h in range(4):
            sim.metrics.gauge(f"h{h}.tcp.inflight").set(3)
            sim.metrics.histogram(f"h{h}.tcp.rtt").observe(0.01)
        hot = counters[0]
        remaining = [events]

        def tick():
            hot.inc()
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(step, tick)

        sim.schedule(0.0, tick)
        tsdb = TimeSeriesDB(sim) if with_tsdb else None
        if tsdb is not None:
            tsdb.start()
        return sim, tsdb

    def drive(with_tsdb):
        sim, _tsdb = build(with_tsdb)
        sim.run(until=events * step + 1.0)
        return sim.events_executed

    executed = benchmark.pedantic(
        drive, args=(True,), rounds=5, iterations=1, warmup_rounds=1
    )
    assert executed >= events
    benchmark.extra_info["events_per_sec"] = round(
        events / benchmark.stats.stats.mean
    )

    baseline_min = min(
        _timed(drive, False) for _ in range(5)
    )
    overhead = benchmark.stats.stats.min / baseline_min - 1.0
    benchmark.extra_info["tsdb_overhead_pct"] = round(overhead * 100, 2)
    assert overhead <= 0.05, (
        f"TSDB sampling overhead {overhead:.1%} exceeds the 5% budget"
    )


def _timed(fn, *args):
    import time

    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start

"""Observability microbenchmarks: trace emit and flight-recorder cost.

The flight recorder is designed to fly on every drill and every harness
run, so its per-record cost is a hot-path number worth pinning.  Both
benchmarks attach throughput to ``extra_info`` (as ``events_per_sec``,
one record = one event) so ``check_perf_regression.py`` gates them
against ``BENCH_baseline.json`` like the scheduler benchmarks.
"""

from __future__ import annotations

from repro.obs.recorder import FlightRecorder
from repro.sim.trace import Tracer

#: Records per round.
RECORDS = 200_000


def test_trace_emit_disabled(benchmark):
    """The cost left in a hot path when nobody is listening: one
    ``enabled_for`` check, no record built."""
    tracer = Tracer()

    def emit_all():
        emitted = 0
        for i in range(RECORDS):
            if tracer.enabled_for("tcp"):
                tracer.emit(i * 1e-6, "tcp", "send", seq=i)
                emitted += 1
        return emitted

    assert benchmark.pedantic(emit_all, rounds=5, iterations=1) == 0
    benchmark.extra_info["events_per_sec"] = round(
        RECORDS / benchmark.stats.stats.mean
    )


def test_trace_emit_flight_recorder(benchmark):
    """Records/sec through a wildcard flight recorder — the always-on
    black-box configuration every drill runs with."""

    def setup():
        tracer = Tracer()
        flight = FlightRecorder()
        tracer.add_sink(flight)
        return (tracer, flight), {}

    def emit_all(tracer, flight):
        for i in range(RECORDS):
            tracer.emit(i * 1e-6, "tcp", "send", seq=i, length=1400)
        return flight.total_records

    total = benchmark.pedantic(emit_all, setup=setup, rounds=5, iterations=1)
    assert total == RECORDS
    benchmark.extra_info["events_per_sec"] = round(
        RECORDS / benchmark.stats.stats.mean
    )

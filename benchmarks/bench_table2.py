"""Table 2 — failover time across heartbeat intervals (§6.2).

Expected shape: failover ≈ 3–4 × HB interval plus client RTO alignment;
sub-second at 50 ms HB, tens of seconds at 5 s HB, and roughly
independent of the application/transfer size.
"""

from __future__ import annotations

import pytest

from repro.apps.workload import bulk_workload, echo_workload
from repro.harness.experiments import format_table2, table2
from repro.harness.runner import measure_failover_time
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB

from benchmarks.conftest import run_once


def test_table2_full(benchmark, scale, store):
    records = run_once(benchmark, lambda: table2(scale, store=store))
    print()
    print(format_table2(records))
    # Monotonic in the heartbeat interval for every workload column.
    columns = [key for key in records[0] if key != "config"]
    for column in columns:
        values = [record[column] for record in records]  # hb descending
        assert values == sorted(values, reverse=True)


@pytest.mark.parametrize("hb", [0.2, 0.05], ids=["hb-200ms", "hb-50ms"])
def test_table2_echo_cell(benchmark, hb):
    sample = run_once(
        benchmark,
        lambda: measure_failover_time(
            echo_workload(50), STTCPConfig(hb_interval=hb), seed=200
        ),
    )
    print(
        f"\nHB={hb}s: failover={sample['failover_time']:.3f}s "
        f"(detect={sample['detection_latency']:.3f}s)"
    )
    assert 3 * hb <= sample["detection_latency"] <= 4 * hb + 0.02
    assert sample["failover_time"] < 4 * hb + 2.0


def test_table2_failover_size_independent(benchmark):
    """Failover does not grow with the transfer size (unlike FT-TCP)."""
    def measure():
        config = STTCPConfig(hb_interval=0.05)
        small = measure_failover_time(bulk_workload(256 * KB), config, seed=201)
        large = measure_failover_time(bulk_workload(1024 * KB), config, seed=201)
        return small, large

    small, large = run_once(benchmark, measure)
    print(
        f"\n256KB: {small['failover_time']:.3f}s, 1MB: {large['failover_time']:.3f}s"
    )
    assert large["failover_time"] < small["failover_time"] + 1.0

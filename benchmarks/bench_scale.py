"""Connection-churn throughput: one mid-size rung of the scale ladder.

Guards the complexity contract of the indexed backup bookkeeping
(docs/SCALE.md): per-segment work on the backup is O(changed state), so
events/sec must not collapse as the connection count grows.  CI runs
this with ``--benchmark-json`` and gates the simulator throughput
(``events_per_sec``), the datapath segment rate (``segments_per_sec``),
and the workload-level open rate (``connections_per_sec``) via
``check_perf_regression.py``.
"""

from __future__ import annotations

from repro.harness.experiments import scale_ladder

#: Simultaneous connections for the benchmark rung — big enough that a
#: linear-scan regression on the backup's per-segment path is visible,
#: small enough for CI.
RUNG = 500


def test_churn_rung_500(benchmark):
    def run():
        # No store: a cached cell would measure a dict lookup, not a rung.
        return scale_ladder(ladder=(RUNG,), store=None)[0]

    record = benchmark.pedantic(run, rounds=3, iterations=1)
    assert record["verified"], record["failures"]
    assert record["degraded"] == 0
    assert record["leftover_shadows"] == 0
    assert record["leftover_backup_tcbs"] == 0
    mean = benchmark.stats.stats.mean
    print(
        f"\nchurn rung {RUNG}: {record['sim_events']} events, "
        f"{record['total_opens']} opens, "
        f"{record['sim_events'] / mean:,.0f} events/s, "
        f"{record['sim_segments'] / mean:,.0f} segments/s, "
        f"{record['total_opens'] / mean:,.0f} conns/s"
    )
    benchmark.extra_info["events"] = record["sim_events"]
    benchmark.extra_info["events_per_sec"] = round(record["sim_events"] / mean)
    benchmark.extra_info["segments_per_sec"] = round(record["sim_segments"] / mean)
    benchmark.extra_info["connections_per_sec"] = round(record["total_opens"] / mean)

"""Shared benchmark utilities.

Benchmarks default to a reduced grid so ``pytest benchmarks/`` finishes in
tens of seconds; set ``REPRO_PAPER_SCALE=1`` to run the paper's full grid
(100 MB bulk transfers, 5 s heartbeats, three repetitions — several
minutes of wall clock).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import default_scale
from repro.harness.results import ResultStore


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def store(tmp_path_factory):
    """One result store for the whole benchmark session.

    Grid benchmarks write through it, so a cell shared between two
    benchmarks executes once; rerunning against a kept store resumes
    instead of recomputing (point it somewhere stable via REPRO_STORE
    to benefit across sessions).
    """
    import os

    path = os.environ.get("REPRO_STORE")
    if path is None:
        path = tmp_path_factory.mktemp("results") / "results.jsonl"
    return ResultStore(path)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment cells are deterministic simulations — repeating them
    measures the same events again — so a single round is both honest
    and fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Shared benchmark utilities.

Benchmarks default to a reduced grid so ``pytest benchmarks/`` finishes in
tens of seconds; set ``REPRO_PAPER_SCALE=1`` to run the paper's full grid
(100 MB bulk transfers, 5 s heartbeats, three repetitions — several
minutes of wall clock).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import default_scale


@pytest.fixture(scope="session")
def scale():
    return default_scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment cells are deterministic simulations — repeating them
    measures the same events again — so a single round is both honest
    and fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Drill-harness throughput: scripts/sec over a fixed fast subset.

Tracks the cost of the conformance harness itself (topology build, the
scripted peer, post-hoc matching) so drill-corpus growth stays cheap.
CI feeds the JSON to ``check_perf_regression.py`` via the
``events_per_sec`` figure, like the sim-kernel benchmarks.
"""

from __future__ import annotations

from pathlib import Path

from repro.drill import load_script, run_drill_file
from repro.drill.runner import run_program

SCRIPTS_DIR = Path(__file__).parent.parent / "tests" / "drill" / "scripts"

#: A fast, behaviour-diverse subset (handshake, dup-ACK path, teardown).
SUBSET = [
    "t01_handshake_3way.py",
    "t14_out_of_order_immediate_ack.py",
    "t16_fin_passive_close.py",
]


def test_drill_subset_throughput(benchmark):
    paths = [SCRIPTS_DIR / name for name in SUBSET]

    def run_subset():
        events = 0
        for path in paths:
            result, env = run_program(load_script(path))
            assert result.passed, result.failure
            events += env.sim.events_executed
        return events

    events = benchmark.pedantic(run_subset, rounds=5, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(events / mean)
    benchmark.extra_info["scripts_per_sec"] = round(len(SUBSET) / mean, 2)


def test_drill_single_script_runs(benchmark):
    """End-to-end latency of one drill via the public entry point."""

    def run_one():
        return run_drill_file(SCRIPTS_DIR / "t01_handshake_3way.py")

    result = benchmark.pedantic(run_one, rounds=5, iterations=1)
    assert result.passed
    benchmark.extra_info["scripts_per_sec"] = round(
        1.0 / benchmark.stats.stats.mean, 2
    )

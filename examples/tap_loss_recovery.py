#!/usr/bin/env python3
"""Tap-loss repair and double-failure masking (§4.2, §3.2).

Part 1 — the backup's Ethernet tap drops 5% of frames (the IP-buffer-
overflow scenario): the UDP channel quietly repairs every hole while the
client notices nothing.

Part 2 — a *double failure*: the tap blacks out entirely and the primary
crashes before the channel can repair the gap.  Without a packet logger
the connection is unrecoverable; with one, the backup replays the missing
client bytes from the logger's memory and the upload completes verified.

Run:  python examples/tap_loss_recovery.py
"""

from repro.apps.workload import upload_workload
from repro.errors import SimulationError
from repro.faults.injection import add_tap_loss, add_tap_outage
from repro.harness.calibrate import PAPER_TESTBED
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB, MB


def part_one() -> None:
    print("Part 1: lossy tap, healthy primary")
    scenario = Scenario(
        profile=PAPER_TESTBED,
        sttcp=STTCPConfig(hb_interval=0.05, retx_request_timeout=0.02),
        seed=11,
    )
    rng = scenario.sim.random.stream("demo-tap-loss")
    model = add_tap_loss(scenario.backup.nics[0], rng, rate=0.05)
    run = run_workload(upload_workload(1 * MB), scenario=scenario).require_clean()
    scenario.sim.run(until=scenario.sim.now + 1.0)  # let repairs finish
    backup = scenario.pair.backup_engine
    print(f"  upload completed in {run.total_time:.3f} s, verified={run.result.verified}")
    print(f"  tap dropped {model.dropped} frames")
    print(f"  backup sent {backup.retx_requests_sent} RETX_REQUESTs and "
          f"recovered {backup.retx_bytes_recovered} bytes over the UDP channel")
    shadow = backup.shadow_connections[0]
    print(f"  shadow receive stream complete through byte "
          f"{shadow.recv_buffer.rcv_nxt_offset}\n")


def part_two(with_logger: bool) -> None:
    label = "with logger" if with_logger else "WITHOUT logger"
    print(f"Part 2 ({label}): tap outage + primary crash inside it")
    scenario = Scenario(
        profile=PAPER_TESTBED,
        sttcp=STTCPConfig(hb_interval=0.05, use_logger=with_logger),
        with_logger=with_logger,
        seed=12,
    )
    add_tap_outage(scenario.backup.nics[0], 0.15, 0.25)
    try:
        run = run_workload(
            upload_workload(512 * KB), scenario=scenario, crash_at=0.249, deadline=1500.0
        )
        completed = run.result.error is None
        detail = f"in {run.total_time:.3f} s, verified={run.result.verified}"
    except SimulationError:
        completed, detail = False, "(client gave up after exhausting retransmissions)"
    backup = scenario.pair.backup_engine
    if completed:
        print(f"  upload completed {detail}")
    else:
        print(f"  upload FAILED {detail}")
    if with_logger:
        print(f"  logger replayed {backup.logger_bytes_recovered} bytes the "
              f"dead primary could no longer provide")
    print()


def main() -> None:
    part_one()
    part_two(with_logger=False)
    part_two(with_logger=True)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cascading failover with two ranked backups (extension of §3).

The paper allows "one or more backup servers".  This demo runs a long
echo session against a group of one primary and two active backups, then
kills the primary — and, a second later, kills the backup that took over.
The client's single TCP connection survives both crashes.

Run:  python examples/cascading_failover.py
"""

from repro.apps.client import run_client
from repro.apps.workload import echo_workload
from repro.harness.calibrate import FAST_LAN
from repro.harness.scenario import Scenario
from repro.sim.trace import TraceRecord
from repro.sttcp.config import STTCPConfig

EVENTS = {"crash", "primary_suspected", "takeover", "promoted", "adopt_new_primary",
          "stonith", "non_fault_tolerant_mode"}


def narrate(record: TraceRecord) -> None:
    if record.event in EVENTS:
        fields = " ".join(f"{k}={v}" for k, v in record.fields.items())
        print(f"  [{record.time:7.3f}s] {record.event} {fields}")


def main() -> None:
    scenario = Scenario(
        profile=FAST_LAN,
        sttcp=STTCPConfig(hb_interval=0.05, takeover_grace=0.1),
        backups=2,
        seed=42,
    )
    scenario.sim.trace.add_sink(narrate, categories=["sttcp", "host"])
    scenario.start_service()

    process_box = []
    scenario.sim.schedule_at(
        0.1,
        lambda: process_box.append(
            run_client(scenario.client, scenario.service_addr, echo_workload(10000))
        ),
    )
    scenario.crash_injector.crash_at(scenario.primary, 0.2)   # first crash
    scenario.crash_injector.crash_at(scenario.backup, 1.0)    # second crash

    print("client: 10,000 echo exchanges against the virtual service IP")
    scenario.sim.run(until=0.1)
    result = scenario.sim.run_until_complete(process_box[0], deadline=300.0)

    print(f"\nclient finished : {result.exchanges_done} exchanges, "
          f"verified={result.verified}, total {result.total_time:.3f}s")
    print(f"max service gap : {result.max_gap * 1e3:.0f} ms per failover")
    print(f"now serving     : {scenario.pair.active_host.name} "
          f"(rank {scenario.pair.active_engine.rank})")
    print("one connection, three servers, two crashes — zero client changes.")


if __name__ == "__main__":
    main()

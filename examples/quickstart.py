#!/usr/bin/env python3
"""Quickstart: a fault-tolerant TCP service in ~40 lines.

Builds the paper's testbed (client, primary, backup on one Ethernet hub),
deploys an ST-TCP server pair, runs a standard TCP client against the
virtual service address, and crashes the primary mid-run.  The client —
which knows nothing about ST-TCP — finishes its run with every byte
verified.

Run:  python examples/quickstart.py
"""

from repro.apps.workload import echo_workload
from repro.harness.calibrate import PAPER_TESTBED
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.sttcp.config import STTCPConfig


def main() -> None:
    # 1. A failure-free run: ST-TCP behaves exactly like standard TCP.
    workload = echo_workload(exchanges=100)
    baseline = run_workload(
        workload,
        profile=PAPER_TESTBED,
        sttcp=STTCPConfig(hb_interval=0.05),
        seed=1,
    ).require_clean()
    print(f"failure-free run : {baseline.total_time:.3f} s "
          f"({workload.exchanges} echo exchanges, all verified)")

    # 2. The same run with the primary crashing halfway through.
    scenario = Scenario(profile=PAPER_TESTBED, sttcp=STTCPConfig(hb_interval=0.05), seed=1)
    crash_at = 0.1 + baseline.total_time / 2
    failed = run_workload(workload, scenario=scenario, crash_at=crash_at).require_clean()
    metrics = scenario.pair.failover_metrics()

    print(f"run with failover: {failed.total_time:.3f} s")
    print(f"  primary crashed       t={metrics.primary_crashed_at:.3f} s")
    print(f"  backup suspected it   +{metrics.detection_latency * 1e3:.0f} ms")
    print(f"  connections taken over +{metrics.takeover_latency * 1e3:.0f} ms")
    print(f"  failover cost          {failed.total_time - baseline.total_time:.3f} s")
    print(f"  client saw            {'NOTHING — same socket, every byte verified' if failed.result.verified else 'corruption (bug!)'}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A narrated failover: watch the ST-TCP protocol do its job.

Runs a bulk download (ftp-like, §6) with the primary crashing mid-
transfer, and prints the protocol-level events as they happen — shadow
attach, ISN rebase, heartbeat suspicion, STONITH, takeover, go-back-N
retransmission — followed by the client's progress timeline around the
failover gap.

Run:  python examples/failover_demo.py
"""

from repro.apps.workload import bulk_workload
from repro.harness.calibrate import PAPER_TESTBED
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.sim.trace import TraceRecord
from repro.sttcp.config import STTCPConfig
from repro.util.units import MB, fmt_time

INTERESTING = {
    "shadow_attach",
    "primary_attach",
    "isn_rebase",
    "suspect",
    "stonith",
    "takeover",
    "crash",
    "non_fault_tolerant_mode",
}


def narrate(record: TraceRecord) -> None:
    if record.event in INTERESTING:
        fields = " ".join(f"{k}={v}" for k, v in record.fields.items())
        print(f"  [{record.time:8.3f}s] {record.category}/{record.event} {fields}")


def main() -> None:
    workload = bulk_workload(5 * MB)
    config = STTCPConfig(hb_interval=0.05)

    baseline = run_workload(workload, profile=PAPER_TESTBED, sttcp=config, seed=7)
    baseline.require_clean()
    print(f"Baseline (no failure): {baseline.total_time:.3f} s "
          f"for a 5 MB transfer\n")

    print("Re-running with a primary crash at 50% of the transfer:")
    scenario = Scenario(profile=PAPER_TESTBED, sttcp=config, seed=7)
    scenario.sim.trace.add_sink(narrate, categories=["sttcp", "host"])
    crash_at = 0.1 + baseline.total_time / 2
    failed = run_workload(workload, scenario=scenario, crash_at=crash_at)
    failed.require_clean()

    print("\nClient progress around the failover:")
    crash = scenario.primary.crashed_at
    shown = 0
    for (time, done), (next_time, next_done) in zip(
        failed.result.timeline, failed.result.timeline[1:]
    ):
        gap = next_time - time
        if gap > 0.15:  # the stall (well above normal inter-chunk pacing)
            print(f"  ... receiving steadily until t={time:.3f}s ({done // 1024} KB)")
            print(f"  >>> SERVICE GAP of {fmt_time(gap)} "
                  f"(crash at t={crash:.3f}s, detection + takeover)")
            print(f"  ... resumed at t={next_time:.3f}s, "
                  f"finished at t={failed.result.timeline[-1][0]:.3f}s")
            shown += 1
    if not shown:
        print("  (no visible gap — failover hid inside normal pacing)")

    print(f"\nTotal with failover : {failed.total_time:.3f} s")
    print(f"Failover cost       : {failed.total_time - baseline.total_time:.3f} s")
    print(f"Max client-visible gap: {fmt_time(failed.result.max_gap)}")
    print(f"Every byte verified : {failed.result.verified}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate the paper's Tables 1–2 and Figures 5–6.

By default runs a reduced grid (~1 minute).  For the paper's full grid —
bulk transfers up to 100 MB, heartbeats up to 5 s, three repetitions —
set ``REPRO_PAPER_SCALE=1`` (expect several minutes of wall clock).

Tables are read out of the resumable result store (``results/results.jsonl``
unless ``$REPRO_STORE`` points elsewhere): cells already in the store are
not recomputed, so a second invocation is instant and an interrupted full
grid resumes where it stopped.  ``--jobs N`` runs cells on N processes.

Run:  python examples/paper_tables.py [--quick] [--jobs N]
"""

import sys
import time

from repro.harness.experiments import (
    default_scale,
    figure5,
    figure6,
    format_figure5,
    format_figure6,
    format_table1,
    format_table2,
    table1,
    table2,
    QUICK_SCALE,
)
from repro.harness.results import ResultStore, default_store_path


def main() -> None:
    scale = QUICK_SCALE if "--quick" in sys.argv else default_scale()
    jobs = 1
    if "--jobs" in sys.argv:
        jobs = int(sys.argv[sys.argv.index("--jobs") + 1])
    store = ResultStore(default_store_path())
    print(f"scale: echo×{scale.echo_exchanges}, interactive×{scale.interactive_exchanges}, "
          f"bulk {[s // 1024 for s in scale.bulk_sizes]} KB, "
          f"HB grid {list(scale.hb_grid)}, {scale.repeats} repeat(s)")
    print(f"store: {store.path} ({len(store)} cached cells), jobs={jobs}\n")

    start = time.time()
    print(format_table1(table1(scale, jobs=jobs, store=store)))
    print()
    print(format_table2(table2(scale, jobs=jobs, store=store)))
    print()
    sweep = (0.05, 0.2, 1.0) if scale is QUICK_SCALE else (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)
    print(format_figure5(figure5("echo", scale, hb_sweep=sweep, jobs=jobs, store=store), "echo"))
    print()
    print(format_figure5(figure5("interactive", scale, hb_sweep=sweep, jobs=jobs, store=store), "interactive"))
    print()
    print(format_figure6(figure6(scale, hb_grid=scale.hb_grid[-2:], jobs=jobs, store=store)))
    print(f"\n(wall clock: {time.time() - start:.1f} s)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""ST-TCP vs FT-TCP: why active shadowing beats restart-and-replay (§2).

Measures failover time for both protocols on the same workload, seed and
detection settings, crashing the primary at increasing points in the
connection's life.  FT-TCP pays process restart plus a replay of the
whole history; ST-TCP's active backup takes over in a few heartbeats
regardless of history.

Run:  python examples/ftcp_comparison.py
"""

from repro.apps.workload import upload_workload
from repro.ftcp.baseline import FTCPConfig
from repro.harness.calibrate import PAPER_TESTBED
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.harness.tables import format_table
from repro.sttcp.config import STTCPConfig
from repro.util.units import MB


def measure(config, crash_fraction: float, seed: int = 21) -> float:
    workload = upload_workload(2 * MB)
    baseline = run_workload(
        workload,
        scenario=Scenario(profile=PAPER_TESTBED, sttcp=config, seed=seed),
    ).require_clean()
    scenario = Scenario(profile=PAPER_TESTBED, sttcp=config, seed=seed)
    crash_at = 0.1 + crash_fraction * baseline.total_time
    failed = run_workload(workload, scenario=scenario, crash_at=crash_at).require_clean()
    return failed.total_time - baseline.total_time


def main() -> None:
    rows = []
    for fraction in (0.1, 0.5, 0.9):
        st = measure(STTCPConfig(hb_interval=0.2), fraction)
        ft = measure(FTCPConfig(hb_interval=0.2), fraction)
        rows.append([f"{int(fraction * 100)}%", st, ft, ft / st])
    print(
        format_table(
            ["crash point", "ST-TCP failover (s)", "FT-TCP failover (s)", "ratio"],
            rows,
            title="Failover cost vs connection history (2 MB upload, 200 ms HB)",
        )
    )
    print(
        "\nST-TCP's failover is flat — the backup already holds the state.\n"
        "FT-TCP's grows with history — it must replay everything the\n"
        "connection ever received (the paper's §2 critique)."
    )


if __name__ == "__main__":
    main()

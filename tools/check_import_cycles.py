#!/usr/bin/env python
"""Fail when the `repro` package contains an import cycle.

The engine decomposition's layering rule: `repro.tcp` must not import
from `repro.sttcp` or `repro.obs` (extensions plug into the core, never
the other way around), and the module graph as a whole must stay
acyclic.  Pure stdlib — AST-walks every module under src/repro, records
intra-package imports, and runs Tarjan's SCC to find cycles.

Imports made only under ``typing.TYPE_CHECKING`` are ignored: they are
erased at runtime and exist exactly so the type layer can reference the
facade without creating a real cycle.

Usage::

    python tools/check_import_cycles.py [--root src/repro]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

#: Core packages and the packages they must never (transitively) import.
#: The cluster fabric sits strictly above the engines: `repro.cluster`
#: may import `repro.sttcp`/`repro.tcp`, never the reverse.
LAYERING_RULES = {
    "repro.tcp": (
        "repro.sttcp",
        "repro.obs",
        "repro.drill",
        "repro.harness",
        "repro.cluster",
    ),
    "repro.sttcp": ("repro.cluster",),
    "repro.sim": ("repro.tcp", "repro.sttcp", "repro.net"),
    # The observability layer consumes run *records* (plain dicts), never
    # live fabric objects: the SLO engine reads scenario budgets out of
    # record["invariants"] precisely so this edge stays absent.
    "repro.obs": ("repro.cluster", "repro.harness", "repro.drill"),
}


def module_name(path: Path, root: Path) -> str:
    relative = path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id == "typing"
    )


def iter_runtime_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Yield imports executed at module-import time.

    Skips ``if TYPE_CHECKING:`` bodies (erased at runtime) and function
    bodies (lazy imports are the sanctioned way to break a cycle); class
    bodies and try/if blocks do run at import time and are walked.
    """
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
            stack.extend(node.orelse)
        elif hasattr(node, "body"):
            for field in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, field, []):
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    elif isinstance(child, ast.stmt):
                        stack.append(child)


def build_graph(root: Path) -> Dict[str, Set[str]]:
    modules = {module_name(p, root): p for p in root.rglob("*.py")}
    graph: Dict[str, Set[str]] = {name: set() for name in modules}
    for name, path in modules.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in iter_runtime_imports(tree):
            targets = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                targets = [node.module] + [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
            for target in targets:
                if target in graph:
                    graph[name].add(target)
                    break
    return graph


def strongly_connected_components(graph: Dict[str, Set[str]]) -> List[List[str]]:
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def visit(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph[node]):
            if succ not in index:
                visit(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                sccs.append(sorted(component))

    sys.setrecursionlimit(10_000)
    for node in sorted(graph):
        if node not in index:
            visit(node)
    return sccs


def layering_violations(graph: Dict[str, Set[str]]) -> List[Tuple[str, str]]:
    violations = []
    for module, imports in sorted(graph.items()):
        for layer, forbidden in LAYERING_RULES.items():
            if module == layer or module.startswith(layer + "."):
                for target in sorted(imports):
                    if any(
                        target == banned or target.startswith(banned + ".")
                        for banned in forbidden
                    ):
                        violations.append((module, target))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default="src/repro", type=Path)
    args = parser.parse_args()
    graph = build_graph(args.root)
    failed = False
    for cycle in strongly_connected_components(graph):
        failed = True
        print(f"import cycle: {' -> '.join(cycle)}")
    for module, target in layering_violations(graph):
        failed = True
        print(f"layering violation: {module} imports {target}")
    if failed:
        return 1
    print(f"ok: {len(graph)} modules, no import cycles, layering respected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

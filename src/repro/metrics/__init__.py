"""Metric snapshots and experiment samples."""

from repro.metrics import perf
from repro.metrics.collectors import (
    ChannelTraffic,
    ExperimentSample,
    HostTraffic,
    summarize,
)
from repro.metrics.perf import PerfProbe

__all__ = [
    "ChannelTraffic",
    "ExperimentSample",
    "HostTraffic",
    "PerfProbe",
    "perf",
    "summarize",
]

"""Metric snapshots and experiment samples."""

from repro.metrics import perf, profile
from repro.metrics.collectors import (
    ChannelTraffic,
    ExperimentSample,
    HostTraffic,
    registry_snapshot,
    summarize,
)
from repro.metrics.perf import PerfProbe
from repro.metrics.profile import SamplingProfiler

__all__ = [
    "ChannelTraffic",
    "ExperimentSample",
    "HostTraffic",
    "PerfProbe",
    "SamplingProfiler",
    "perf",
    "profile",
    "registry_snapshot",
    "summarize",
]

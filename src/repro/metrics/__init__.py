"""Metric snapshots and experiment samples."""

from repro.metrics.collectors import (
    ChannelTraffic,
    ExperimentSample,
    HostTraffic,
    summarize,
)

__all__ = ["ChannelTraffic", "ExperimentSample", "HostTraffic", "summarize"]

"""Export experiment records to CSV/JSON and render quick summaries.

Experiment functions return lists of flat dicts; these helpers persist
them for external analysis (the CLI's ``--csv``/``--json`` flags).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Union

Record = Dict[str, Any]


def _normalise(value: Any) -> Any:
    """Make a cell JSON/CSV friendly."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        # Infinities appear for failed runs; keep them readable.
        if value == float("inf"):
            return "inf"
        return round(value, 9)
    return value


def records_to_json(records: List[Record], path: Union[str, Path]) -> Path:
    """Write records as a JSON array; returns the path written."""
    path = Path(path)
    payload = [
        {key: _normalise(value) for key, value in record.items()}
        for record in records
    ]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def records_to_csv(records: List[Record], path: Union[str, Path]) -> Path:
    """Write records as CSV with a header union of all keys."""
    path = Path(path)
    if not records:
        path.write_text("")
        return path
    columns: List[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for record in records:
            writer.writerow({key: _normalise(value) for key, value in record.items()})
    return path


def load_records(path: Union[str, Path]) -> List[Record]:
    """Read back a JSON export (round-trip helper for tests/tools)."""
    return json.loads(Path(path).read_text())

"""Perf telemetry for experiment execution.

The executor wraps every grid cell in :func:`track`; anything that drives
a :class:`~repro.sim.simulator.Simulator` to completion (notably
:func:`repro.harness.runner.run_workload`) reports the simulator via
:func:`note_simulation`.  The probe snapshots cumulative counters per
simulator instance, so re-running the same simulator (ablations reuse a
scenario for several phases) never double-counts events.

The numbers land in the result store next to each record::

    {"wall_time": ..., "sim_seconds": ..., "events": ...,
     "events_per_sec": ..., "simulations": ...}

giving the first real throughput figures for the simulation kernel.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.net.segment_pool import default_pool

_active: "contextvars.ContextVar[Optional[PerfProbe]]" = contextvars.ContextVar(
    "repro_perf_probe", default=None
)


class PerfProbe:
    """Wall-clock and simulator-counter accumulator for one tracked span."""

    __slots__ = ("started", "finished", "_sims", "_pool_base")

    def __init__(self) -> None:
        self.started = time.perf_counter()
        self.finished: Optional[float] = None
        # id(sim) → (events_executed, sim_now); latest snapshot wins, so
        # counters of a reused simulator are not added twice.
        self._sims: Dict[int, Tuple[int, float]] = {}
        # Segment-pool counters are process-cumulative; snapshot them so
        # the telemetry reports this span's deltas (deterministic per
        # cell only in the wall-clock sense — they live in telemetry,
        # never in hashed records).
        pool = default_pool()
        self._pool_base = (pool.segments_pooled, pool.pool_misses)

    def note(self, sim: Any) -> None:
        self._sims[id(sim)] = (sim.events_executed, sim.now)

    @property
    def wall_time(self) -> float:
        end = self.finished if self.finished is not None else time.perf_counter()
        return end - self.started

    @property
    def events(self) -> int:
        return sum(events for events, _now in self._sims.values())

    @property
    def sim_seconds(self) -> float:
        return sum(now for _events, now in self._sims.values())

    @property
    def simulations(self) -> int:
        return len(self._sims)

    def pool_deltas(self) -> Tuple[int, int]:
        """(segments_pooled, pool_misses) accrued since the probe started."""
        pool = default_pool()
        base_pooled, base_misses = self._pool_base
        return (
            pool.segments_pooled - base_pooled,
            pool.pool_misses - base_misses,
        )

    def telemetry(self) -> Dict[str, float]:
        wall = self.wall_time
        events = self.events
        segments_pooled, pool_misses = self.pool_deltas()
        return {
            "wall_time": wall,
            "sim_seconds": self.sim_seconds,
            "events": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "simulations": self.simulations,
            "segments_pooled": segments_pooled,
            "pool_misses": pool_misses,
        }


@contextlib.contextmanager
def track() -> Iterator[PerfProbe]:
    """Collect perf telemetry for everything simulated in this block."""
    probe = PerfProbe()
    token = _active.set(probe)
    try:
        yield probe
    finally:
        probe.finished = time.perf_counter()
        _active.reset(token)


def note_simulation(sim: Any) -> None:
    """Report a simulator's counters to the active probe (no-op without one)."""
    probe = _active.get()
    if probe is not None:
        probe.note(sim)

"""Opt-in sampling profiler attributing wall time to simulator layers.

Future perf PRs should be measured rather than guessed: this module
answers "where does the wall clock go — kernel, TCP, or net?" for any
span of simulation work, with near-zero overhead when off and a few
percent when sampling.

The profiler is a classic SIGALRM sampler: an interval timer fires every
``interval`` seconds of wall time and the handler walks the current Python
stack, crediting the sample to the innermost frame that belongs to a
``repro`` layer (and to that frame's function, for the per-function
table).  Layers are keyed off module paths::

    kernel   repro/sim
    tcp      repro/tcp, repro/sttcp, repro/ftcp
    net      repro/net, repro/ip
    app      repro/apps
    util     repro/util
    harness  repro/harness, repro/metrics, repro/faults
    external anything outside repro (pytest, stdlib, ...)

Used via the CLI/executor ``--profile`` flag, which writes the JSON
report next to the result store, or directly::

    with profile.sample(path="profile.json") as profiler:
        run_experiment("table1")
    print(profiler.report()["layers"])

Constraints: signal-based sampling only works in the main thread, and a
worker-pool run (``--jobs N``) keeps its simulation CPU in child
processes — profile with ``--jobs 1`` to attribute kernel time.
"""

from __future__ import annotations

import contextlib
import json
import signal
import time
from collections import Counter
from pathlib import Path
from types import FrameType
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError

#: Default sampling interval in seconds of wall time.
DEFAULT_INTERVAL = 0.002

#: Layer name → path fragments (probed in order; first match wins).
LAYER_PATHS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("kernel", ("repro/sim/",)),
    ("tcp", ("repro/tcp/", "repro/sttcp/", "repro/ftcp/")),
    ("net", ("repro/net/", "repro/ip/")),
    ("app", ("repro/apps/",)),
    ("util", ("repro/util/",)),
    ("harness", ("repro/harness/", "repro/metrics/", "repro/faults/")),
)


def _classify(filename: str) -> Optional[str]:
    """Layer for a source path, or None for non-repro code."""
    path = filename.replace("\\", "/")
    for layer, fragments in LAYER_PATHS:
        for fragment in fragments:
            if fragment in path:
                return layer
    if "repro/" in path:
        return "other"
    return None


#: Scheduler dispatch loops: a sample landing here is really time spent
#: *dispatching the current callback* (the call instruction itself, or a
#: C-level callback with no Python frame of its own).  Each of these
#: binds the active callback to a named local exactly so the profiler
#: can attribute the sample to the callback's layer instead of lumping
#: whole batches into "kernel".
_DISPATCH_FUNCTIONS = frozenset(
    {"_drain_ready", "_drain_ready_indexed", "_run_heap_event"}
)


def _callback_attribution(frame: FrameType) -> Optional[Tuple[str, str]]:
    """(layer, "file:func") for the dispatch frame's active callback."""
    callback = frame.f_locals.get("callback")
    if callback is None:
        return None
    function = getattr(callback, "__func__", callback)  # unwrap bound methods
    code = getattr(function, "__code__", None)
    if code is None:
        return None
    layer = _classify(code.co_filename)
    if layer is None:
        return None
    return layer, f"{Path(code.co_filename).name}:{code.co_name}"


class SamplingProfiler:
    """Wall-clock stack sampler with per-layer attribution."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ReproError(f"sampling interval must be positive, got {interval}")
        self.interval = interval
        self.samples = 0
        self.layer_samples: Counter = Counter()
        self.function_samples: Counter = Counter()  # (layer, "file:func") → n
        self.wall_time = 0.0
        self._started_at: Optional[float] = None
        self._prev_handler: Any = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    # Sampling ------------------------------------------------------------
    def _sample(self, _signum: int, frame: Optional[FrameType]) -> None:
        self.samples += 1
        walker = frame
        while walker is not None:
            code = walker.f_code
            layer = _classify(code.co_filename)
            if layer is not None:
                name = f"{Path(code.co_filename).name}:{code.co_name}"
                if code.co_name in _DISPATCH_FUNCTIONS:
                    # Batched dispatch: the innermost repro frame is the
                    # scheduler's drain loop, but the time belongs to the
                    # callback it is dispatching.
                    attributed = _callback_attribution(walker)
                    if attributed is not None:
                        layer, name = attributed
                self.layer_samples[layer] += 1
                self.function_samples[(layer, name)] += 1
                return
            walker = walker.f_back
        self.layer_samples["external"] += 1

    def start(self) -> None:
        """Install the handler and arm the interval timer (main thread only)."""
        if self.running:
            raise ReproError("profiler already running")
        try:
            self._prev_handler = signal.signal(signal.SIGALRM, self._sample)
        except ValueError as exc:  # not in the main thread
            raise ReproError(f"sampling profiler needs the main thread: {exc}") from exc
        self._started_at = time.perf_counter()
        signal.setitimer(signal.ITIMER_REAL, self.interval, self.interval)

    def stop(self) -> None:
        """Disarm the timer and restore the previous SIGALRM handler."""
        if not self.running:
            return
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, self._prev_handler or signal.SIG_DFL)
        self._prev_handler = None
        self.wall_time += time.perf_counter() - self._started_at  # type: ignore[operator]
        self._started_at = None

    # Reporting -----------------------------------------------------------
    def report(self, top: int = 20) -> Dict[str, Any]:
        """Layer-attribution report as a JSON-able dict."""
        total = self.samples or 1
        layers = {
            layer: {
                "samples": count,
                "fraction": count / total,
                "est_seconds": count / total * self.wall_time,
            }
            for layer, count in self.layer_samples.most_common()
        }
        top_functions: List[Dict[str, Any]] = [
            {
                "function": name,
                "layer": layer,
                "samples": count,
                "fraction": count / total,
            }
            for (layer, name), count in self.function_samples.most_common(top)
        ]
        return {
            "interval": self.interval,
            "samples": self.samples,
            "wall_time": self.wall_time,
            "layers": layers,
            "top_functions": top_functions,
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the report as JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.report(), indent=2, sort_keys=True) + "\n")
        return target

    def summary(self) -> str:
        """One-line human rendering of the layer split."""
        total = self.samples or 1
        parts = ", ".join(
            f"{layer} {count / total:.0%}"
            for layer, count in self.layer_samples.most_common()
        )
        return f"{self.samples} samples over {self.wall_time:.1f}s wall: {parts or 'no samples'}"


@contextlib.contextmanager
def sample(
    interval: float = DEFAULT_INTERVAL, path: Optional[Union[str, Path]] = None
) -> Iterator[SamplingProfiler]:
    """Profile the enclosed block; optionally write the JSON report."""
    profiler = SamplingProfiler(interval)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        if path is not None:
            profiler.write(path)

"""Metric collection from simulator components.

Protocol-layer counters live in the simulator's metrics registry
(:mod:`repro.obs.registry`) under ``<host>.<layer>.<name>``; components
hold the instruments and bump them inline, so snapshotting here adds no
hot-path cost.  NIC counters remain plain attributes.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional


def registry_snapshot(sim: Any, prefix: str = "") -> Dict[str, Any]:
    """Flat ``<host>.<layer>.<name>`` → value view of every registered
    instrument (histograms appear as summary dicts), optionally filtered
    by a name prefix such as ``"backup.sttcp"``."""
    return sim.metrics.snapshot(prefix)


@dataclasses.dataclass
class HostTraffic:
    """Traffic counters for one host at snapshot time."""

    name: str
    tx_frames: int
    tx_bytes: int
    rx_frames: int
    rx_bytes: int
    rx_dropped_queue: int
    rx_dropped_loss: int
    tcp_segments_demuxed: int
    tcp_resets_sent: int
    ip_forwarded: int

    @classmethod
    def capture(cls, host: Any) -> "HostTraffic":
        metrics = host.sim.metrics
        return cls(
            name=host.name,
            tx_frames=sum(nic.tx_frames for nic in host.nics),
            tx_bytes=sum(nic.tx_bytes for nic in host.nics),
            rx_frames=sum(nic.rx_frames for nic in host.nics),
            rx_bytes=sum(nic.rx_bytes for nic in host.nics),
            rx_dropped_queue=sum(nic.rx_dropped_queue for nic in host.nics),
            rx_dropped_loss=sum(nic.rx_dropped_loss for nic in host.nics),
            tcp_segments_demuxed=metrics.value(f"{host.name}.tcp.segments_demuxed"),
            tcp_resets_sent=metrics.value(f"{host.name}.tcp.resets_sent"),
            ip_forwarded=metrics.value(f"{host.name}.ip.forwarded"),
        )


@dataclasses.dataclass
class ChannelTraffic:
    """ST-TCP UDP-channel accounting (for the §4.3 overhead claim)."""

    backup_acks_sent: int
    retx_requests: int
    retx_bytes_recovered: int
    channel_datagrams: int
    channel_bytes: int

    @classmethod
    def capture(cls, pair: Any) -> "ChannelTraffic":
        backup = pair.backup_engine
        primary = pair.primary_engine
        datagrams = (
            backup.channel.sent_datagrams + primary.channel.sent_datagrams
        )
        # Bytes: approximate from message counts × 128 B plus recovered data.
        small_messages = (
            backup.acks_sent
            + backup.retx_requests_sent
            + primary.acks_received  # ack replies mirror acks received
        )
        return cls(
            backup_acks_sent=backup.acks_sent,
            retx_requests=backup.retx_requests_sent,
            retx_bytes_recovered=backup.retx_bytes_recovered,
            channel_datagrams=datagrams,
            channel_bytes=small_messages * 128 + backup.retx_bytes_recovered,
        )


@dataclasses.dataclass
class ExperimentSample:
    """One (run, configuration) measurement for harness tables."""

    label: str
    total_time: float
    failover_time: Optional[float] = None
    max_gap: Optional[float] = None
    extras: Dict[str, float] = dataclasses.field(default_factory=dict)


def summarize(samples: List[ExperimentSample]) -> Dict[str, float]:
    """Mean total time / failover time over repeated samples."""
    if not samples:
        return {}
    result = {"total_time": sum(s.total_time for s in samples) / len(samples)}
    failovers = [s.failover_time for s in samples if s.failover_time is not None]
    if failovers:
        result["failover_time"] = sum(failovers) / len(failovers)
    return result

"""Workload definitions and run results for the paper's applications.

Three applications with differing communication behaviour (§6):

* **Echo** — 100 exchanges of a 150-byte message echoed back (telnet-like).
* **Interactive** — 100 exchanges of a 150-byte request answered with
  10 KB (http-like).
* **Bulk transfer** — one 150-byte request answered with a large file of
  1/5/20/100 MB (ftp-like).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.util.units import KB, MB


@dataclasses.dataclass(frozen=True)
class AppWorkload:
    """Parameters of one client/server application run."""

    name: str
    exchanges: int
    response_size: int
    echo: bool = False
    #: Client streams ``response_size`` bytes *to* the server and gets a
    #: 150-byte receipt back (exercises the ST-TCP retention machinery).
    upload: bool = False
    #: Per-request server compute time (identical on every replica, so the
    #: determinism assumption of §3 holds).
    service_time: float = 0.0

    def total_response_bytes(self) -> int:
        from repro.apps.protocol import REQUEST_SIZE

        per_exchange = REQUEST_SIZE if self.echo else self.response_size
        return per_exchange * self.exchanges


def echo_workload(exchanges: int = 100) -> AppWorkload:
    """The Echo application: ~150-byte messages echoed back (§6)."""
    return AppWorkload("echo", exchanges=exchanges, response_size=0, echo=True)


def interactive_workload(
    exchanges: int = 100,
    response_size: int = 10 * KB,
    service_time: float = 0.010,
) -> AppWorkload:
    """The Interactive application: small request, 10 KB reply (§6).

    The default 10 ms service time calibrates the per-exchange latency to
    the paper's 20 ms (Table 1) — the cost of producing a 10 KB reply on
    the testbed's 800 MHz machines with HZ=100 scheduling.
    """
    return AppWorkload(
        "interactive",
        exchanges=exchanges,
        response_size=response_size,
        service_time=service_time,
    )


def bulk_workload(file_size: int = 1 * MB) -> AppWorkload:
    """The Bulk-transfer application: one request, a large file back (§6)."""
    return AppWorkload(f"bulk-{file_size // MB}MB" if file_size >= MB else f"bulk-{file_size}B",
                       exchanges=1, response_size=file_size)


def upload_workload(upload_size: int = 1 * MB, exchanges: int = 1) -> AppWorkload:
    """A client→server bulk upload (not in the paper's evaluation, but the
    workload that actually stresses the §4.2 second receive buffer)."""
    label = f"upload-{upload_size // MB}MB" if upload_size >= MB else f"upload-{upload_size}B"
    return AppWorkload(label, exchanges=exchanges, response_size=upload_size, upload=True)


#: The paper's bulk transfer sizes (Table 1 / Table 2 / Figure 6).
PAPER_BULK_SIZES = (1 * MB, 5 * MB, 20 * MB, 100 * MB)


@dataclasses.dataclass
class RunResult:
    """Outcome of one client run."""

    workload: AppWorkload
    start_time: float
    end_time: float
    exchanges_done: int
    bytes_received: int
    verified: bool
    bytes_sent: int = 0
    #: (time, cumulative response bytes) checkpoints for gap analysis.
    timeline: List[Tuple[float, int]] = dataclasses.field(default_factory=list)
    error: Optional[str] = None

    @property
    def total_time(self) -> float:
        return self.end_time - self.start_time

    @property
    def max_gap(self) -> float:
        """Longest interval between progress checkpoints — the
        client-visible service interruption."""
        if len(self.timeline) < 2:
            return 0.0
        return max(b[0] - a[0] for a, b in zip(self.timeline, self.timeline[1:]))

    def summary(self) -> str:
        status = "ok" if self.verified and self.error is None else f"FAILED({self.error})"
        return (
            f"{self.workload.name}: {self.total_time:.3f}s, "
            f"{self.exchanges_done} exchanges, {self.bytes_received} bytes, "
            f"max gap {self.max_gap * 1e3:.1f}ms, {status}"
        )

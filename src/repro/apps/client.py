"""The client side of the paper's applications.

Clients are *standard TCP* — nothing here knows about ST-TCP, which is the
transparency claim under test: the client must complete its run, with all
content verified, whether or not the primary crashes mid-run.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from repro.apps.protocol import (
    KIND_DATA,
    KIND_ECHO,
    KIND_UPLOAD,
    REQUEST_SIZE,
    decode_request,
    encode_request,
    upload_payload,
    verify_response,
)
from repro.apps.workload import AppWorkload, RunResult
from repro.net.addresses import IPAddress
from repro.util.bytespan import span_equal

#: Read granularity for large responses.
RECV_CHUNK = 65536


def client_session(
    host: Any,
    server_addr: Tuple[IPAddress, int],
    workload: AppWorkload,
) -> Generator:
    """Run one complete client session; returns a :class:`RunResult`.

    Total time spans connection establishment through the last response
    byte (the paper's "total time for one run").  The socket is closed
    after timing stops, so TIME_WAIT never pollutes the measurement.
    """
    sim = host.sim
    start = sim.now
    trace = sim.trace
    timeline = []

    def checkpoint(total: int) -> None:
        """Progress checkpoint: the gap-analysis timeline plus the
        app/client_progress trace marker timeline reconstruction anchors
        the outage window on (same instants, so the windows agree)."""
        timeline.append((sim.now, total))
        if trace.enabled_for("app"):
            trace.emit(sim.now, "app", "client_progress", host=host.name, bytes=total)

    checkpoint(0)
    bytes_received = 0
    bytes_sent = 0
    exchanges_done = 0
    verified = True
    error = None
    sock = host.tcp.connect(server_addr)
    try:
        yield sock.wait_connected()
        data_stream_offset = 0
        upload_stream_offset = 0
        for request_id in range(workload.exchanges):
            if workload.upload:
                kind = KIND_UPLOAD
            elif workload.echo:
                kind = KIND_ECHO
            else:
                kind = KIND_DATA
            request = encode_request(kind, workload.response_size, request_id)
            yield sock.send(request)
            if workload.upload:
                remaining = workload.response_size
                while remaining > 0:
                    piece = min(RECV_CHUNK, remaining)
                    yield sock.send(upload_payload(piece, upload_stream_offset))
                    upload_stream_offset += piece
                    bytes_sent += piece
                    remaining -= piece
                    checkpoint(bytes_sent + bytes_received)
                receipt = yield sock.recv_exactly(REQUEST_SIZE)
                record = decode_request(receipt)
                if record.response_size != workload.response_size:
                    verified = False
                bytes_received += len(receipt)
                checkpoint(bytes_sent + bytes_received)
            elif workload.echo:
                reply = yield sock.recv_exactly(REQUEST_SIZE)
                if not span_equal(reply, request):
                    verified = False
                bytes_received += len(reply)
                checkpoint(bytes_received)
            else:
                remaining = workload.response_size
                while remaining > 0:
                    chunk = yield sock.recv_exactly(min(RECV_CHUNK, remaining))
                    if not verify_response(chunk, data_stream_offset):
                        verified = False
                    data_stream_offset += len(chunk)
                    bytes_received += len(chunk)
                    remaining -= len(chunk)
                    checkpoint(bytes_received)
            exchanges_done += 1
    except Exception as exc:  # noqa: BLE001 - recorded in the result
        error = f"{type(exc).__name__}: {exc}"
    end = sim.now
    sock.close()
    return RunResult(
        workload=workload,
        start_time=start,
        end_time=end,
        exchanges_done=exchanges_done,
        bytes_received=bytes_received,
        bytes_sent=bytes_sent,
        verified=verified,
        timeline=timeline,
        error=error,
    )


def run_client(
    host: Any,
    server_addr: Tuple[IPAddress, int],
    workload: AppWorkload,
) -> Any:
    """Spawn a client session on ``host``; returns the process handle
    (its ``value`` is the :class:`RunResult`)."""
    return host.spawn(
        client_session(host, server_addr, workload),
        f"{host.name}.client.{workload.name}",
    )

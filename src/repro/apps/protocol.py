"""The request/response wire protocol shared by the paper's applications.

Every request is a fixed-size (150-byte, §6) record::

    magic(2) | kind(1) | reserved(1) | response_size(4) | request_id(4) | padding

The server answers with either an echo of the request (Echo application)
or ``response_size`` bytes of deterministic pattern data (Interactive and
Bulk applications).  Responses are a pure function of the request and the
connection's response-stream position, so a primary and a backup running
the same server produce byte-identical output — the determinism assumption
of §3 under which ST-TCP shadows state without a consistency protocol.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.util.bytespan import ByteSpan, PatternBytes, RealBytes, concat

#: Fixed request size used by all three applications (§6).
REQUEST_SIZE = 150

_HEADER = struct.Struct(">HBBII")
MAGIC = 0x5354  # "ST"

KIND_ECHO = 1
KIND_DATA = 2
KIND_UPLOAD = 3

#: Pattern id for server response payloads (client verifies content).
RESPONSE_PATTERN = 7
#: Pattern id for request padding.
REQUEST_PATTERN = 11
#: Pattern id for client upload payloads (server verifies content).
UPLOAD_PATTERN = 13


class Request(NamedTuple):
    kind: int
    response_size: int
    request_id: int


def encode_request(kind: int, response_size: int, request_id: int) -> ByteSpan:
    """Build a 150-byte request record.

    For ``KIND_UPLOAD``, ``response_size`` carries the upload length; the
    server's 150-byte *receipt* reuses the same record shape with
    ``response_size`` set to the number of verified upload bytes.
    """
    if kind not in (KIND_ECHO, KIND_DATA, KIND_UPLOAD):
        raise ValueError(f"unknown request kind {kind}")
    if response_size < 0:
        raise ValueError(f"negative response size {response_size}")
    header = _HEADER.pack(MAGIC, kind, 0, response_size, request_id & 0xFFFFFFFF)
    padding = PatternBytes(REQUEST_SIZE - len(header), request_id * REQUEST_SIZE, REQUEST_PATTERN)
    return concat([RealBytes(header), padding])


def decode_request(data: ByteSpan) -> Request:
    """Parse a 150-byte request record."""
    if len(data) != REQUEST_SIZE:
        raise ValueError(f"request must be {REQUEST_SIZE} bytes, got {len(data)}")
    raw = data.slice(0, _HEADER.size).to_bytes()
    magic, kind, _, response_size, request_id = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise ValueError(f"bad request magic {magic:#06x}")
    return Request(kind, response_size, request_id)


def response_payload(response_size: int, stream_offset: int) -> ByteSpan:
    """Deterministic response bytes for a DATA request.

    ``stream_offset`` is the connection's cumulative response-stream
    position, making the payload identical no matter which replica
    generates it and letting the client verify content by offset alone.
    """
    return PatternBytes(response_size, stream_offset, RESPONSE_PATTERN)


def verify_response(data: ByteSpan, stream_offset: int) -> bool:
    """Check that received response bytes match the deterministic pattern."""
    return data == PatternBytes(len(data), stream_offset, RESPONSE_PATTERN)


def upload_payload(size: int, stream_offset: int) -> ByteSpan:
    """Deterministic client upload bytes (server verifies by offset)."""
    return PatternBytes(size, stream_offset, UPLOAD_PATTERN)


def verify_upload(data: ByteSpan, stream_offset: int) -> bool:
    """Server-side content check of uploaded bytes."""
    return data == PatternBytes(len(data), stream_offset, UPLOAD_PATTERN)

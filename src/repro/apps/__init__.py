"""The paper's applications: Echo, Interactive, Bulk (§6), over a shared
deterministic request/response protocol."""

from repro.apps.client import client_session, run_client
from repro.apps.protocol import (
    KIND_DATA,
    KIND_ECHO,
    REQUEST_SIZE,
    Request,
    decode_request,
    encode_request,
    response_payload,
    verify_response,
)
from repro.apps.server import connection_handler, request_response_server, start_server
from repro.apps.workload import (
    PAPER_BULK_SIZES,
    AppWorkload,
    RunResult,
    bulk_workload,
    echo_workload,
    interactive_workload,
    upload_workload,
)

__all__ = [
    "AppWorkload",
    "KIND_DATA",
    "KIND_ECHO",
    "PAPER_BULK_SIZES",
    "REQUEST_SIZE",
    "Request",
    "RunResult",
    "bulk_workload",
    "client_session",
    "connection_handler",
    "decode_request",
    "echo_workload",
    "encode_request",
    "interactive_workload",
    "request_response_server",
    "response_payload",
    "run_client",
    "start_server",
    "upload_workload",
    "verify_response",
]

"""The deterministic request/response server.

The *same* generator runs unmodified on a standard host, an ST-TCP
primary, and an ST-TCP backup — on the backup its socket writes go into a
suppressed shadow connection, which is the whole point of the design: no
server application changes (§4.1).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import ConnectionError_, ReproError
from repro.apps.protocol import (
    KIND_DATA,
    KIND_ECHO,
    KIND_UPLOAD,
    REQUEST_SIZE,
    decode_request,
    encode_request,
    response_payload,
    verify_upload,
)
from repro.net.addresses import IPAddress
from repro.tcp.listener import TCPListener
from repro.tcp.socket import TCPSocket


def connection_handler(
    host: Any, conn: TCPSocket, service_time: float = 0.0
) -> Generator:
    """Serve one connection: read fixed-size requests, answer each."""
    sim = host.sim
    response_stream_offset = 0
    upload_stream_offset = 0
    try:
        while True:
            first = yield conn.recv(REQUEST_SIZE)
            if len(first) == 0:
                break  # orderly EOF
            record = first
            if len(record) < REQUEST_SIZE:
                rest = yield conn.recv_exactly(REQUEST_SIZE - len(record))
                from repro.util.bytespan import concat

                record = concat([record, rest])
            try:
                request = decode_request(record)
            except ValueError:
                # A malformed request (rogue or corrupted client): drop
                # the connection rather than the whole server.
                conn.abort()
                return
            if service_time > 0.0:
                yield sim.timeout(service_time)
            if request.kind == KIND_ECHO:
                yield conn.send(record)
            elif request.kind == KIND_DATA:
                payload = response_payload(request.response_size, response_stream_offset)
                response_stream_offset += request.response_size
                yield conn.send(payload)
            elif request.kind == KIND_UPLOAD:
                # Consume and verify the upload, then send a receipt with
                # the count of verified bytes.
                remaining = request.response_size
                verified_bytes = 0
                while remaining > 0:
                    chunk = yield conn.recv_exactly(min(65536, remaining))
                    if verify_upload(chunk, upload_stream_offset):
                        verified_bytes += len(chunk)
                    upload_stream_offset += len(chunk)
                    remaining -= len(chunk)
                receipt = encode_request(KIND_UPLOAD, verified_bytes, request.request_id)
                yield conn.send(receipt)
            else:  # pragma: no cover - decode_request validates kinds
                raise ReproError(f"unhandled request kind {request.kind}")
    except ConnectionError_:
        return  # peer reset / vanished; nothing to clean beyond the socket
    finally:
        conn.close()


def request_response_server(
    host: Any,
    port: int,
    bind_ip: Optional[IPAddress] = None,
    service_time: float = 0.0,
    listener_box: Optional[list] = None,
) -> Generator:
    """Accept-loop process; spawns a handler per connection.

    ``listener_box``, when given, receives the listener object so tests
    can close it.
    """
    listener: TCPListener = host.tcp.listen(port, bind_ip)
    if listener_box is not None:
        listener_box.append(listener)
    try:
        while True:
            conn = yield listener.accept()
            host.spawn(
                connection_handler(host, conn, service_time),
                f"{host.name}.handler:{conn.remote_address[1]}",
            )
    except ConnectionError_:
        return  # listener closed


def start_server(
    host: Any,
    port: int,
    bind_ip: Optional[IPAddress] = None,
    service_time: float = 0.0,
) -> Any:
    """Spawn the server process on ``host``; returns the process handle."""
    return host.spawn(
        request_response_server(host, port, bind_ip, service_time),
        f"{host.name}.server:{port}",
    )

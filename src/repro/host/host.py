"""The host: NICs, ARP, IP, UDP, TCP, processes, crash semantics.

A :class:`Host` wires the layers together and owns the address state —
interface IPs plus VNICs (virtual interfaces, possibly with multicast
MACs, per §3.1).  Crash/performance failure semantics (§4.4) are modelled
by :meth:`Host.crash`: the host instantly stops sending, receiving and
executing — exactly the assumption the paper's failure detector relies on.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set

from repro.errors import ConfigurationError
from repro.net.addresses import IPAddress, MACAddress
from repro.net.arp import ArpService
from repro.net.frame import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.loss import LossModel
from repro.net.nic import NIC, VirtualInterface
from repro.ip.layer import IPLayer
from repro.sim.process import Process
from repro.tcp.config import TCPConfig
from repro.tcp.layer import TCPLayer
from repro.udp.layer import UDPLayer


class Interface:
    """A configured (NIC, IP, prefix) binding."""

    __slots__ = ("nic", "ip", "prefix_len")

    def __init__(self, nic: NIC, ip: IPAddress, prefix_len: int) -> None:
        self.nic = nic
        self.ip = ip
        self.prefix_len = prefix_len

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.nic.name} {self.ip}/{self.prefix_len}>"


class Host:
    """One simulated machine."""

    def __init__(
        self,
        sim: Any,
        name: str,
        tcp_config: Optional[TCPConfig] = None,
        nic_processing_delay: float = 0.0,
        nic_rx_queue_capacity: int = 0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.is_up = True
        self.nic_processing_delay = nic_processing_delay
        self.nic_rx_queue_capacity = nic_rx_queue_capacity
        self.nics: List[NIC] = []
        self.interfaces: List[Interface] = []
        self.vnics: List[VirtualInterface] = []
        self.processes: List[Process] = []
        self.arp = ArpService(sim, self)
        self.ip_layer = IPLayer(sim, self)
        self.udp = UDPLayer(sim, self)
        self.tcp = TCPLayer(sim, self, tcp_config)
        self._local_ip_cache: Optional[Set[IPAddress]] = None
        self.crashed_at: Optional[float] = None

    # NICs and addressing --------------------------------------------------------
    def add_nic(
        self,
        name: Optional[str] = None,
        mac: Optional[MACAddress] = None,
        processing_delay: Optional[float] = None,
        rx_queue_capacity: Optional[int] = None,
        rx_loss_model: Optional[LossModel] = None,
    ) -> NIC:
        """Create a NIC wired into this host's stack."""
        nic = NIC(
            self.sim,
            name or f"eth{len(self.nics)}",
            mac=mac,
            processing_delay=(
                self.nic_processing_delay if processing_delay is None else processing_delay
            ),
            rx_queue_capacity=(
                self.nic_rx_queue_capacity
                if rx_queue_capacity is None
                else rx_queue_capacity
            ),
            rx_loss_model=rx_loss_model,
        )
        nic.set_handler(self._frame_received)
        self.nics.append(nic)
        return nic

    def configure_ip(self, nic: NIC, ip: IPAddress, prefix_len: int = 24) -> None:
        """Assign a primary IP to a NIC and install the connected route."""
        if nic not in self.nics:
            raise ConfigurationError(f"NIC {nic.name} does not belong to {self.name}")
        self.interfaces.append(Interface(nic, ip, prefix_len))
        self.ip_layer.add_route(ip, prefix_len, nic)
        self._local_ip_cache = None

    def add_vnic(
        self,
        name: str,
        ip: IPAddress,
        mac: MACAddress,
        nic: NIC,
        suppress_arp: bool = False,
    ) -> VirtualInterface:
        """Create a virtual interface (extra IP + MAC identity) on ``nic``.

        ``suppress_arp=True`` keeps the host from answering ARP for the
        IP — the passive-backup stance until failover.
        """
        vnic = VirtualInterface(name, ip, mac, nic)
        self.vnics.append(vnic)
        if suppress_arp:
            self.arp.suppress_ip(ip)
        self._local_ip_cache = None
        return vnic

    def remove_vnic(self, vnic: VirtualInterface) -> None:
        vnic.remove()
        self.vnics.remove(vnic)
        self._local_ip_cache = None

    # Address queries (used by ARP and IP layers) -----------------------------------
    def local_ips(self) -> Set[IPAddress]:
        if self._local_ip_cache is None:
            ips = {iface.ip for iface in self.interfaces}
            ips |= {vnic.ip for vnic in self.vnics}
            self._local_ip_cache = ips
        return self._local_ip_cache

    def primary_ip_on(self, nic: NIC) -> IPAddress:
        for iface in self.interfaces:
            if iface.nic is nic:
                return iface.ip
        for vnic in self.vnics:
            if vnic.hw_nic is nic:
                return vnic.ip
        raise ConfigurationError(f"no IP configured on {self.name}/{nic.name}")

    def owned_ip_macs(self, nic: NIC) -> Dict[IPAddress, MACAddress]:
        """IP → answering MAC for the ARP responder, scoped to ``nic``."""
        owned: Dict[IPAddress, MACAddress] = {}
        for iface in self.interfaces:
            if iface.nic is nic:
                owned[iface.ip] = nic.mac
        for vnic in self.vnics:
            if vnic.hw_nic is nic:
                owned[vnic.ip] = vnic.mac
        return owned

    def source_mac_for(self, nic: NIC, src_ip: IPAddress) -> MACAddress:
        """The source MAC for frames carrying ``src_ip`` out of ``nic``."""
        for vnic in self.vnics:
            if vnic.hw_nic is nic and vnic.ip == src_ip:
                return vnic.mac
        return nic.mac

    # Frame dispatch ---------------------------------------------------------------
    def _frame_received(self, frame: EthernetFrame, nic: NIC) -> None:
        if not self.is_up:
            return
        if frame.ethertype == ETHERTYPE_IPV4:
            self.ip_layer.receive(frame.payload, nic)
        elif frame.ethertype == ETHERTYPE_ARP:
            self.arp.handle_message(frame.payload, nic)

    # Processes ------------------------------------------------------------------------
    def spawn(self, generator: Generator, label: str = "") -> Process:
        """Run an application process tied to this host's lifetime."""
        process = self.sim.spawn(generator, label or f"{self.name}.proc")
        self.processes.append(process)
        return process

    # Failure semantics -------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the machine: no more frames, timers, or process steps."""
        if not self.is_up:
            return
        self.is_up = False
        self.crashed_at = self.sim.now
        for nic in self.nics:
            nic.power_off()
        for process in self.processes:
            if process.alive:
                process.kill()
        if self.sim.trace.enabled_for("host"):
            self.sim.trace.emit(self.sim.now, "host", "crash", host=self.name)

    def restore(self) -> None:
        """Power the machine back on (stack state is NOT recovered)."""
        self.is_up = True
        self.crashed_at = None
        for nic in self.nics:
            nic.power_on()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "up" if self.is_up else "down"
        return f"<Host {self.name} {status}>"


def make_gateway(sim: Any, name: str = "gateway", **host_kwargs: Any) -> Host:
    """A host with IP forwarding enabled (the paper's gateway node)."""
    gateway = Host(sim, name, **host_kwargs)
    gateway.ip_layer.forwarding = True
    return gateway

"""Host model: stack wiring, addressing, processes, crash semantics."""

from repro.host.host import Host, Interface, make_gateway

__all__ = ["Host", "Interface", "make_gateway"]

"""Ethernet frames.

Frames carry an opaque ``payload`` (an IP datagram or ARP message object)
plus explicit size accounting so link transmission times are realistic
without serialising anything.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.net.addresses import MACAddress

#: EtherType values (the two the simulator uses).
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

#: Ethernet framing overhead in bytes: 14 header + 4 FCS (preamble/IFG are
#: folded into link rate calibration rather than modelled per frame).
ETHERNET_OVERHEAD = 18

#: Minimum Ethernet frame size on the wire.
ETHERNET_MIN_FRAME = 64

_frame_ids = itertools.count(1)


class EthernetFrame:
    """An Ethernet frame in flight.

    ``payload_size`` is the size in bytes of the encapsulated packet
    (headers included); :attr:`wire_size` adds Ethernet overhead and
    enforces the minimum frame size.  ``frame_id`` uniquely identifies the
    frame for tracing and for the packet logger.
    """

    __slots__ = ("dst", "src", "ethertype", "payload", "payload_size", "frame_id")

    def __init__(
        self,
        dst: MACAddress,
        src: MACAddress,
        ethertype: int,
        payload: Any,
        payload_size: int,
    ) -> None:
        if payload_size < 0:
            raise ValueError(f"negative payload size {payload_size}")
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload
        self.payload_size = payload_size
        self.frame_id = next(_frame_ids)

    @property
    def wire_size(self) -> int:
        """Bytes occupying the wire, including Ethernet overhead."""
        return max(self.payload_size + ETHERNET_OVERHEAD, ETHERNET_MIN_FRAME)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = {ETHERTYPE_IPV4: "ipv4", ETHERTYPE_ARP: "arp"}.get(
            self.ethertype, hex(self.ethertype)
        )
        return (
            f"<Frame#{self.frame_id} {self.src}->{self.dst} {kind} "
            f"{self.payload_size}B>"
        )

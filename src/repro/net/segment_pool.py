"""Pooled zero-copy segment payloads for the batch datapath.

The object arm carries every payload as a fresh :class:`RealBytes`,
which copies on ingest *and* on every ``slice`` — one copy per MSS
chunk on transmit, again on every retransmission, again whenever the
backup's tap re-examines a delivered segment.  At millions of segments
those copies dominate the datapath.

:class:`SegmentPool` replaces them with a struct-of-arrays free list of
large ``bytearray`` slabs:

* **ingest** copies the application bytes into the current slab exactly
  once and hands back a :class:`PooledBytes` span — a ``memoryview``
  slice over the slab;
* **slice** returns a sub-``memoryview`` sharing the same slab — no
  bytes move while a segment is segmented, retransmitted, fanned out by
  the hub, or tapped by the backup;
* **release** is refcount-driven: every span over a slab shares one
  :class:`_SlabLease`, and when the last span dies the lease's
  ``__del__`` returns the slab to the pool's free list, so delivery
  (dropping the last reference) *is* the return path.

Ownership rule: a slab is reused only after its lease has died, i.e.
after no live span can observe it.  The hypothesis suite in
``tests/net/test_segment_pool.py`` drives random interleavings of
ingest/slice/release against the fresh-bytes oracle to prove reuse
never aliases a live payload.

The pool is invisible to every consumer: :class:`PooledBytes` is an
ordinary :class:`~repro.util.bytespan.ByteSpan` whose content compares
equal to the :class:`~repro.util.bytespan.RealBytes` the object arm
would have produced, so store hashes and drill reports are identical
under both ``REPRO_DATAPATH`` arms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.util.bytespan import EMPTY, ByteSpan, _check_bounds

#: Default slab size: large enough that a slab amortises ~45 MSS-sized
#: payloads, small enough that a retained span pins little memory.
SLAB_SIZE = 64 * 1024

#: Free slabs kept for reuse; beyond this, released slabs are dropped to
#: the allocator (bounds pool memory under a burst-then-idle workload).
MAX_FREE_SLABS = 64


class _SlabLease:
    """Shared ownership token for one slab.

    Every :class:`PooledBytes` over the slab holds a strong reference to
    the lease; the pool holds one more while the slab is still being
    filled.  When the last reference dies, CPython's refcounting runs
    ``__del__`` promptly and the slab rejoins the free list.
    """

    __slots__ = ("slab", "pool")

    def __init__(self, slab: bytearray, pool: "SegmentPool") -> None:
        self.slab = slab
        self.pool = pool

    def __del__(self) -> None:
        try:
            self.pool._release(self.slab)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class PooledBytes(ByteSpan):
    """A payload span backed by a ``memoryview`` slice of a pooled slab.

    Immutable by convention (the pool never rewrites a slab region while
    a lease is alive); slicing shares the slab with no copy and the
    bytes materialise only at :meth:`to_bytes` (wire serialisation,
    content checks).
    """

    __slots__ = ("view", "_lease")

    def __init__(self, view: memoryview, lease: _SlabLease) -> None:
        self.view = view
        self._lease = lease

    def __len__(self) -> int:
        return len(self.view)

    def slice(self, start: int, stop: int) -> ByteSpan:
        _check_bounds(start, stop, len(self.view))
        return PooledBytes(self.view[start:stop], self._lease)

    def to_bytes(self) -> bytes:
        return bytes(self.view)


class SegmentPool:
    """Struct-of-arrays slab allocator for segment payloads.

    ``ingest`` packs payloads back to back into the current slab; a slab
    retires when the next payload no longer fits and is reused once all
    spans over it have been delivered and dropped (see
    :class:`_SlabLease`).  Counters:

    * ``segments_pooled`` — payloads served from a slab;
    * ``pool_misses`` — a fresh slab had to be allocated (the free list
      was empty, or the payload exceeded the slab size class);
    * ``slabs_reused`` — slab acquisitions served from the free list.
    """

    __slots__ = (
        "slab_size",
        "max_free",
        "_free",
        "_lease",
        "_pos",
        "segments_pooled",
        "pool_misses",
        "slabs_reused",
    )

    def __init__(self, slab_size: int = SLAB_SIZE, max_free: int = MAX_FREE_SLABS) -> None:
        if slab_size <= 0:
            raise ValueError(f"slab size must be positive, got {slab_size}")
        self.slab_size = slab_size
        self.max_free = max_free
        self._free: List[bytearray] = []
        self._lease: Optional[_SlabLease] = None
        self._pos = 0
        self.segments_pooled = 0
        self.pool_misses = 0
        self.slabs_reused = 0

    # -- allocation ----------------------------------------------------------
    def ingest(self, data: Union[bytes, bytearray, memoryview]) -> ByteSpan:
        """Copy ``data`` into pooled storage (the one and only copy) and
        return the span carrying it through the datapath."""
        length = len(data)
        if length == 0:
            return EMPTY
        if length > self.slab_size:
            # Oversized payload: dedicated slab, never returned to the
            # free list (its size doesn't match the class).
            self.pool_misses += 1
            self.segments_pooled += 1
            slab = bytearray(data)
            lease = _SlabLease(slab, _NULL_POOL)
            return PooledBytes(memoryview(slab), lease)
        lease = self._lease
        if lease is None or self._pos + length > self.slab_size:
            lease = self._acquire_slab()
        pos = self._pos
        end = pos + length
        lease.slab[pos:end] = data
        self._pos = end
        self.segments_pooled += 1
        return PooledBytes(memoryview(lease.slab)[pos:end], lease)

    def _acquire_slab(self) -> _SlabLease:
        """Retire the current slab (spans keep it alive until delivered)
        and open a fresh one, preferring the free list."""
        if self._free:
            slab = self._free.pop()
            self.slabs_reused += 1
        else:
            slab = bytearray(self.slab_size)
            self.pool_misses += 1
        lease = _SlabLease(slab, self)
        self._lease = lease
        self._pos = 0
        return lease

    # -- release (refcount-driven, via _SlabLease.__del__) -------------------
    def _release(self, slab: bytearray) -> None:
        if len(slab) == self.slab_size and len(self._free) < self.max_free:
            self._free.append(slab)

    # -- introspection -------------------------------------------------------
    def free_slabs(self) -> int:
        return len(self._free)

    def stats(self) -> Dict[str, int]:
        return {
            "segments_pooled": self.segments_pooled,
            "pool_misses": self.pool_misses,
            "slabs_reused": self.slabs_reused,
            "free_slabs": len(self._free),
        }

    def reset_counters(self) -> None:
        self.segments_pooled = 0
        self.pool_misses = 0
        self.slabs_reused = 0


class _NullPool(SegmentPool):
    """Sink for oversized dedicated slabs: release drops them."""

    def _release(self, slab: bytearray) -> None:  # noqa: ARG002
        return None


_NULL_POOL = _NullPool(slab_size=1, max_free=0)

#: Process-wide pool all send buffers share (one free list keeps slab
#: reuse high across thousands of simulated connections).
_default_pool = SegmentPool()


def default_pool() -> SegmentPool:
    return _default_pool


def reset_default_pool() -> SegmentPool:
    """Replace the process-wide pool (tests; counter isolation)."""
    global _default_pool
    _default_pool = SegmentPool()
    return _default_pool

"""Link layer: addressing, frames, media (cable/hub), switch, NIC, ARP."""

from repro.net.addresses import (
    MAC_BROADCAST,
    IPAddress,
    MACAddress,
    fresh_multicast_mac,
    fresh_unicast_mac,
    ip,
    mac,
)
from repro.net.arp import (
    ARP_MESSAGE_SIZE,
    ARP_REPLY,
    ARP_REQUEST,
    ArpMessage,
    ArpService,
)
from repro.net.frame import (
    ETHERNET_MIN_FRAME,
    ETHERNET_OVERHEAD,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
)
from repro.net.loss import (
    BurstLoss,
    LossModel,
    NoLoss,
    RandomLoss,
    ScriptedLoss,
    WindowLoss,
)
from repro.net.medium import Attachment, Cable, FrameReceiver, Hub
from repro.net.nic import NIC, VirtualInterface
from repro.net.switch import Switch, SwitchPort

__all__ = [
    "ARP_MESSAGE_SIZE",
    "ARP_REPLY",
    "ARP_REQUEST",
    "ArpMessage",
    "ArpService",
    "Attachment",
    "BurstLoss",
    "Cable",
    "ETHERNET_MIN_FRAME",
    "ETHERNET_OVERHEAD",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "FrameReceiver",
    "Hub",
    "IPAddress",
    "LossModel",
    "MACAddress",
    "MAC_BROADCAST",
    "NIC",
    "NoLoss",
    "RandomLoss",
    "ScriptedLoss",
    "Switch",
    "SwitchPort",
    "VirtualInterface",
    "WindowLoss",
    "fresh_multicast_mac",
    "fresh_unicast_mac",
    "ip",
    "mac",
]

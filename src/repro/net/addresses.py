"""MAC and IPv4 address value types.

Both are thin immutable wrappers over integers with parsing/formatting and
the semantic predicates the protocols need (broadcast, multicast).  The
paper's switched-Ethernet tapping trick maps a unicast *IP* address onto a
*multicast* Ethernet address (§3.1), so multicast-ness of a MAC is a
first-class concept here.
"""

from __future__ import annotations

from typing import Union

from repro.errors import AddressError


class MACAddress:
    """A 48-bit Ethernet address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "MACAddress"]) -> None:
        if isinstance(value, MACAddress):
            self.value = value.value
            return
        if isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise AddressError(f"bad MAC literal {value!r}")
            try:
                octets = [int(part, 16) for part in parts]
            except ValueError as exc:
                raise AddressError(f"bad MAC literal {value!r}") from exc
            if any(octet < 0 or octet > 255 for octet in octets):
                raise AddressError(f"bad MAC literal {value!r}")
            number = 0
            for octet in octets:
                number = (number << 8) | octet
            self.value = number
            return
        if isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise AddressError(f"MAC integer out of range: {value}")
            self.value = value
            return
        raise AddressError(f"cannot build MAC from {type(value).__name__}")

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set.

        The broadcast address also has the bit set; callers that care use
        :attr:`is_broadcast` first.
        """
        return bool((self.value >> 40) & 0x01)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self.value == other.value
        if isinstance(other, str):
            try:
                return self.value == MACAddress(other).value
            except AddressError:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"


#: The all-ones broadcast address.
MAC_BROADCAST = MACAddress((1 << 48) - 1)

_next_unicast_mac = [0x02_00_00_00_00_01]  # locally administered, unicast
_next_multicast_mac = [0x03_00_00_00_00_01]  # locally administered, group bit


def fresh_unicast_mac() -> MACAddress:
    """Allocate a distinct locally-administered unicast MAC."""
    mac = MACAddress(_next_unicast_mac[0])
    _next_unicast_mac[0] += 1
    return mac


def fresh_multicast_mac() -> MACAddress:
    """Allocate a distinct locally-administered multicast MAC.

    Used for the SME/GME addresses of the switched tapping architecture.
    """
    mac = MACAddress(_next_multicast_mac[0])
    _next_multicast_mac[0] += 1
    return mac


class IPAddress:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "IPAddress"]) -> None:
        if isinstance(value, IPAddress):
            self.value = value.value
            return
        if isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise AddressError(f"bad IPv4 literal {value!r}")
            try:
                octets = [int(part) for part in parts]
            except ValueError as exc:
                raise AddressError(f"bad IPv4 literal {value!r}") from exc
            if any(octet < 0 or octet > 255 for octet in octets):
                raise AddressError(f"bad IPv4 literal {value!r}")
            number = 0
            for octet in octets:
                number = (number << 8) | octet
            self.value = number
            return
        if isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise AddressError(f"IPv4 integer out of range: {value}")
            self.value = value
            return
        raise AddressError(f"cannot build IP from {type(value).__name__}")

    def in_network(self, network: "IPAddress", prefix_len: int) -> bool:
        """True if this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"bad prefix length {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self.value & mask) == (network.value & mask)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPAddress):
            return self.value == other.value
        if isinstance(other, str):
            try:
                return self.value == IPAddress(other).value
            except AddressError:
                return False
        return NotImplemented

    def __lt__(self, other: "IPAddress") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ip", self.value))

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(24, -8, -8)]
        return ".".join(str(octet) for octet in octets)

    def __repr__(self) -> str:
        return f"IPAddress('{self}')"


def ip(value: Union[int, str, IPAddress]) -> IPAddress:
    """Shorthand coercion used pervasively in call sites and tests."""
    return IPAddress(value)


def mac(value: Union[int, str, MACAddress]) -> MACAddress:
    """Shorthand coercion for MAC addresses."""
    return MACAddress(value)

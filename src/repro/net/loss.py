"""Frame-loss models pluggable into links, hubs and NIC receive paths.

A loss model is a callable ``model(frame, now) -> bool`` returning True when
the frame should be dropped.  Models keep their own counters so experiments
can report what was lost where.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Set

from repro.net.frame import EthernetFrame


class LossModel:
    """Base class; never drops."""

    def __init__(self) -> None:
        self.dropped = 0
        self.seen = 0

    def __call__(self, frame: EthernetFrame, now: float) -> bool:
        self.seen += 1
        if self._should_drop(frame, now):
            self.dropped += 1
            return True
        return False

    def _should_drop(self, frame: EthernetFrame, now: float) -> bool:
        return False


class NoLoss(LossModel):
    """Explicit no-op model (the default everywhere)."""


class RandomLoss(LossModel):
    """Drops each frame independently with probability ``rate``."""

    def __init__(self, rng: random.Random, rate: float) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rng = rng
        self.rate = rate

    def _should_drop(self, frame: EthernetFrame, now: float) -> bool:
        return self.rate > 0.0 and self.rng.random() < self.rate


class BurstLoss(LossModel):
    """A Gilbert–Elliott two-state burst-loss model.

    In the *good* state frames pass; in the *bad* state they drop with
    ``bad_loss_rate``.  Transitions are Bernoulli per frame.
    """

    def __init__(
        self,
        rng: random.Random,
        p_good_to_bad: float = 0.001,
        p_bad_to_good: float = 0.2,
        bad_loss_rate: float = 1.0,
    ) -> None:
        super().__init__()
        self.rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.bad_loss_rate = bad_loss_rate
        self.in_bad_state = False

    def _should_drop(self, frame: EthernetFrame, now: float) -> bool:
        if self.in_bad_state:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        return self.in_bad_state and self.rng.random() < self.bad_loss_rate


class ScriptedLoss(LossModel):
    """Drops specific frames: by 1-based arrival index and/or predicate.

    Deterministic — used by tests to lose exactly the segment they mean to.
    """

    def __init__(
        self,
        drop_indices: Optional[Iterable[int]] = None,
        predicate: Optional[Callable[[EthernetFrame], bool]] = None,
    ) -> None:
        super().__init__()
        self.drop_indices: Set[int] = set(drop_indices or ())
        self.predicate = predicate
        self._index = 0

    def _should_drop(self, frame: EthernetFrame, now: float) -> bool:
        self._index += 1
        if self._index in self.drop_indices:
            return True
        return self.predicate is not None and self.predicate(frame)


class WindowLoss(LossModel):
    """Drops every frame arriving inside a time window ``[start, stop)``.

    Models a transient tap outage on the backup (the IP-buffer-overflow
    scenario of §4.2).
    """

    def __init__(self, start: float, stop: float) -> None:
        super().__init__()
        if stop < start:
            raise ValueError(f"window stop {stop} before start {start}")
        self.start = start
        self.stop = stop

    def _should_drop(self, frame: EthernetFrame, now: float) -> bool:
        return self.start <= now < self.stop

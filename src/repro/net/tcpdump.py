"""A tcpdump-style renderer for simulated traffic.

Attach a :class:`PacketDump` to any host NIC (or every NIC of a host) and
each frame it accepts is rendered like::

    0.100312 client > 10.0.0.100.8000: Flags [P.], seq 1:151, ack 1, win 17520, length 150

Useful in examples and while debugging protocol behaviour; the renderer is
read-only and never perturbs the simulation.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TextIO

from repro.ip.datagram import PROTO_TCP, PROTO_UDP, IPDatagram
from repro.net.frame import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.nic import NIC
from repro.tcp.segment import TCPSegment


def format_segment(segment: TCPSegment, relative_seq: Optional[int] = None) -> str:
    """Render a TCP segment in tcpdump's flag/seq/ack vocabulary."""
    flags = segment.flag_string().replace("A", ".")
    parts = [f"Flags [{flags}]"]
    length = segment.payload_length
    seq = segment.seq if relative_seq is None else segment.seq - relative_seq
    if length or segment.is_syn or segment.is_fin:
        parts.append(f"seq {seq}:{seq + max(length, 0)}" if length else f"seq {seq}")
    if segment.is_ack:
        parts.append(f"ack {segment.ack}")
    parts.append(f"win {segment.window}")
    if segment.mss_option is not None:
        parts.append(f"mss {segment.mss_option}")
    parts.append(f"length {length}")
    return ", ".join(parts)


def format_datagram(datagram: IPDatagram) -> str:
    """One-line rendering of an IP datagram's transport content."""
    if datagram.protocol == PROTO_TCP:
        segment: TCPSegment = datagram.payload
        return (
            f"{datagram.src}.{segment.src_port} > "
            f"{datagram.dst}.{segment.dst_port}: {format_segment(segment)}"
        )
    if datagram.protocol == PROTO_UDP:
        udp = datagram.payload
        payload = type(udp.payload).__name__
        return (
            f"{datagram.src}.{udp.src_port} > {datagram.dst}.{udp.dst_port}: "
            f"UDP {payload}, length {udp.payload_size}"
        )
    return f"{datagram.src} > {datagram.dst}: proto {datagram.protocol}"


def format_frame(frame: EthernetFrame) -> str:
    if frame.ethertype == ETHERTYPE_IPV4:
        return format_datagram(frame.payload)
    if frame.ethertype == ETHERTYPE_ARP:
        message = frame.payload
        from repro.net.arp import ARP_REQUEST

        if message.op == ARP_REQUEST:
            return f"ARP, Request who-has {message.target_ip} tell {message.sender_ip}"
        return f"ARP, Reply {message.sender_ip} is-at {message.sender_mac}"
    return f"ethertype {frame.ethertype:#06x}, length {frame.wire_size}"


class PacketDump:
    """Captures frames at one or more NICs and renders them.

    ``sink`` defaults to printing; pass a callable to collect lines
    instead (tests do).  ``predicate`` filters frames before rendering.
    """

    def __init__(
        self,
        sim: Any,
        sink: Optional[Callable[[str], None]] = None,
        predicate: Optional[Callable[[EthernetFrame], bool]] = None,
    ) -> None:
        self.sim = sim
        self.sink = sink or print
        self.predicate = predicate
        self.lines_emitted = 0
        self._attached: List[tuple] = []

    def attach_nic(self, nic: NIC, label: Optional[str] = None) -> None:
        """Tap the NIC's receive path (after filtering/queueing)."""
        previous = nic.handler
        name = label or nic.name

        def spy(frame: EthernetFrame, via: NIC) -> None:
            self._emit(name, frame)
            if previous is not None:
                previous(frame, via)

        nic.set_handler(spy)
        self._attached.append((nic, previous))

    def attach_host(self, host: Any) -> None:
        for nic in host.nics:
            self.attach_nic(nic, label=f"{host.name}/{nic.name}")

    def detach_all(self) -> None:
        for nic, previous in self._attached:
            nic.set_handler(previous)
        self._attached.clear()

    def _emit(self, where: str, frame: EthernetFrame) -> None:
        if self.predicate is not None and not self.predicate(frame):
            return
        self.lines_emitted += 1
        self.sink(f"{self.sim.now:.6f} {where} {format_frame(frame)}")


def dump_to_file(sim: Any, path: str) -> "PacketDump":
    """A PacketDump writing lines to ``path`` (caller attaches NICs)."""
    handle: TextIO = open(path, "w")  # noqa: SIM115 - lifetime = simulation

    def sink(line: str) -> None:
        handle.write(line + "\n")

    dump = PacketDump(sim, sink=sink)
    return dump

"""A tcpdump-style renderer plus a real libpcap capture writer.

Attach a :class:`PacketDump` to any host NIC (or every NIC of a host) and
each frame it accepts is rendered in the repo's canonical segment format
(:meth:`~repro.tcp.segment.TCPSegment.summary`)::

    0.100312 client 10.0.0.10.40000 > 10.0.0.100.8000: PA 1:151(150) ack 1 win 17520

:class:`PcapWriter` serialises the same frames into a genuine libpcap file
(magic 0xa1b2c3d4, LINKTYPE_ETHERNET) with synthesised Ethernet/IP/TCP
bytes and valid checksums, so captures — including drill failure context —
open directly in Wireshark or tcpdump.  Both are read-only observers and
never perturb the simulation.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple, Union

from repro.ip.datagram import PROTO_TCP, PROTO_UDP, IPDatagram
from repro.net.addresses import IPAddress, MACAddress
from repro.net.frame import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.nic import NIC
from repro.sim.datapath import batch_enabled
from repro.tcp.segment import TCPSegment


def format_segment(
    segment: TCPSegment, relative_seq: Optional[int] = None, relative_ack: Optional[int] = None
) -> str:
    """Render a TCP segment in the canonical ``flags seq:end(len) ack win``
    format (delegates to :meth:`TCPSegment.summary`)."""
    return segment.summary(seq_base=relative_seq or 0, ack_base=relative_ack or 0)


def format_datagram(datagram: IPDatagram) -> str:
    """One-line rendering of an IP datagram's transport content."""
    if datagram.protocol == PROTO_TCP:
        segment: TCPSegment = datagram.payload
        return (
            f"{datagram.src}.{segment.src_port} > "
            f"{datagram.dst}.{segment.dst_port}: {format_segment(segment)}"
        )
    if datagram.protocol == PROTO_UDP:
        udp = datagram.payload
        payload = type(udp.payload).__name__
        return (
            f"{datagram.src}.{udp.src_port} > {datagram.dst}.{udp.dst_port}: "
            f"UDP {payload}, length {udp.payload_size}"
        )
    return f"{datagram.src} > {datagram.dst}: proto {datagram.protocol}"


def format_frame(frame: EthernetFrame) -> str:
    if frame.ethertype == ETHERTYPE_IPV4:
        return format_datagram(frame.payload)
    if frame.ethertype == ETHERTYPE_ARP:
        message = frame.payload
        from repro.net.arp import ARP_REQUEST

        if message.op == ARP_REQUEST:
            return f"ARP, Request who-has {message.target_ip} tell {message.sender_ip}"
        return f"ARP, Reply {message.sender_ip} is-at {message.sender_mac}"
    return f"ethertype {frame.ethertype:#06x}, length {frame.wire_size}"


class PacketDump:
    """Captures frames at one or more NICs and renders them.

    ``sink`` defaults to printing; pass a callable to collect lines
    instead (tests do).  ``predicate`` filters frames before rendering.
    """

    def __init__(
        self,
        sim: Any,
        sink: Optional[Callable[[str], None]] = None,
        predicate: Optional[Callable[[EthernetFrame], bool]] = None,
    ) -> None:
        self.sim = sim
        self.sink = sink or print
        self.predicate = predicate
        self.lines_emitted = 0
        self._attached: List[tuple] = []

    def attach_nic(self, nic: NIC, label: Optional[str] = None) -> None:
        """Tap the NIC's receive path (after filtering/queueing)."""
        previous = nic.handler
        name = label or nic.name

        def spy(frame: EthernetFrame, via: NIC) -> None:
            self._emit(name, frame)
            if previous is not None:
                previous(frame, via)

        nic.set_handler(spy)
        self._attached.append((nic, previous))

    def attach_host(self, host: Any) -> None:
        for nic in host.nics:
            self.attach_nic(nic, label=f"{host.name}/{nic.name}")

    def detach_all(self) -> None:
        for nic, previous in self._attached:
            nic.set_handler(previous)
        self._attached.clear()

    def _emit(self, where: str, frame: EthernetFrame) -> None:
        if self.predicate is not None and not self.predicate(frame):
            return
        self.lines_emitted += 1
        self.sink(f"{self.sim.now:.6f} {where} {format_frame(frame)}")


def dump_to_file(sim: Any, path: str) -> "PacketDump":
    """A PacketDump writing lines to ``path`` (caller attaches NICs)."""
    handle: TextIO = open(path, "w")  # noqa: SIM115 - lifetime = simulation

    def sink(line: str) -> None:
        handle.write(line + "\n")

    dump = PacketDump(sim, sink=sink)
    return dump


# --------------------------------------------------------------------------
# libpcap serialisation
# --------------------------------------------------------------------------

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_PCAP_GLOBAL = struct.Struct("<IHHiIII")
_PCAP_RECORD = struct.Struct("<IIII")
_ETH_HEADER = struct.Struct("!6s6sH")
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")
_ARP_BODY = struct.Struct("!HHBBH6s4s6s4s")


def _checksum_reference(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum, word by word.

    The literal folding loop from the RFC — kept as the oracle for
    :func:`_checksum` (the property test in ``tests/net`` holds them
    equal over random buffers) and for readers tracing the wire format.
    """
    if len(data) % 2:
        data += b"\x00"
    total = sum(int.from_bytes(data[i : i + 2], "big") for i in range(0, len(data), 2))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _fold16(total: int) -> int:
    """End-around-carry fold of a word sum to [0, 0xFFFF].

    Ones'-complement addition is arithmetic mod 65535 with the single
    wrinkle that a non-zero sum folds to 0xFFFF, never to 0.
    """
    folded = total % 65535
    if folded == 0 and total:
        folded = 65535
    return folded


def _sum16(data: Union[bytes, memoryview]) -> int:
    """16-bit word sum of ``data`` (zero-padded), reduced mod 65535.

    Because ``2**16 ≡ 1 (mod 65535)``, every word's positional weight
    collapses to 1, so the big-integer value of the buffer *is* the word
    sum mod 65535 — one C-speed conversion instead of a Python loop.
    """
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    return int.from_bytes(data, "big") % 65535


def _checksum(data: bytes) -> int:
    """RFC 1071 checksum via the mod-65535 identity (≡ the reference)."""
    return (~_fold16(_sum16(data))) & 0xFFFF


def _mac_bytes(address: MACAddress) -> bytes:
    return address.value.to_bytes(6, "big")


def _ip_bytes(address: IPAddress) -> bytes:
    return address.value.to_bytes(4, "big")


def _payload_bytes(payload: Any, size: int) -> bytes:
    """Materialise a span if possible, zero-fill opaque payloads."""
    if hasattr(payload, "to_bytes"):
        return payload.to_bytes()
    return bytes(size)


def _tcp_options(segment: TCPSegment) -> bytes:
    options = b""
    if segment.mss_option is not None:
        options += struct.pack("!BBH", 2, 4, segment.mss_option)
    if segment.ts_val is not None:
        ts_val = int(segment.ts_val * 1000) & 0xFFFFFFFF
        ts_ecr = int((segment.ts_ecr or 0) * 1000) & 0xFFFFFFFF
        options += struct.pack("!BBBBII", 1, 1, 8, 10, ts_val, ts_ecr)
    return options


#: Per-connection invariant wire prefix: the packed ports plus the
#: pseudo-header/port contribution to the checksum word sum.  Keyed by
#: (src ip, dst ip, src port, dst port); bounded so a long churn
#: workload can't grow it without limit.
_wire_prefix_cache: Dict[Tuple[int, int, int, int], Tuple[bytes, int]] = {}
_WIRE_PREFIX_CACHE_MAX = 4096

#: Everything after the ports: seq, ack, offset byte, flags, window,
#: checksum, urgent pointer.
_TCP_VARIANT = struct.Struct("!IIBBHHH")


def _segment_to_bytes_fast(segment: TCPSegment, src_ip: IPAddress, dst_ip: IPAddress) -> bytes:
    """Batch-arm serialisation: patch the variant fields onto a cached
    per-connection prefix and build the checksum incrementally from the
    cached invariant word sum — no placeholder packet, no re-copy to
    splice the checksum in."""
    key = (src_ip.value, dst_ip.value, segment.src_port, segment.dst_port)
    cached = _wire_prefix_cache.get(key)
    if cached is None:
        if len(_wire_prefix_cache) >= _WIRE_PREFIX_CACHE_MAX:
            _wire_prefix_cache.clear()
        base_sum = (
            (src_ip.value >> 16)
            + (src_ip.value & 0xFFFF)
            + (dst_ip.value >> 16)
            + (dst_ip.value & 0xFFFF)
            + PROTO_TCP
            + segment.src_port
            + segment.dst_port
        )
        cached = (struct.pack("!HH", segment.src_port, segment.dst_port), base_sum)
        _wire_prefix_cache[key] = cached
    prefix, base_sum = cached
    options = _tcp_options(segment)
    offset_words = (20 + len(options)) // 4
    payload = _payload_bytes(segment.payload, segment.payload_length)
    seq = segment.seq
    ack = segment.ack
    total = (
        base_sum
        + (20 + len(options) + len(payload))  # pseudo-header TCP length
        + (seq >> 16)
        + (seq & 0xFFFF)
        + (ack >> 16)
        + (ack & 0xFFFF)
        + ((offset_words << 12) | segment.flags)
        + segment.window
        + _sum16(options)
        + _sum16(payload)
    )
    checksum = (~_fold16(total)) & 0xFFFF
    variant = _TCP_VARIANT.pack(
        seq, ack, offset_words << 4, segment.flags, segment.window, checksum, 0
    )
    return b"".join((prefix, variant, options, payload))


def segment_to_bytes(segment: TCPSegment, src_ip: IPAddress, dst_ip: IPAddress) -> bytes:
    """Serialise a TCP segment (with options and a valid checksum).

    Arm-switched per call (serialisation is observer-side, never hot
    inside an event): the batch arm uses the cached-prefix incremental
    path, the object arm packs the full header per segment — the
    differential tests hold the two byte-identical.
    """
    if batch_enabled():
        return _segment_to_bytes_fast(segment, src_ip, dst_ip)
    options = _tcp_options(segment)
    offset_words = (20 + len(options)) // 4
    header = _TCP_HEADER.pack(
        segment.src_port,
        segment.dst_port,
        segment.seq,
        segment.ack,
        offset_words << 4,
        segment.flags,
        segment.window,
        0,  # checksum placeholder
        0,  # urgent pointer
    )
    payload = _payload_bytes(segment.payload, segment.payload_length)
    packet = header + options + payload
    pseudo = _ip_bytes(src_ip) + _ip_bytes(dst_ip) + struct.pack("!BBH", 0, PROTO_TCP, len(packet))
    checksum = _checksum_reference(pseudo + packet)
    return packet[:16] + struct.pack("!H", checksum) + packet[18:]


def _udp_to_bytes(udp: Any, src_ip: IPAddress, dst_ip: IPAddress) -> bytes:
    length = 8 + udp.payload_size
    payload = bytes(udp.payload_size)  # channel messages are opaque objects
    header = _UDP_HEADER.pack(udp.src_port, udp.dst_port, length, 0)
    pseudo = _ip_bytes(src_ip) + _ip_bytes(dst_ip) + struct.pack("!BBH", 0, PROTO_UDP, length)
    checksum = _checksum(pseudo + header + payload) or 0xFFFF
    return header[:6] + struct.pack("!H", checksum) + payload


def datagram_to_bytes(datagram: IPDatagram) -> bytes:
    """Serialise an IPv4 datagram with a valid header checksum."""
    if datagram.protocol == PROTO_TCP:
        body = segment_to_bytes(datagram.payload, datagram.src, datagram.dst)
    elif datagram.protocol == PROTO_UDP:
        body = _udp_to_bytes(datagram.payload, datagram.src, datagram.dst)
    else:
        body = bytes(datagram.payload_size)
    header = _IPV4_HEADER.pack(
        0x45,  # version 4, IHL 5
        0,
        20 + len(body),
        datagram.datagram_id & 0xFFFF,
        0x4000,  # don't fragment
        datagram.ttl,
        datagram.protocol,
        0,  # checksum placeholder
        _ip_bytes(datagram.src),
        _ip_bytes(datagram.dst),
    )
    checksum = _checksum(header)
    return header[:10] + struct.pack("!H", checksum) + header[12:] + body


def _arp_to_bytes(message: Any) -> bytes:
    target_mac = message.target_mac
    return _ARP_BODY.pack(
        1,  # hardware type: Ethernet
        ETHERTYPE_IPV4,
        6,
        4,
        message.op,
        _mac_bytes(message.sender_mac),
        _ip_bytes(message.sender_ip),
        _mac_bytes(target_mac) if target_mac is not None else bytes(6),
        _ip_bytes(message.target_ip),
    )


def frame_to_bytes(frame: EthernetFrame) -> bytes:
    """Serialise an Ethernet frame (header + encapsulated packet, no FCS)."""
    header = _ETH_HEADER.pack(_mac_bytes(frame.dst), _mac_bytes(frame.src), frame.ethertype)
    if frame.ethertype == ETHERTYPE_IPV4:
        return header + datagram_to_bytes(frame.payload)
    if frame.ethertype == ETHERTYPE_ARP:
        return header + _arp_to_bytes(frame.payload)
    return header + bytes(frame.payload_size)


class PcapWriter:
    """Writes simulated frames as a libpcap capture file.

    The classic format (not pcapng): 24-byte global header with magic
    ``0xa1b2c3d4`` and LINKTYPE_ETHERNET, then one ``(ts_sec, ts_usec,
    incl_len, orig_len)`` record header per frame followed by the
    synthesised frame bytes.
    """

    def __init__(self, target: Union[str, Any], snaplen: int = 65535) -> None:
        self._own_handle = isinstance(target, (str, bytes))
        self._handle = open(target, "wb") if self._own_handle else target
        self.frames_written = 0
        self._handle.write(
            _PCAP_GLOBAL.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )

    def write_frame(self, timestamp: float, frame: EthernetFrame) -> None:
        self.write_bytes(timestamp, frame_to_bytes(frame))

    def write_bytes(self, timestamp: float, raw: bytes) -> None:
        ts_sec = int(timestamp)
        ts_usec = int(round((timestamp - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:  # guard the rounding edge at .999999+
            ts_sec, ts_usec = ts_sec + 1, 0
        self._handle.write(_PCAP_RECORD.pack(ts_sec, ts_usec, len(raw), len(raw)))
        self._handle.write(raw)
        self.frames_written += 1

    def close(self) -> None:
        if self._own_handle:
            self._handle.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def write_pcap(path: str, frames: List[tuple]) -> int:
    """Write ``[(timestamp, frame), ...]`` to ``path``; returns the count."""
    with PcapWriter(path) as writer:
        for timestamp, frame in frames:
            writer.write_frame(timestamp, frame)
        return writer.frames_written

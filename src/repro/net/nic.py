"""Network interface cards and virtual interfaces (VNICs).

A :class:`NIC` filters incoming frames by destination MAC (unless
promiscuous), models receive-side processing cost and a finite RX queue —
the queue is what can overflow on a heavily loaded backup, producing the
tapped-segment loss that ST-TCP's UDP recovery channel exists to repair
(§4.2) — and hands surviving frames to the host stack.

A :class:`VirtualInterface` is the paper's VNIC (§3.1): an extra
(IP, MAC) identity layered on a hardware NIC.  Assigning a *multicast* MAC
to the VNIC of both primary and backup is what lets a switch deliver the
service traffic to both machines.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Set

from repro.errors import NetworkError
from repro.net.addresses import MAC_BROADCAST, IPAddress, MACAddress, fresh_unicast_mac
from repro.net.frame import EthernetFrame
from repro.net.loss import LossModel
from repro.net.medium import Attachment, FrameReceiver

FrameHandler = Callable[[EthernetFrame, "NIC"], None]


class NIC(FrameReceiver):
    """A simulated Ethernet interface."""

    def __init__(
        self,
        sim: Any,
        name: str = "eth0",
        mac: Optional[MACAddress] = None,
        processing_delay: float = 0.0,
        rx_queue_capacity: int = 0,
        rx_loss_model: Optional[LossModel] = None,
    ) -> None:
        """Create a NIC.

        ``processing_delay`` models per-frame receive-side CPU cost;
        ``rx_queue_capacity`` bounds the number of frames awaiting that
        processing (0 = unbounded).  Both default off so that plain
        topologies are cheap.
        """
        self.sim = sim
        self.name = name
        self.mac = mac or fresh_unicast_mac()
        self.processing_delay = processing_delay
        self.rx_queue_capacity = rx_queue_capacity
        self.rx_loss_model = rx_loss_model
        self.promiscuous = False
        self.powered = True
        self.handler: Optional[FrameHandler] = None
        self.attachment: Optional[Attachment] = None
        self._accepted: Set[MACAddress] = {self.mac, MAC_BROADCAST}
        self._rx_busy_until = 0.0
        self._rx_pending = 0
        # Counters (public, read by metrics collectors and tests).
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_dropped_filter = 0
        self.rx_dropped_queue = 0
        self.rx_dropped_loss = 0
        self.rx_dropped_down = 0

    # Wiring ----------------------------------------------------------------
    def attached_to(self, attachment: Attachment) -> None:
        """Callback from media when this NIC is plugged in."""
        self.attachment = attachment

    def set_handler(self, handler: FrameHandler) -> None:
        """Install the stack callback invoked for each accepted frame."""
        self.handler = handler

    # Address filtering ------------------------------------------------------
    def join_mac(self, mac: MACAddress) -> None:
        """Accept frames addressed to an additional MAC (VNIC/multicast)."""
        self._accepted.add(mac)

    def leave_mac(self, mac: MACAddress) -> None:
        if mac == self.mac or mac == MAC_BROADCAST:
            raise NetworkError(f"cannot remove built-in address {mac}")
        self._accepted.discard(mac)

    def accepts(self, mac: MACAddress) -> bool:
        return self.promiscuous or mac in self._accepted

    # Transmit ----------------------------------------------------------------
    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame onto the attached medium (no-op when unpowered)."""
        if not self.powered:
            return
        if self.attachment is None:
            raise NetworkError(f"NIC {self.name} is not attached to any medium")
        self.tx_frames += 1
        self.tx_bytes += frame.wire_size
        self.attachment.send(frame)

    # Receive -----------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame) -> None:
        if not self.powered:
            self.rx_dropped_down += 1
            return
        if not self.accepts(frame.dst):
            self.rx_dropped_filter += 1
            return
        now = self.sim.now
        if self.rx_loss_model is not None and self.rx_loss_model(frame, now):
            self.rx_dropped_loss += 1
            if self.sim.trace.enabled_for("nic"):
                self.sim.trace.emit(
                    now, "nic", "rx_loss", nic=self.name, frame=frame.frame_id
                )
            return
        if self.processing_delay <= 0.0:
            self._deliver(frame)
            return
        if self.rx_queue_capacity and self._rx_pending >= self.rx_queue_capacity:
            self.rx_dropped_queue += 1
            if self.sim.trace.enabled_for("nic"):
                self.sim.trace.emit(
                    now, "nic", "rx_overflow", nic=self.name, frame=frame.frame_id
                )
            return
        start = max(now, self._rx_busy_until)
        done = start + self.processing_delay
        self._rx_busy_until = done
        self._rx_pending += 1
        self.sim.schedule_at(done, self._dequeue_and_deliver, frame)

    def _dequeue_and_deliver(self, frame: EthernetFrame) -> None:
        self._rx_pending -= 1
        if self.powered:
            self._deliver(frame)

    def _deliver(self, frame: EthernetFrame) -> None:
        self.rx_frames += 1
        self.rx_bytes += frame.wire_size
        if self.handler is not None:
            self.handler(frame, self)

    def power_off(self) -> None:
        """Crash semantics: stop sending and receiving immediately."""
        self.powered = False

    def power_on(self) -> None:
        self.powered = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NIC {self.name} {self.mac}>"


class VirtualInterface:
    """A VNIC: an (IP, MAC) identity mapped onto a hardware NIC.

    The MAC may be multicast — the core of the paper's switched-Ethernet
    tapping architecture.  Creating the interface joins the MAC on the
    hardware NIC so matching frames are accepted.
    """

    def __init__(
        self,
        name: str,
        ip: IPAddress,
        mac: MACAddress,
        hw_nic: NIC,
    ) -> None:
        self.name = name
        self.ip = ip
        self.mac = mac
        self.hw_nic = hw_nic
        hw_nic.join_mac(mac)

    def remove(self) -> None:
        """Tear the VNIC down (used when a backup relinquishes a role)."""
        self.hw_nic.leave_mac(self.mac)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VNIC {self.name} ip={self.ip} mac={self.mac} on {self.hw_nic.name}>"

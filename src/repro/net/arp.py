"""Address Resolution Protocol.

Each host runs an :class:`ArpService` holding a static table and a dynamic
cache.  Static entries are how the paper wires its tapping architecture:
the gateway statically maps the service IP (SVI) to a *multicast* Ethernet
address (SME), and the primary statically maps the gateway's virtual IP
(GVI) to GME (§3.1) — static because RFC 1812 forbids a router from
accepting a multicast MAC in an ARP reply.

A backup server must stay invisible until failover, so IPs can be placed on
the *suppressed* list: the responder will not answer requests for them and
the host will not announce them, until :meth:`ArpService.unsuppress_ip`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.addresses import MAC_BROADCAST, IPAddress, MACAddress
from repro.net.frame import ETHERTYPE_ARP, EthernetFrame
from repro.net.nic import NIC

ARP_REQUEST = 1
ARP_REPLY = 2

#: Wire size of an ARP message (IPv4 over Ethernet).
ARP_MESSAGE_SIZE = 28

#: How long a dynamic cache entry stays valid (seconds).
ARP_CACHE_TTL = 600.0

#: How long to keep packets queued waiting for resolution before giving up.
ARP_RESOLVE_TIMEOUT = 1.0

#: Retransmit an unanswered request this often while resolution is still
#: pending.  Far above any profile's ARP round trip (worst case ~9 ms), so
#: a retry only ever fires when the request or reply was actually lost.
ARP_RETRY_INTERVAL = 0.1


class ArpMessage:
    """An ARP request or reply."""

    __slots__ = ("op", "sender_ip", "sender_mac", "target_ip", "target_mac")

    def __init__(
        self,
        op: int,
        sender_ip: IPAddress,
        sender_mac: MACAddress,
        target_ip: IPAddress,
        target_mac: Optional[MACAddress] = None,
    ) -> None:
        self.op = op
        self.sender_ip = sender_ip
        self.sender_mac = sender_mac
        self.target_ip = target_ip
        self.target_mac = target_mac

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "REQ" if self.op == ARP_REQUEST else "REPLY"
        return f"<ARP {kind} who-has {self.target_ip} tell {self.sender_ip}>"


Continuation = Callable[[Optional[MACAddress]], None]


class ArpService:
    """Per-host ARP: static table, dynamic cache, responder, resolver."""

    def __init__(self, sim: Any, host: Any) -> None:
        self.sim = sim
        self.host = host
        self._static: Dict[IPAddress, MACAddress] = {}
        self._cache: Dict[IPAddress, Tuple[MACAddress, float]] = {}
        self._pending: Dict[IPAddress, List[Continuation]] = {}
        self.suppressed_ips: set = set()
        self.requests_sent = 0
        self.replies_sent = 0

    # Table management ---------------------------------------------------------
    def add_static(self, ip: IPAddress, mac: MACAddress) -> None:
        """Install a permanent mapping (may map to a multicast MAC)."""
        self._static[ip] = mac

    def remove_static(self, ip: IPAddress) -> None:
        self._static.pop(ip, None)

    def suppress_ip(self, ip: IPAddress) -> None:
        """Stop answering ARP for ``ip`` (passive backup behaviour)."""
        self.suppressed_ips.add(ip)

    def unsuppress_ip(self, ip: IPAddress) -> None:
        """Resume answering ARP for ``ip`` (failover takeover)."""
        self.suppressed_ips.discard(ip)

    def lookup(self, ip: IPAddress) -> Optional[MACAddress]:
        """Synchronous lookup: static first, then unexpired cache entry."""
        static = self._static.get(ip)
        if static is not None:
            return static
        cached = self._cache.get(ip)
        if cached is not None:
            mac, expires = cached
            if expires > self.sim.now:
                return mac
            del self._cache[ip]
        return None

    # Resolution -----------------------------------------------------------------
    def resolve(self, ip: IPAddress, nic: NIC, done: Continuation) -> None:
        """Invoke ``done(mac)`` once ``ip`` is resolved on ``nic``.

        Calls back synchronously on a table hit.  On a miss, broadcasts a
        request, retransmitting every :data:`ARP_RETRY_INTERVAL` (a single
        lost frame must not fail resolution); ``done(None)`` is invoked if
        no reply arrives within :data:`ARP_RESOLVE_TIMEOUT`.
        """
        mac = self.lookup(ip)
        if mac is not None:
            done(mac)
            return
        waiters = self._pending.get(ip)
        if waiters is not None:
            waiters.append(done)
            return
        waiters = [done]
        self._pending[ip] = waiters
        self._broadcast_request(ip, nic)
        # Timers guard on list identity: a timer from this resolution
        # cycle must not retransmit for (or expire) a later cycle that
        # re-resolves the same IP.
        self.sim.schedule(ARP_RETRY_INTERVAL, self._retry_request, ip, nic, waiters)
        self.sim.schedule(ARP_RESOLVE_TIMEOUT, self._resolution_expired, ip, waiters)

    def _broadcast_request(self, target_ip: IPAddress, nic: NIC) -> None:
        sender_ip = self.host.primary_ip_on(nic)
        message = ArpMessage(ARP_REQUEST, sender_ip, nic.mac, target_ip)
        frame = EthernetFrame(
            MAC_BROADCAST, nic.mac, ETHERTYPE_ARP, message, ARP_MESSAGE_SIZE
        )
        self.requests_sent += 1
        nic.transmit(frame)

    def _retry_request(self, ip: IPAddress, nic: NIC, waiters: list) -> None:
        if self._pending.get(ip) is not waiters or not self.host.is_up:
            return
        self._broadcast_request(ip, nic)
        self.sim.schedule(ARP_RETRY_INTERVAL, self._retry_request, ip, nic, waiters)

    def _resolution_expired(self, ip: IPAddress, waiters: list) -> None:
        if self._pending.get(ip) is not waiters:
            return
        del self._pending[ip]
        for done in waiters:
            done(None)

    # Inbound handling ------------------------------------------------------------
    def handle_message(self, message: ArpMessage, nic: NIC) -> None:
        """Process an inbound ARP frame (called by the host stack)."""
        # Opportunistically learn the sender (but never cache multicast
        # MACs from the wire — mirrors the RFC 1812 restriction that
        # motivates the paper's static entries).
        if not message.sender_mac.is_multicast:
            self._cache[message.sender_ip] = (
                message.sender_mac,
                self.sim.now + ARP_CACHE_TTL,
            )
        waiters = self._pending.pop(message.sender_ip, None)
        if waiters:
            resolved = self.lookup(message.sender_ip)
            for done in waiters:
                done(resolved)
        if message.op != ARP_REQUEST:
            return
        if message.target_ip in self.suppressed_ips:
            return
        owned = self.host.owned_ip_macs(nic)
        answer_mac = owned.get(message.target_ip)
        if answer_mac is None:
            return
        reply = ArpMessage(
            ARP_REPLY,
            sender_ip=message.target_ip,
            sender_mac=answer_mac,
            target_ip=message.sender_ip,
            target_mac=message.sender_mac,
        )
        frame = EthernetFrame(
            message.sender_mac, nic.mac, ETHERTYPE_ARP, reply, ARP_MESSAGE_SIZE
        )
        self.replies_sent += 1
        nic.transmit(frame)

"""A managed Ethernet switch.

Models the two tapping mechanisms of §3.1:

* **Port mirroring** — "some managed Ethernet switches provide an option to
  forward traffic flowing from/to a port to some other port": configure
  :meth:`Switch.mirror_port` to copy a port's ingress/egress to a monitor
  port where the backup listens.
* **Multicast group forwarding** — frames addressed to a multicast MAC are
  delivered to every port statically joined to that group (the SME/GME
  addresses), so both primary and backup receive the service traffic.

The switch is store-and-forward with a configurable forwarding latency and
learns unicast source addresses like a real learning switch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.errors import NetworkError
from repro.net.addresses import MACAddress
from repro.net.frame import EthernetFrame
from repro.net.medium import Attachment, FrameReceiver


class SwitchPort(FrameReceiver):
    """One switch port; connected to a station through a :class:`Cable`."""

    def __init__(self, switch: "Switch", index: int) -> None:
        self.switch = switch
        self.index = index
        self.attachment: Optional[Attachment] = None
        self.rx_frames = 0
        self.tx_frames = 0

    def attached_to(self, attachment: Attachment) -> None:
        self.attachment = attachment

    def receive_frame(self, frame: EthernetFrame) -> None:
        self.rx_frames += 1
        self.switch._ingress(self, frame)

    def send(self, frame: EthernetFrame) -> None:
        if self.attachment is not None:
            self.tx_frames += 1
            self.attachment.send(frame)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SwitchPort {self.switch.name}[{self.index}]>"


class Switch:
    """A learning Ethernet switch with mirroring and static multicast."""

    def __init__(
        self,
        sim: Any,
        name: str = "switch",
        forwarding_delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.forwarding_delay = forwarding_delay
        self.ports: List[SwitchPort] = []
        self._mac_table: Dict[MACAddress, SwitchPort] = {}
        self._multicast_groups: Dict[MACAddress, Set[SwitchPort]] = {}
        self._mirrors: Dict[SwitchPort, Set[SwitchPort]] = {}
        self.frames_forwarded = 0
        self.frames_flooded = 0

    # Configuration -----------------------------------------------------------
    def new_port(self) -> SwitchPort:
        """Allocate a port; connect it to a station with a Cable."""
        port = SwitchPort(self, len(self.ports))
        self.ports.append(port)
        return port

    def join_multicast(self, mac: MACAddress, port: SwitchPort) -> None:
        """Statically add ``port`` to the forwarding set of multicast ``mac``."""
        if not mac.is_multicast:
            raise NetworkError(f"{mac} is not a multicast address")
        self._check_port(port)
        self._multicast_groups.setdefault(mac, set()).add(port)

    def leave_multicast(self, mac: MACAddress, port: SwitchPort) -> None:
        members = self._multicast_groups.get(mac)
        if members is not None:
            members.discard(port)
            if not members:
                del self._multicast_groups[mac]

    def mirror_port(self, monitored: SwitchPort, monitor: SwitchPort) -> None:
        """Copy all traffic entering or leaving ``monitored`` to ``monitor``."""
        self._check_port(monitored)
        self._check_port(monitor)
        if monitored is monitor:
            raise NetworkError("cannot mirror a port to itself")
        self._mirrors.setdefault(monitored, set()).add(monitor)

    def unmirror_port(self, monitored: SwitchPort, monitor: SwitchPort) -> None:
        mirrors = self._mirrors.get(monitored)
        if mirrors is not None:
            mirrors.discard(monitor)
            if not mirrors:
                del self._mirrors[monitored]

    def _check_port(self, port: SwitchPort) -> None:
        if port.switch is not self:
            raise NetworkError(f"port {port!r} belongs to another switch")

    # Forwarding ---------------------------------------------------------------
    def _ingress(self, in_port: SwitchPort, frame: EthernetFrame) -> None:
        if not frame.src.is_multicast:
            self._mac_table[frame.src] = in_port
        out_ports = self._select_output_ports(in_port, frame)
        # Mirroring: ingress mirrors of the arrival port, plus egress
        # mirrors of each selected output port.
        mirror_targets: Set[SwitchPort] = set(self._mirrors.get(in_port, ()))
        for port in out_ports:
            mirror_targets |= self._mirrors.get(port, set())
        mirror_targets -= out_ports
        mirror_targets.discard(in_port)
        targets = out_ports | mirror_targets
        if not targets:
            return
        self.frames_forwarded += 1
        if self.forwarding_delay > 0.0:
            self.sim.schedule(self.forwarding_delay, self._egress, targets, frame)
        else:
            self._egress(targets, frame)

    def _select_output_ports(
        self, in_port: SwitchPort, frame: EthernetFrame
    ) -> Set[SwitchPort]:
        if frame.dst.is_broadcast:
            return {port for port in self.ports if port is not in_port}
        if frame.dst.is_multicast:
            members = self._multicast_groups.get(frame.dst)
            if members is not None:
                return {port for port in members if port is not in_port}
            # Unregistered multicast floods, like a real switch.
            self.frames_flooded += 1
            return {port for port in self.ports if port is not in_port}
        learned = self._mac_table.get(frame.dst)
        if learned is not None:
            return set() if learned is in_port else {learned}
        self.frames_flooded += 1
        return {port for port in self.ports if port is not in_port}

    def _egress(self, targets: Set[SwitchPort], frame: EthernetFrame) -> None:
        for port in targets:
            port.send(frame)

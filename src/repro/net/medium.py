"""Transmission media: point-to-point cables and the shared-medium hub.

Devices (NICs, switch ports) implement the :class:`FrameReceiver` protocol
— a single ``receive_frame(frame)`` method — and hold an
:class:`Attachment` through which they transmit.  Media are responsible for
serialisation (a link clocks one frame at a time per direction), propagation
delay, and loss.

The hub reproduces the paper's testbed: a 10/100 Mb/s Ethernet hub is a
*shared half-duplex* medium, so every attached station hears every frame —
which is exactly why the backup can tap the primary's traffic without any
switch support (§6, Experimental Setup).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import NetworkError
from repro.net.frame import EthernetFrame
from repro.net.loss import LossModel, NoLoss
from repro.util.units import transmission_time


class FrameReceiver:
    """Protocol: anything that can be handed a frame by a medium."""

    def receive_frame(self, frame: EthernetFrame) -> None:
        raise NotImplementedError


class Attachment:
    """A device's handle onto a medium; devices call :meth:`send`."""

    def send(self, frame: EthernetFrame) -> None:
        raise NotImplementedError

    def detach(self) -> None:
        """Remove the device from the medium (frames stop flowing)."""


class _CableDirection:
    """One direction of a cable: serialisation state plus the far receiver."""

    __slots__ = ("receiver", "next_free")

    def __init__(self, receiver: FrameReceiver) -> None:
        self.receiver = receiver
        self.next_free = 0.0


class CableAttachment(Attachment):
    __slots__ = ("cable", "direction", "attached")

    def __init__(self, cable: "Cable", direction: _CableDirection) -> None:
        self.cable = cable
        self.direction = direction
        self.attached = True

    def send(self, frame: EthernetFrame) -> None:
        if self.attached:
            self.cable._transmit(self.direction, frame)

    def detach(self) -> None:
        self.attached = False


class Cable:
    """A point-to-point Ethernet link.

    Full-duplex by default (each direction serialises independently);
    half-duplex shares a single transmission resource, which halves usable
    bandwidth under bidirectional load — the behaviour responsible for the
    paper's sub-wire-rate bulk throughput through the hub.
    """

    def __init__(
        self,
        sim: Any,
        end_a: FrameReceiver,
        end_b: FrameReceiver,
        rate_bps: float,
        delay: float = 0.0,
        full_duplex: bool = True,
        loss_model: Optional[LossModel] = None,
        name: str = "cable",
    ) -> None:
        if rate_bps <= 0:
            raise NetworkError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise NetworkError(f"negative link delay {delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        # Per-size serialisation-time cache.  A precomputed reciprocal
        # (size * (8/rate)) would be one multiply but rounds differently
        # from size*8.0/rate in the last ulp, perturbing every arrival
        # time and invalidating stored result hashes; frames come in a
        # handful of wire sizes, so an exact memo is just as cheap.
        self._tx_time_cache: dict = {}
        self.delay = delay
        self.full_duplex = full_duplex
        self.loss_model = loss_model or NoLoss()
        self.name = name
        self._to_b = _CableDirection(end_b)
        self._to_a = _CableDirection(end_a)
        if not full_duplex:
            # Share serialisation state: both directions alias one object's
            # next_free via the cable-level attribute below.
            self._shared_next_free = 0.0
        self.attachment_a = CableAttachment(self, self._to_b)  # A sends toward B
        self.attachment_b = CableAttachment(self, self._to_a)  # B sends toward A
        self.frames_carried = 0
        self.bytes_carried = 0
        # Let endpoints know their attachment if they accept it.
        for endpoint, attachment in (
            (end_a, self.attachment_a),
            (end_b, self.attachment_b),
        ):
            attach_cb = getattr(endpoint, "attached_to", None)
            if attach_cb is not None:
                attach_cb(attachment)

    def _transmit(self, direction: _CableDirection, frame: EthernetFrame) -> None:
        now = self.sim.now
        size = frame.wire_size
        tx_time = self._tx_time_cache.get(size)
        if tx_time is None:
            tx_time = self._tx_time_cache[size] = transmission_time(size, self.rate_bps)
        if self.full_duplex:
            start = max(now, direction.next_free)
            direction.next_free = start + tx_time
        else:
            start = max(now, self._shared_next_free)
            self._shared_next_free = start + tx_time
        arrival = start + tx_time + self.delay
        if self.loss_model(frame, now):
            if self.sim.trace.enabled_for("link"):
                self.sim.trace.emit(now, "link", "drop", link=self.name, frame=frame.frame_id)
            return
        self.frames_carried += 1
        self.bytes_carried += frame.wire_size
        self.sim.schedule_at(arrival, direction.receiver.receive_frame, frame)


class HubAttachment(Attachment):
    __slots__ = ("hub", "receiver", "attached")

    def __init__(self, hub: "Hub", receiver: FrameReceiver) -> None:
        self.hub = hub
        self.receiver = receiver
        self.attached = True

    def send(self, frame: EthernetFrame) -> None:
        if self.attached:
            self.hub._transmit(self, frame)

    def detach(self) -> None:
        self.attached = False
        self.hub._detach(self)


class Hub:
    """A shared-medium Ethernet hub (repeater).

    Every frame sent by one station is delivered to *all* other stations
    after one serialisation on the shared medium plus propagation delay.
    Transmissions from all stations serialise on the single medium
    (half-duplex), approximating CSMA/CD without modelling collisions —
    under the paper's request/response workloads the medium is never
    contended enough for collision dynamics to matter.
    """

    def __init__(
        self,
        sim: Any,
        rate_bps: float,
        delay: float = 0.0,
        loss_model: Optional[LossModel] = None,
        name: str = "hub",
    ) -> None:
        if rate_bps <= 0:
            raise NetworkError(f"hub rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.loss_model = loss_model or NoLoss()
        self.name = name
        self._attachments: List[HubAttachment] = []
        #: Cached fanout snapshot: the currently-attached attachments, so
        #: the per-frame loop skips the ``attached`` re-check per station.
        #: Invalidated (None) on attach/detach; deliveries cannot race it
        #: because receive callbacks run from the scheduler, never inside
        #: the fanout loop itself.
        self._fanout: Optional[List[HubAttachment]] = None
        self._tx_time_cache: dict = {}  # see Cable: bit-exact memo
        self._next_free = 0.0
        self.frames_carried = 0
        self.bytes_carried = 0

    def attach(self, receiver: FrameReceiver) -> HubAttachment:
        """Plug a station into the hub; returns its attachment."""
        attachment = HubAttachment(self, receiver)
        self._attachments.append(attachment)
        self._fanout = None
        attach_cb = getattr(receiver, "attached_to", None)
        if attach_cb is not None:
            attach_cb(attachment)
        return attachment

    def _detach(self, attachment: HubAttachment) -> None:
        try:
            self._attachments.remove(attachment)
        except ValueError:
            pass
        self._fanout = None

    def _transmit(self, sender: HubAttachment, frame: EthernetFrame) -> None:
        now = self.sim.now
        size = frame.wire_size
        tx_time = self._tx_time_cache.get(size)
        if tx_time is None:
            tx_time = self._tx_time_cache[size] = transmission_time(size, self.rate_bps)
        start = max(now, self._next_free)
        self._next_free = start + tx_time
        if self.loss_model(frame, now):
            if self.sim.trace.enabled_for("link"):
                self.sim.trace.emit(now, "link", "drop", link=self.name, frame=frame.frame_id)
            return
        self.frames_carried += 1
        self.bytes_carried += size
        arrival = start + tx_time + self.delay
        fanout = self._fanout
        if fanout is None:
            fanout = self._fanout = [a for a in self._attachments if a.attached]
        schedule_at = self.sim.schedule_at
        for attachment in fanout:
            if attachment is not sender:
                schedule_at(arrival, attachment.receiver.receive_frame, frame)

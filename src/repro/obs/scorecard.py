"""Health scorecards: per-scenario grades from SLO verdicts + evidence.

The scorecard is the publishable end of the telemetry stack: one
Markdown + JSON document that grades each scenario run, lists every SLO
verdict with its burn rate, breaks the takeover into phases, and shows
the worst-case causal chain — the artefact the ROADMAP's chaos campaign
publishes per run, and what ``repro health`` emits.

Grades:

=====  ==========================================================
grade  meaning
=====  ==========================================================
A      every SLO met, invariants hold, max burn rate < 0.5
B      every SLO met, invariants hold, but burn ≥ 0.5 (tight)
C      an SLO missed its objective, but no invariant violated
F      an invariant violated or a client stream failed
=====  ==========================================================

Everything here consumes plain run-record dicts (possibly read back
from the content-hashed result store) plus :class:`repro.obs.slo`
reports — no live simulator objects — so scorecards can be regenerated
from cached evidence alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.slo import SLOReport

#: Burn-rate threshold separating a comfortable pass (A) from a tight
#: one (B): half the error budget consumed.
BURN_COMFORT = 0.5


def grade_record(record: Dict[str, Any], slo_report: SLOReport) -> str:
    """Apply the grading ladder (see module docstring)."""
    invariants = record.get("invariants") or {}
    if "all_hold" in invariants:
        invariants_hold = bool(invariants["all_hold"])
    elif "ok" in record:
        invariants_hold = bool(record["ok"])
    else:
        # Scale records carry no invariant report; the client verdict
        # and the SLOs below are the whole story.
        invariants_hold = True
    clients_ok = bool(
        record.get("clients_verified", record.get("verified", False))
    )
    if not invariants_hold or not clients_ok:
        return "F"
    if not slo_report.ok:
        return "C"
    return "A" if slo_report.max_burn < BURN_COMFORT else "B"


@dataclass
class ScenarioScore:
    """One scenario's grade plus the evidence behind it."""

    name: str
    grade: str
    slo: Dict[str, Any]  # SLOReport.to_record()
    invariants: Dict[str, Any]
    takeover_latency: Optional[float]
    detection_latency: Optional[float]
    degraded: int
    cluster_phases: Optional[Dict[str, Any]] = None
    causal_chain: List[Dict[str, Any]] = field(default_factory=list)
    tsdb: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.grade in ("A", "B")

    def to_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "grade": self.grade,
            "ok": self.ok,
            "slo": self.slo,
            "invariants": self.invariants,
            "takeover_latency": self.takeover_latency,
            "detection_latency": self.detection_latency,
            "degraded": self.degraded,
            "cluster_phases": self.cluster_phases,
            "causal_chain": self.causal_chain,
            "tsdb": self.tsdb,
        }


def _number_or_none(value: Any) -> Optional[float]:
    if isinstance(value, (int, float)) and value == value:  # filters NaN
        return float(value)
    return None


def score_record(
    name: str, record: Dict[str, Any], slo_report: SLOReport
) -> ScenarioScore:
    """Grade one run record against its evaluated SLO report."""
    causal = record.get("causal") or {}
    return ScenarioScore(
        name=name,
        grade=grade_record(record, slo_report),
        slo=slo_report.to_record(),
        invariants=dict(record.get("invariants") or {}),
        takeover_latency=_number_or_none(record.get("takeover_latency")),
        detection_latency=_number_or_none(record.get("detection_latency")),
        degraded=int(record.get("degraded", 0) or 0),
        cluster_phases=record.get("cluster_phases"),
        causal_chain=list(causal.get("chain") or []),
        tsdb=record.get("tsdb"),
    )


@dataclass
class Scorecard:
    """The published document: every scenario's score, one verdict."""

    title: str
    scores: List[ScenarioScore] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.scores) and all(score.ok for score in self.scores)

    def to_json(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "ok": self.ok,
            "scenarios": [score.to_record() for score in self.scores],
        }

    # ------------------------------------------------------------- markdown
    def render_markdown(self) -> str:
        lines: List[str] = [f"# {self.title}", ""]
        lines.append("| scenario | grade | SLOs met | max burn | takeover | degraded |")
        lines.append("|---|---|---|---|---|---|")
        for score in self.scores:
            slos = score.slo.get("slos", [])
            met = sum(1 for s in slos if s.get("ok"))
            takeover = (
                f"{score.takeover_latency * 1e3:.1f} ms"
                if score.takeover_latency is not None
                else "—"
            )
            lines.append(
                f"| {score.name} | **{score.grade}** | {met}/{len(slos)} "
                f"| {score.slo.get('max_burn', 0.0):.2f} | {takeover} "
                f"| {score.degraded} |"
            )
        lines.append("")
        for score in self.scores:
            lines.extend(self._scenario_section(score))
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"**Overall: {verdict}**")
        lines.append("")
        return "\n".join(lines)

    def _scenario_section(self, score: ScenarioScore) -> List[str]:
        lines = [f"## {score.name} — grade {score.grade}", ""]
        lines.append("| SLO | objective | value | burn | verdict | detail |")
        lines.append("|---|---|---|---|---|---|")
        for slo in score.slo.get("slos", []):
            objective = slo.get("objective")
            value = slo.get("value")
            burn = slo.get("burn_rate")
            lines.append(
                "| {name} | {obj} | {val} | {burn} | {verdict} | {detail} |".format(
                    name=slo.get("name"),
                    obj=_fmt(objective),
                    val=_fmt(value),
                    burn=_fmt(burn, "{:.2f}"),
                    verdict="ok" if slo.get("ok") else "**VIOLATED**",
                    detail=slo.get("detail", ""),
                )
            )
        lines.append("")
        phases = (score.cluster_phases or {}).get("phases") or {}
        if phases:
            lines.append("Phases: " + ", ".join(
                f"{name} {info['duration'] * 1e3:.1f} ms"
                for name, info in phases.items()
            ))
            lines.append("")
        if score.causal_chain:
            lines.append("Causal chain:")
            for node in score.causal_chain:
                if node.get("kind") == "span":
                    duration = node.get("duration")
                    timing = (
                        f"{node['begin']:.6f} +{duration * 1e3:.1f} ms"
                        if duration is not None
                        else f"{node['begin']:.6f} (open)"
                    )
                else:
                    timing = f"{node['time']:.6f}"
                lines.append(
                    f"- `{node.get('category')}/{node.get('name')}` {timing}"
                )
            lines.append("")
        return lines


def _fmt(value: Any, fmt: str = "{:g}") -> str:
    if value is None:
        return "—"
    if isinstance(value, float) and value != value:
        return "nan"
    if isinstance(value, (int, float)):
        return fmt.format(value)
    return str(value)


def write_scorecard(
    scorecard: Scorecard, out_dir: Path, basename: str = "scorecard"
) -> Tuple[Path, Path]:
    """Write ``<basename>.md`` and ``<basename>.json``; returns the paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    md_path = out_dir / f"{basename}.md"
    json_path = out_dir / f"{basename}.json"
    md_path.write_text(scorecard.render_markdown())
    json_path.write_text(json.dumps(scorecard.to_json(), indent=1, sort_keys=True) + "\n")
    return md_path, json_path


__all__ = [
    "BURN_COMFORT",
    "ScenarioScore",
    "Scorecard",
    "grade_record",
    "score_record",
    "write_scorecard",
]

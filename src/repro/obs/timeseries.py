"""Sim-time TSDB: bounded ring-buffer series sampled from the registry.

The metrics registry (:mod:`repro.obs.registry`) answers "what is the
value *now*"; fleet questions — "what was the ACK rate while the arbiter
queue was deep", "what is takeover-time p99 across this storm" — need
values *over time*.  :class:`TimeSeriesDB` closes that gap without
touching any hot path:

* it samples the whole registry (optionally one prefix) on a fixed
  **sim-time** cadence via an ordinary scheduled callback — per-event
  costs stay exactly zero, and for a fixed seed the sample times and
  values are identical run to run (byte-identical ``to_json``, tested in
  ``tests/obs/test_timeseries.py``);
* each instrument becomes one :class:`TimeSeries` ring buffer bounded at
  ``capacity`` points, so memory is O(instruments × capacity) no matter
  how long the run;
* counters get **rate derivation** (:meth:`TimeSeriesDB.rate`), with a
  value below its predecessor read as a counter reset (host teardown,
  engine replacement) rather than a negative rate;
* histograms are stored as cumulative fixed-bucket digests; windowed
  percentile queries (:meth:`TimeSeriesDB.percentile`, p50/p95/p99 …)
  subtract two digests and reuse
  :func:`repro.obs.registry.bucket_quantile`.

Per-host scoping rides on the registry's ``<host>.<layer>.<name>``
convention: :meth:`TimeSeriesDB.hosts` lists the first-component scopes,
and any query accepts the fully scoped series name.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, bucket_quantile

#: Default sampling cadence (sim seconds).
DEFAULT_INTERVAL = 0.050

#: Default ring capacity per series (points retained).
DEFAULT_CAPACITY = 512

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

#: A histogram sample: (observation count, observed max, cumulative
#: bucket counts).  Cumulative digests subtract cleanly for windows.
HistSample = Tuple[int, Optional[float], Tuple[int, ...]]


class TimeSeries:
    """One instrument's bounded sample ring (times and values)."""

    __slots__ = ("name", "kind", "bounds", "times", "values", "total_samples")

    def __init__(
        self,
        name: str,
        kind: str,
        capacity: int,
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.bounds = bounds  # histogram series only
        self.times: Deque[float] = deque(maxlen=capacity)
        self.values: Deque[Any] = deque(maxlen=capacity)
        self.total_samples = 0

    def __len__(self) -> int:
        return len(self.times)

    @property
    def dropped(self) -> int:
        """Samples evicted because the ring wrapped."""
        return self.total_samples - len(self.times)

    def add(self, time: float, value: Any) -> None:
        self.times.append(time)
        self.values.append(value)
        self.total_samples += 1

    def latest(self) -> Optional[Tuple[float, Any]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def at_or_before(self, time: float) -> Optional[Tuple[float, Any]]:
        """The newest retained sample taken at or before ``time``."""
        best: Optional[Tuple[float, Any]] = None
        for t, v in zip(self.times, self.values):
            if t > time:
                break
            best = (t, v)
        return best

    def points(self) -> List[Tuple[float, Any]]:
        """Retained (time, value) pairs, oldest first."""
        return list(zip(self.times, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name} ({self.kind}) n={len(self)}>"


class TimeSeriesDB:
    """Registry sampler + query surface (see module docstring).

    Attach to a simulator, :meth:`start` before the run, :meth:`stop`
    after (or let the run end; sampling events past the horizon are
    simply never executed).  All queries are valid mid-run.
    """

    def __init__(
        self,
        sim: Any,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        prefix: str = "",
    ) -> None:
        if interval <= 0:
            raise ValueError("TSDB sampling interval must be positive")
        if capacity <= 0:
            raise ValueError("TSDB series capacity must be positive")
        self.sim = sim
        self.registry = sim.metrics
        self.interval = interval
        self.capacity = capacity
        self.prefix = prefix
        self.samples_taken = 0
        self._series: Dict[str, TimeSeries] = {}
        self._running = False

    # Sampling --------------------------------------------------------------
    def start(self) -> "TimeSeriesDB":
        """Take one sample now and keep sampling every ``interval``."""
        self._running = True
        self.sample()
        self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample()
        self.sim.schedule(self.interval, self._tick)

    def sample(self) -> None:
        """Sample every registry instrument (under ``prefix``) once.

        Instruments registered after earlier samples simply start their
        series late — a series' first point is its instrument's birth as
        seen by the cadence.
        """
        now = self.sim.now
        self.samples_taken += 1
        for name in self.registry.names(self.prefix):
            instrument = self.registry.get(name)
            series = self._series.get(name)
            if isinstance(instrument, Histogram):
                if series is None:
                    series = self._make(name, KIND_HISTOGRAM, instrument.bounds)
                value: Any = (
                    instrument.count,
                    instrument.max,
                    tuple(instrument.bucket_counts),
                )
            elif isinstance(instrument, Counter):
                if series is None:
                    series = self._make(name, KIND_COUNTER)
                value = instrument.value
            elif isinstance(instrument, Gauge):
                if series is None:
                    series = self._make(name, KIND_GAUGE)
                value = instrument.value
            else:  # pragma: no cover - future instrument kinds
                continue
            series.add(now, value)

    def _make(
        self, name: str, kind: str, bounds: Optional[Tuple[float, ...]] = None
    ) -> TimeSeries:
        series = TimeSeries(name, kind, self.capacity, bounds)
        self._series[name] = series
        return series

    # Introspection ---------------------------------------------------------
    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._series if n.startswith(prefix))

    def series(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def hosts(self) -> List[str]:
        """First dotted components — the per-host scopes of the fleet."""
        return sorted({name.split(".", 1)[0] for name in self._series if "." in name})

    def latest(self, name: str, default: Any = None) -> Any:
        series = self._series.get(name)
        if series is None:
            return default
        point = series.latest()
        return default if point is None else point[1]

    # Derived queries -------------------------------------------------------
    def rate(self, name: str, window: Optional[float] = None) -> Optional[float]:
        """Counter increments per sim-second.

        ``window=None`` uses the last two samples (instantaneous rate);
        otherwise the rate is averaged from the newest retained sample at
        or before ``now - window``.  A counter observed *below* its
        earlier value was reset (host teardown): the rate restarts from
        zero instead of going negative.
        """
        series = self._series.get(name)
        if series is None or series.kind != KIND_COUNTER or len(series) < 2:
            return None
        t1, v1 = series.times[-1], series.values[-1]
        if window is None:
            t0, v0 = series.times[-2], series.values[-2]
        else:
            earlier = series.at_or_before(t1 - window)
            if earlier is None or earlier[0] >= t1:
                t0, v0 = series.times[0], series.values[0]
            else:
                t0, v0 = earlier
        if t1 <= t0:
            return None
        increment = v1 - v0 if v1 >= v0 else v1  # reset: count from zero
        return increment / (t1 - t0)

    def rate_series(self, name: str) -> List[Tuple[float, float]]:
        """Per-sample instantaneous rates, ``(time, rate)`` pairs."""
        series = self._series.get(name)
        if series is None or series.kind != KIND_COUNTER:
            return []
        out: List[Tuple[float, float]] = []
        points = series.points()
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t1 > t0:
                increment = v1 - v0 if v1 >= v0 else v1
                out.append((t1, increment / (t1 - t0)))
        return out

    def percentile(
        self, name: str, q: float, window: Optional[float] = None
    ) -> Optional[float]:
        """Quantile of a histogram series from its bucket digests.

        ``window=None`` queries the cumulative (whole-run) digest;
        otherwise the digest at ``now - window`` is subtracted first so
        only observations inside the window count.  The result is
        clamped to the observed maximum (see
        :func:`repro.obs.registry.bucket_quantile`).
        """
        series = self._series.get(name)
        if series is None or series.kind != KIND_HISTOGRAM or not len(series):
            return None
        t_end, (_count, observed_max, counts_end) = (
            series.times[-1],
            series.values[-1],
        )
        counts = list(counts_end)
        if window is not None:
            earlier = series.at_or_before(t_end - window)
            if earlier is not None and earlier[0] < t_end:
                _t0, (_c0, _m0, counts_start) = earlier
                # A bucket below its earlier value was reset; keep the
                # post-reset cumulative count for it.
                counts = [
                    e - s if e >= s else e
                    for e, s in zip(counts_end, counts_start)
                ]
        return bucket_quantile(series.bounds or (), counts, q, observed_max)

    def digest(
        self,
        name: str,
        quantiles: Tuple[float, ...] = (0.50, 0.95, 0.99),
        window: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """JSON-able percentile digest of one histogram series."""
        series = self._series.get(name)
        if series is None or series.kind != KIND_HISTOGRAM or not len(series):
            return None
        count, observed_max, _counts = series.values[-1]
        out: Dict[str, Any] = {"count": count, "max": observed_max}
        for q in quantiles:
            out[f"p{round(q * 100):02d}"] = self.percentile(name, q, window)
        return out

    # Export ----------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Run-record sized description: cadence, volume, eviction."""
        return {
            "interval": self.interval,
            "samples": self.samples_taken,
            "series": len(self._series),
            "points": sum(len(s) for s in self._series.values()),
            "dropped": sum(s.dropped for s in self._series.values()),
        }

    def to_json(self) -> Dict[str, Any]:
        """Full deterministic dump: every retained point of every series.

        For a fixed seed two runs produce identical documents (the
        determinism contract the tests pin byte-for-byte).
        """
        series_out: Dict[str, Any] = {}
        for name in self.names():
            series = self._series[name]
            entry: Dict[str, Any] = {
                "kind": series.kind,
                "t": list(series.times),
                "v": [
                    list(v) if isinstance(v, tuple) else v for v in series.values
                ],
                "dropped": series.dropped,
            }
            if series.bounds is not None:
                entry["bounds"] = list(series.bounds)
            series_out[name] = entry
        return {"interval": self.interval, "capacity": self.capacity, "series": series_out}


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL",
    "TimeSeries",
    "TimeSeriesDB",
]

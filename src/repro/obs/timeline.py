"""Failover timeline reconstruction — the paper's phase decomposition.

Figure 5/6 of the paper explain a failover as phases: the primary fails,
the backup *detects* the silence, *takes over* the connections, and the
client recovers once its next *retransmission is accepted* by the new
primary.  This module derives that decomposition for any traced run from
a handful of cold-path markers:

=====================  ==========================================
record                 meaning
=====================  ==========================================
app/client_progress    the client made byte progress (checkpoints)
host/crash             the primary lost power (annotation only)
sttcp/primary_suspected  heartbeat silence crossed the threshold
sttcp/takeover         the backup became the primary
failover/first_ack     first client retransmission accepted
=====================  ==========================================

The outage window is anchored on **client progress**: the longest gap
between consecutive ``client_progress`` checkpoints is, by construction,
exactly :attr:`RunResult.max_gap` — so the phase durations sum to the
measured client-visible outage *by identity*, not by coincidence.  The
crash itself is reported as an annotation inside the detection phase
(the client keeps eating buffered bytes for a moment after the power
goes out, which is why the outage starts at its last progress, not at
the crash).

:class:`TimelineCollector` subscribes to cold categories only, so it can
be left attached to every harness run without waking the hot ``tcp`` /
``link`` emit paths (their ``enabled_for`` guards still see no sink).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.trace import TraceRecord, Tracer

#: Categories the collector subscribes to — cold paths only.
TIMELINE_CATEGORIES = ("host", "sttcp", "app", "failover", "cluster")

#: Cluster-level phase names (fabric work around the per-pair failover).
PHASE_FENCE = "fence"
PHASE_ELECTION = "election"
PHASE_RESYNC = "resync"

#: Phase names, in order (recovery replaces rto_wait+resume when the
#: first-retransmission marker is unavailable).
PHASE_DETECTION = "detection"
PHASE_TAKEOVER = "takeover"
PHASE_RTO_WAIT = "rto_wait"
PHASE_RESUME = "resume"
PHASE_RECOVERY = "recovery"


@dataclass
class Phase:
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class FailoverTimeline:
    """One reconstructed failover: the outage window, its phases, and
    the point events annotating them."""

    outage_start: float
    outage_end: float
    phases: List[Phase]
    #: (time, label) annotations — crash, suspicion, takeover, first ack.
    events: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def outage(self) -> float:
        """The client-visible service interruption (== RunResult.max_gap)."""
        return self.outage_end - self.outage_start

    def phase(self, name: str) -> Optional[Phase]:
        for phase in self.phases:
            if phase.name == name:
                return phase
        return None

    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary for the result store."""
        return {
            "outage": self.outage,
            "outage_start": self.outage_start,
            "outage_end": self.outage_end,
            "phases": {p.name: p.duration for p in self.phases},
            "events": {label: time for time, label in self.events},
        }

    def render(self) -> str:
        """Text timeline, one line per phase, annotations interleaved."""
        lines = [
            f"failover timeline: client outage {self.outage * 1e3:.1f} ms "
            f"({self.outage_start:.6f} → {self.outage_end:.6f})"
        ]
        rows: List[Tuple[float, str]] = []
        width = max((len(p.name) for p in self.phases), default=8)
        for phase in self.phases:
            rows.append(
                (
                    phase.start,
                    f"  phase {phase.name:<{width}} {phase.start:.6f} → "
                    f"{phase.end:.6f}  ({phase.duration * 1e3:9.3f} ms)",
                )
            )
        for time, label in self.events:
            rows.append((time, f"  event {label:<{width}} {time:.6f}"))
        rows.sort(key=lambda row: row[0])
        lines.extend(text for _, text in rows)
        total = sum(p.duration for p in self.phases)
        lines.append(f"  sum of phases: {total * 1e3:.1f} ms (= client-visible outage)")
        return "\n".join(lines)


class TimelineCollector:
    """Trace sink collecting the cold-path markers a timeline needs.

    Attach to a tracer (subscribes to :data:`TIMELINE_CATEGORIES` only),
    run the scenario, then call :meth:`reconstruct`.
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._tracer: Optional[Tracer] = None

    def attach(self, tracer: Tracer) -> "TimelineCollector":
        tracer.add_sink(self, categories=list(TIMELINE_CATEGORIES))
        self._tracer = tracer
        return self

    def detach(self) -> None:
        if self._tracer is not None:
            self._tracer.remove_sink(self)
            self._tracer = None

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def reconstruct(self) -> Optional[FailoverTimeline]:
        return reconstruct_failover(self.records)

    def reconstruct_cluster(self) -> Optional["ClusterPhases"]:
        return reconstruct_cluster_phases(self.records)


def _first(
    records: List[TraceRecord], category: str, event: str, at_or_after: float = 0.0
) -> Optional[TraceRecord]:
    for record in records:
        if (
            record.category == category
            and record.event == event
            and record.time >= at_or_after
        ):
            return record
    return None


def reconstruct_failover(records: List[TraceRecord]) -> Optional[FailoverTimeline]:
    """Derive the phase decomposition from a record stream.

    Returns None when the stream holds no reconstructible failover: no
    takeover happened, or there are too few client checkpoints to locate
    an outage window.
    """
    progress = [r.time for r in records if r.category == "app" and r.event == "client_progress"]
    if len(progress) < 2:
        return None
    suspected = _first(records, "sttcp", "primary_suspected")
    takeover = _first(records, "sttcp", "takeover")
    if suspected is None or takeover is None:
        return None

    # The outage window: the longest inter-checkpoint gap — identical to
    # RunResult.max_gap because the checkpoints are the same events.
    gap_index = max(
        range(len(progress) - 1), key=lambda i: progress[i + 1] - progress[i]
    )
    outage_start = progress[gap_index]
    outage_end = progress[gap_index + 1]

    events: List[Tuple[float, str]] = []
    crash = _first(records, "host", "crash")
    if crash is not None:
        events.append((crash.time, "crash"))
    events.append((suspected.time, "suspected"))
    events.append((takeover.time, "takeover"))

    phases = [Phase(PHASE_DETECTION, outage_start, suspected.time)]
    phases.append(Phase(PHASE_TAKEOVER, suspected.time, takeover.time))
    first_ack = _first(records, "failover", "first_ack", at_or_after=takeover.time)
    if first_ack is not None and first_ack.time <= outage_end:
        events.append((first_ack.time, "first_ack"))
        phases.append(Phase(PHASE_RTO_WAIT, takeover.time, first_ack.time))
        phases.append(Phase(PHASE_RESUME, first_ack.time, outage_end))
    else:
        phases.append(Phase(PHASE_RECOVERY, takeover.time, outage_end))
    return FailoverTimeline(
        outage_start=outage_start,
        outage_end=outage_end,
        phases=phases,
        events=events,
    )


@dataclass
class ClusterPhases:
    """Fabric-level phase decomposition of a cluster takeover.

    The per-pair :class:`FailoverTimeline` explains the *client's* view;
    this explains the *fleet's*: when the arbiter fenced the suspect
    (fence → STONITH actuation), when the coordinator elected replacement
    backups, and when each replacement shadow finished resyncing.  Phases
    may overlap — elections begin while the fence actuation is still
    queued — so they are reported as absolute windows, not a stack.
    """

    phases: List[Phase]
    #: (time, label) point annotations (per-service elections, syncs).
    events: List[Tuple[float, str]] = field(default_factory=list)

    def phase(self, name: str) -> Optional[Phase]:
        for phase in self.phases:
            if phase.name == name:
                return phase
        return None

    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary for the cluster run record."""
        return {
            "phases": {
                p.name: {"start": p.start, "end": p.end, "duration": p.duration}
                for p in self.phases
            },
            "events": [[time, label] for time, label in self.events],
        }

    def render(self) -> str:
        """Text rendering, one line per phase, annotations interleaved."""
        lines = ["cluster phases:"]
        width = max(
            (len(p.name) for p in self.phases),
            default=8,
        )
        rows: List[Tuple[float, str]] = []
        for phase in self.phases:
            rows.append(
                (
                    phase.start,
                    f"  phase {phase.name:<{width}} {phase.start:.6f} → "
                    f"{phase.end:.6f}  ({phase.duration * 1e3:9.3f} ms)",
                )
            )
        for time, label in self.events:
            rows.append((time, f"  event {label:<{width}} {time:.6f}"))
        rows.sort(key=lambda row: row[0])
        lines.extend(text for _, text in rows)
        return "\n".join(lines)


def reconstruct_cluster_phases(
    records: List[TraceRecord],
) -> Optional[ClusterPhases]:
    """Derive fence → election → resync windows from cluster records.

    Anchors (all cold-path ``cluster`` category, emitted by the arbiter
    and the election coordinator):

    ==========================  =======================================
    record                      meaning
    ==========================  =======================================
    cluster/fence_requested     STONITH requested for a suspect host
    cluster/fenced              the actuation landed (power cut)
    cluster/election_begin      a takeover consumed a pool backup
    cluster/elected             a replacement backup won its election
    cluster/shadow_converged    a replacement shadow finished resync
    ==========================  =======================================

    Returns None when no fence was ever requested and no election began
    (the stream is not a cluster takeover).
    """
    def times(event: str) -> List[float]:
        return [
            r.time
            for r in records
            if r.category == "cluster" and r.event == event
        ]

    fence_requests = times("fence_requested")
    fenced = times("fenced")
    election_begins = times("election_begin")
    elected = times("elected") + times("election_exhausted")
    converged = times("shadow_converged")
    if not fence_requests and not election_begins:
        return None

    phases: List[Phase] = []
    events: List[Tuple[float, str]] = []
    if fence_requests:
        fence_end = max(fenced) if fenced else max(fence_requests)
        phases.append(Phase(PHASE_FENCE, min(fence_requests), fence_end))
        for time in fenced:
            events.append((time, "fenced"))
    if election_begins:
        election_end = max(elected) if elected else max(election_begins)
        phases.append(Phase(PHASE_ELECTION, min(election_begins), election_end))
        for time in elected:
            events.append((time, "elected"))
        if converged:
            resync_start = min(elected) if elected else min(election_begins)
            phases.append(Phase(PHASE_RESYNC, resync_start, max(converged)))
            for time in converged:
                events.append((time, "shadow_converged"))
    return ClusterPhases(phases=phases, events=events)

"""Span reassembly: turn the Tracer's begin/end records back into units.

The span *protocol* lives in :mod:`repro.sim.trace` (reserved field keys
``span``/``sid``/``psid`` on ordinary records); this module is the
post-hoc half — given any record stream (a :class:`RecordingSink`, a
flight-recorder dump, a JSONL file read back), :func:`assemble_spans`
pairs begins with ends and rebuilds the parent/child tree.

Malformed streams are data, not errors: a crash mid-span leaves an open
span (``end is None``), an end without a begin is reported as an orphan,
and both survive assembly so diagnosis tools can show exactly what the
simulation managed to record before it died.

**Causal flows.**  Parent/child links only express nesting on one
emitter; a cluster takeover hops *across* hosts — the backup detects,
the arbiter fences, the coordinator elects, replacement shadows resync.
Those spans carry the reserved ``flow`` field (one id per causal chain,
see :data:`repro.sim.trace.FLOW_KEY`); :meth:`SpanSet.flows` groups them
back into begin-ordered chains and :mod:`repro.obs.export` renders each
chain as Chrome trace-event flow arrows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import (
    FLOW_KEY,
    SPAN_BEGIN,
    SPAN_END,
    SPAN_ID_KEY,
    SPAN_KEY,
    SPAN_PARENT_KEY,
    TraceRecord,
)


@dataclass
class Span:
    """One reassembled begin/end episode."""

    sid: int
    category: str
    name: str
    begin: float
    end: Optional[float] = None
    parent: Optional[int] = None
    flow: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        """True when the span was never closed (crash mid-span)."""
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.begin

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.open else f"{self.duration:.6f}s"
        return f"<Span #{self.sid} {self.category}/{self.name} {state}>"


@dataclass
class SpanSet:
    """Assembly result: the span forest plus everything that didn't pair."""

    spans: List[Span]              # every span, in begin order
    roots: List[Span]              # spans with no (known) parent
    orphan_ends: List[TraceRecord]  # END records whose sid never began

    @property
    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.open]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def first(self, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def flows(self) -> Dict[int, List[Span]]:
        """Causal chains: flow id → member spans, in begin order.

        Each chain is one cross-host causal episode (a cluster takeover:
        detection → fence → election → resync → resume); begin order is
        causal order because the sim is single-threaded.
        """
        chains: Dict[int, List[Span]] = {}
        for span in self.spans:
            if span.flow is not None:
                chains.setdefault(span.flow, []).append(span)
        return chains

    def flow_of(self, flow: int) -> List[Span]:
        """Members of one causal chain (empty if the id is unknown)."""
        return [s for s in self.spans if s.flow == flow]


def is_span_record(record: TraceRecord) -> bool:
    return SPAN_KEY in record.fields


def assemble_spans(records: Iterable[TraceRecord]) -> SpanSet:
    """Pair span begin/end records from a stream, in stream order.

    Non-span records pass through untouched (they are simply skipped).
    An END whose sid has no matching BEGIN — possible when the stream is
    a ring-buffer dump whose head was overwritten — is collected into
    ``orphan_ends`` rather than dropped.  A BEGIN without an END stays
    open.  Duplicate ENDs for the same sid: the first one wins.
    """
    spans: List[Span] = []
    by_sid: Dict[int, Span] = {}
    orphan_ends: List[TraceRecord] = []

    for record in records:
        marker = record.fields.get(SPAN_KEY)
        if marker is None:
            continue
        sid = record.fields.get(SPAN_ID_KEY)
        if not isinstance(sid, int):
            orphan_ends.append(record)
            continue
        if marker == SPAN_BEGIN:
            extra = {
                k: v
                for k, v in record.fields.items()
                if k not in (SPAN_KEY, SPAN_ID_KEY, SPAN_PARENT_KEY, FLOW_KEY)
            }
            span = Span(
                sid=sid,
                category=record.category,
                name=record.event,
                begin=record.time,
                parent=record.fields.get(SPAN_PARENT_KEY),
                flow=record.fields.get(FLOW_KEY),
                fields=extra,
            )
            spans.append(span)
            by_sid[sid] = span
        elif marker == SPAN_END:
            span = by_sid.get(sid)
            if span is None:
                orphan_ends.append(record)
                continue
            if span.end is None:
                span.end = record.time
                for k, v in record.fields.items():
                    if k not in (SPAN_KEY, SPAN_ID_KEY, SPAN_PARENT_KEY, FLOW_KEY):
                        span.fields[k] = v
                if span.flow is None:
                    span.flow = record.fields.get(FLOW_KEY)
        else:
            orphan_ends.append(record)

    roots: List[Span] = []
    for span in spans:
        parent = by_sid.get(span.parent) if span.parent is not None else None
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    return SpanSet(spans=spans, roots=roots, orphan_ends=orphan_ends)


def causal_chains(
    records: Iterable[TraceRecord],
) -> Dict[int, List[Dict[str, Any]]]:
    """Flow id → time-ordered node summaries, spans *and* instants.

    :meth:`SpanSet.flows` covers spans only; a chain's terminal node is
    often an instant record (``failover/first_ack``, the client's stream
    resuming).  This merges both into JSON-ready node dicts — ``kind``
    ``"span"`` (with ``begin``/``end``/``duration``) or ``"event"``
    (with ``time``) — suitable for run records and drill attachments.
    """
    records = list(records)
    span_set = assemble_spans(records)
    span_of_sid = {span.sid: span for span in span_set.spans}
    chains: Dict[int, List[Dict[str, Any]]] = {}
    # One pass in stream order: the sim is single-threaded, so stream
    # order *is* causal order, including ties at the same sim time.
    for record in records:
        flow = record.fields.get(FLOW_KEY)
        if not isinstance(flow, int):
            continue
        if is_span_record(record):
            if record.fields.get(SPAN_KEY) != SPAN_BEGIN:
                continue  # the begin record already placed this span
            span = span_of_sid.get(record.fields.get(SPAN_ID_KEY))
            if span is None or span.flow != flow:
                continue
            chains.setdefault(flow, []).append(
                {
                    "kind": "span",
                    "category": span.category,
                    "name": span.name,
                    "begin": span.begin,
                    "end": span.end,
                    "duration": span.duration,
                }
            )
        else:
            chains.setdefault(flow, []).append(
                {
                    "kind": "event",
                    "category": record.category,
                    "name": record.event,
                    "time": record.time,
                }
            )
    return dict(sorted(chains.items()))


def render_span_tree(span_set: SpanSet) -> str:
    """Indented text rendering of the span forest (debugging aid)."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        if span.open:
            timing = f"begin={span.begin:.6f} (open)"
        else:
            timing = f"begin={span.begin:.6f} dur={span.duration:.6f}"
        lines.append(f"{'  ' * depth}{span.category}/{span.name} {timing}")
        for child in span.children:
            visit(child, depth + 1)

    for root in span_set.roots:
        visit(root, 0)
    for record in span_set.orphan_ends:
        lines.append(f"orphan-end {record.category}/{record.event} at {record.time:.6f}")
    return "\n".join(lines)

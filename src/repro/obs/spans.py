"""Span reassembly: turn the Tracer's begin/end records back into units.

The span *protocol* lives in :mod:`repro.sim.trace` (reserved field keys
``span``/``sid``/``psid`` on ordinary records); this module is the
post-hoc half — given any record stream (a :class:`RecordingSink`, a
flight-recorder dump, a JSONL file read back), :func:`assemble_spans`
pairs begins with ends and rebuilds the parent/child tree.

Malformed streams are data, not errors: a crash mid-span leaves an open
span (``end is None``), an end without a begin is reported as an orphan,
and both survive assembly so diagnosis tools can show exactly what the
simulation managed to record before it died.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import (
    SPAN_BEGIN,
    SPAN_END,
    SPAN_ID_KEY,
    SPAN_KEY,
    SPAN_PARENT_KEY,
    TraceRecord,
)


@dataclass
class Span:
    """One reassembled begin/end episode."""

    sid: int
    category: str
    name: str
    begin: float
    end: Optional[float] = None
    parent: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        """True when the span was never closed (crash mid-span)."""
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.begin

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.open else f"{self.duration:.6f}s"
        return f"<Span #{self.sid} {self.category}/{self.name} {state}>"


@dataclass
class SpanSet:
    """Assembly result: the span forest plus everything that didn't pair."""

    spans: List[Span]              # every span, in begin order
    roots: List[Span]              # spans with no (known) parent
    orphan_ends: List[TraceRecord]  # END records whose sid never began

    @property
    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.open]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def first(self, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.name == name:
                return span
        return None


def is_span_record(record: TraceRecord) -> bool:
    return SPAN_KEY in record.fields


def assemble_spans(records: Iterable[TraceRecord]) -> SpanSet:
    """Pair span begin/end records from a stream, in stream order.

    Non-span records pass through untouched (they are simply skipped).
    An END whose sid has no matching BEGIN — possible when the stream is
    a ring-buffer dump whose head was overwritten — is collected into
    ``orphan_ends`` rather than dropped.  A BEGIN without an END stays
    open.  Duplicate ENDs for the same sid: the first one wins.
    """
    spans: List[Span] = []
    by_sid: Dict[int, Span] = {}
    orphan_ends: List[TraceRecord] = []

    for record in records:
        marker = record.fields.get(SPAN_KEY)
        if marker is None:
            continue
        sid = record.fields.get(SPAN_ID_KEY)
        if not isinstance(sid, int):
            orphan_ends.append(record)
            continue
        if marker == SPAN_BEGIN:
            extra = {
                k: v
                for k, v in record.fields.items()
                if k not in (SPAN_KEY, SPAN_ID_KEY, SPAN_PARENT_KEY)
            }
            span = Span(
                sid=sid,
                category=record.category,
                name=record.event,
                begin=record.time,
                parent=record.fields.get(SPAN_PARENT_KEY),
                fields=extra,
            )
            spans.append(span)
            by_sid[sid] = span
        elif marker == SPAN_END:
            span = by_sid.get(sid)
            if span is None:
                orphan_ends.append(record)
                continue
            if span.end is None:
                span.end = record.time
                for k, v in record.fields.items():
                    if k not in (SPAN_KEY, SPAN_ID_KEY, SPAN_PARENT_KEY):
                        span.fields[k] = v
        else:
            orphan_ends.append(record)

    roots: List[Span] = []
    for span in spans:
        parent = by_sid.get(span.parent) if span.parent is not None else None
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    return SpanSet(spans=spans, roots=roots, orphan_ends=orphan_ends)


def render_span_tree(span_set: SpanSet) -> str:
    """Indented text rendering of the span forest (debugging aid)."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        if span.open:
            timing = f"begin={span.begin:.6f} (open)"
        else:
            timing = f"begin={span.begin:.6f} dur={span.duration:.6f}"
        lines.append(f"{'  ' * depth}{span.category}/{span.name} {timing}")
        for child in span.children:
            visit(child, depth + 1)

    for root in span_set.roots:
        visit(root, 0)
    for record in span_set.orphan_ends:
        lines.append(f"orphan-end {record.category}/{record.event} at {record.time:.6f}")
    return "\n".join(lines)

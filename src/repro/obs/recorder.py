"""The flight recorder: a bounded ring buffer of recent trace records.

Attach one as a wildcard sink and forget about it — appending to a
preallocated ring is cheap enough to leave on for every drill and every
harness run.  When a run goes red (stack crash, drill failure, failed
assertion) the driver dumps the ring: the last N records before the
failure, rendered through the same :func:`repro.sim.trace.format_record`
as live print output, so the black box reads exactly like a trace you
would have watched.

Determinism: records are stored as-is and only rendered at dump time;
for a fixed seed the simulation emits the same records in the same
order, so two dumps of the same run are byte-identical (tested in
``tests/obs/test_recorder.py``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.trace import TraceRecord, format_record

DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Ring buffer trace sink holding the last ``capacity`` records."""

    __slots__ = ("capacity", "_ring", "_next", "total_records")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[TraceRecord]] = [None] * capacity
        self._next = 0          # next write slot
        self.total_records = 0  # lifetime count, including overwritten

    def __call__(self, record: TraceRecord) -> None:
        self._ring[self._next] = record
        self._next = (self._next + 1) % self.capacity
        self.total_records += 1

    @property
    def dropped(self) -> int:
        """Records overwritten because the ring wrapped."""
        return max(0, self.total_records - self.capacity)

    def records(self) -> List[TraceRecord]:
        """Retained records, oldest first."""
        if self.total_records < self.capacity:
            return [r for r in self._ring[: self._next] if r is not None]
        return [
            r
            for r in self._ring[self._next :] + self._ring[: self._next]
            if r is not None
        ]

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self.total_records = 0

    def dump(self, reason: str = "") -> str:
        """Render the ring as text (the black-box transcript)."""
        lines = [
            "=== flight recorder dump"
            + (f": {reason}" if reason else "")
            + f" ({len(self.records())} of {self.total_records} records"
            + (f", {self.dropped} dropped" if self.dropped else "")
            + ") ==="
        ]
        lines.extend(format_record(r) for r in self.records())
        return "\n".join(lines) + "\n"

    def dump_to(self, path: str, reason: str = "") -> str:
        """Write :meth:`dump` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dump(reason=reason))
        return path

"""Observability TCP extensions: probes that ride the extension API.

These are :class:`repro.tcp.extension.TCPExtension` subclasses that
attach *observation* to a connection without the core engines carrying
any bookkeeping for them — the vanilla hot path stays untouched; a probe
costs something only on the connections it is registered on.

* :class:`FirstAckProbe` — one-shot failover checkpoint: emits the
  ``failover/first_ack`` trace record for the first client segment a
  just-taken-over server accepts (the paper's "first retransmission
  accepted" instant, the end of the client's RTO wait), then removes
  itself.
* :class:`TraceProbeExtension` — counts every hook invocation; used by
  drills and tests to assert hook ordering and leak-freedom when several
  extensions stack on one connection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.tcp.extension import TCPExtension

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.segment import TCPSegment
    from repro.tcp.tcb import TCPConnection


class FirstAckProbe(TCPExtension):
    """Emit ``failover/first_ack`` on the next inbound segment, once.

    Attached at takeover time; the next segment this connection receives
    necessarily came from the client itself (suppression is lifted and
    the old primary is gone), so its arrival marks the client-visible
    end of the outage for this connection.
    """

    name = "obs.first_ack"

    def __init__(self, flow: "int | None" = None) -> None:
        #: Causal-chain id captured at attach time (takeover), so the
        #: eventual first-ack record joins the failover's flow even
        #: though it fires in a much later event.
        self.flow = flow

    def on_segment_in(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        conn.remove_extension(self)
        trace = conn.sim.trace
        if trace.enabled_for("failover"):
            fields: Dict[str, Any] = {
                "host": conn.layer.host.name,
                "remote": f"{conn.remote_ip}:{conn.remote_port}",
                "amount": segment.payload_length,
            }
            if self.flow is not None:
                fields["flow"] = self.flow
            trace.emit(conn.sim.now, "failover", "first_ack", **fields)
        return False


class TraceProbeExtension(TCPExtension):
    """Count hook invocations; assert ordering/leak properties in drills.

    ``calls`` maps hook name → invocation count.  ``transmitted`` counts
    the segments that reached this probe's ``filter_transmit`` — on a
    connection where an output-suppressing extension is registered
    *ahead* of the probe, every suppressed segment is vetoed before the
    probe sees it, so a non-zero ``transmitted`` while suppression is
    active means the chain is mis-ordered (segments are leaking past the
    suppressor).  The probe never consumes, vetoes, or adjusts anything.
    """

    name = "obs.trace_probe"

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {
            "on_segment_in": 0,
            "on_ack": 0,
            "filter_transmit": 0,
            "on_state_change": 0,
            "on_isn_learned": 0,
            "after_output": 0,
        }
        self.transmitted = 0
        self.states: list = []
        self.isn_events: list = []

    def on_segment_in(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        self.calls["on_segment_in"] += 1
        return False

    def on_ack(self, conn: "TCPConnection", segment: "TCPSegment", ack_abs: int) -> int:
        self.calls["on_ack"] += 1
        return ack_abs

    def filter_transmit(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        self.calls["filter_transmit"] += 1
        self.transmitted += 1
        return True

    def on_state_change(self, conn: "TCPConnection", old: Any, new: Any) -> None:
        self.calls["on_state_change"] += 1
        self.states.append((old, new))

    def on_isn_learned(self, conn: "TCPConnection", kind: str, isn_abs: int) -> None:
        self.calls["on_isn_learned"] += 1
        self.isn_events.append((kind, isn_abs))

    def after_output(self, conn: "TCPConnection") -> None:
        self.calls["after_output"] += 1

"""Declarative SLO engine: JSON specs evaluated against run evidence.

An *SLI* (service-level indicator) is a number computed from a run
record — the JSON-able dict a cluster or scale run assembles — plus the
TSDB digests embedded in it.  An *SLO* binds an SLI to an objective and
yields a verdict with a **burn rate**: the fraction of the error budget
the run consumed (1.0 = budget exactly spent, >1.0 = violated).  Specs
are plain JSON under ``configs/slo/`` so a scenario's service-level
expectations are reviewable data, not code::

    {"name": "cluster", "slos": [
      {"name": "availability", "sli": "availability",
       "objective": 0.95, "window": 2.0},
      {"name": "takeover-p99", "sli": "takeover_latency",
       "objective": "budget"}]}

The objective ``"budget"`` resolves against the *scenario-derived*
bounds that :mod:`repro.cluster.invariants` computed and embedded into
``record["invariants"]`` (``takeover_budget`` / ``election_budget``) —
the engine reuses those numbers rather than duplicating the formulas,
and deliberately reads them from the record so it works on cached store
records with no live cluster objects (and no ``obs → cluster`` import).

Shipped SLIs
============

``availability``
    ``1 − gap/duration`` per pair, worst pair wins.  With ``window`` W
    the verdict is a windowed burn rate — the worst observed outage
    measured against the outage allowance of a W-second window
    (``gap / ((1 − objective) · W)``) — the standard fast-burn alert
    form; without it, whole-run availability against the objective.
``takeover_latency`` / ``detection_latency``
    Crash-relative latencies from the record; burn = value/objective.
``election_sync_p99``
    p99 of the snapshot-resync latency histogram, preferring the TSDB
    digest embedded in the record, falling back to the election records.
``exactly_once``
    Fraction of client streams verified exactly-once (no gap, no
    duplicate, no corruption), degraded connections counted as failures.
``no_dual_primary``
    The dual-primary invariant as a 0/1 indicator.
``resource_leaks``
    Leftover TCBs/shadows after the run (scale records); burn is the
    leak count against an allowance.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError

#: value, burn rate, ok, one-line human detail.
SLIVerdict = Tuple[Optional[float], Optional[float], bool, str]


# --------------------------------------------------------------------- spec
@dataclass(frozen=True)
class SLO:
    """One objective bound to one SLI."""

    name: str
    sli: str
    objective: Union[float, str]  # a number, or "budget"
    window: Optional[float] = None
    description: str = ""


@dataclass(frozen=True)
class SLOSpec:
    """A named set of SLOs (one JSON file under ``configs/slo/``)."""

    name: str
    slos: Tuple[SLO, ...]
    description: str = ""


_SLO_KEYS = {"name", "sli", "objective", "window", "description"}
_SPEC_KEYS = {"name", "slos", "description"}


def _require_keys(obj: Dict[str, Any], required: set, allowed: set, what: str) -> None:
    missing = required - set(obj)
    if missing:
        raise ConfigurationError(f"{what}: missing keys {sorted(missing)}")
    unknown = set(obj) - allowed
    if unknown:
        raise ConfigurationError(
            f"{what}: unknown keys {sorted(unknown)} (allowed: {sorted(allowed)})"
        )


def spec_from_dict(obj: Dict[str, Any], source: str = "<dict>") -> SLOSpec:
    """Build a spec from parsed JSON, validating loudly."""
    _require_keys(obj, {"name", "slos"}, _SPEC_KEYS, f"SLO spec {source}")
    if not isinstance(obj["slos"], list) or not obj["slos"]:
        raise ConfigurationError(f"SLO spec {source}: 'slos' must be a non-empty list")
    slos: List[SLO] = []
    for index, entry in enumerate(obj["slos"]):
        what = f"SLO spec {source} slos[{index}]"
        if not isinstance(entry, dict):
            raise ConfigurationError(f"{what}: must be an object")
        _require_keys(entry, {"name", "sli", "objective"}, _SLO_KEYS, what)
        if entry["sli"] not in SLI_FUNCTIONS:
            raise ConfigurationError(
                f"{what}: unknown sli {entry['sli']!r} "
                f"(available: {sorted(SLI_FUNCTIONS)})"
            )
        objective = entry["objective"]
        if not (isinstance(objective, (int, float)) or objective == "budget"):
            raise ConfigurationError(
                f"{what}: objective must be a number or \"budget\""
            )
        window = entry.get("window")
        if window is not None and (not isinstance(window, (int, float)) or window <= 0):
            raise ConfigurationError(f"{what}: window must be a positive number")
        slos.append(
            SLO(
                name=entry["name"],
                sli=entry["sli"],
                objective=objective,
                window=window,
                description=entry.get("description", ""),
            )
        )
    return SLOSpec(
        name=obj["name"], slos=tuple(slos), description=obj.get("description", "")
    )


#: Shipped specs live here; bare names and repo-relative paths resolve
#: against it so the CLI works from any working directory.
SLO_DIR = Path(__file__).resolve().parents[3] / "configs" / "slo"


def load_slo_spec(source: Union[str, Path, Dict[str, Any], SLOSpec]) -> SLOSpec:
    """Load a spec from a JSON file path, a parsed dict, or pass through.

    String sources resolve like scenario names: an existing path wins,
    otherwise a shipped spec under ``configs/slo/`` by name
    (``"cluster"`` → ``configs/slo/cluster.json``).
    """
    if isinstance(source, SLOSpec):
        return source
    if isinstance(source, dict):
        return spec_from_dict(source)
    path = Path(source)
    if not path.exists() and not path.is_absolute():
        shipped = SLO_DIR / f"{path.stem}.json"
        if shipped.exists():
            path = shipped
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"SLO spec {path}: invalid JSON ({exc})") from exc
    return spec_from_dict(obj, source=str(path))


# ------------------------------------------------------------------ verdicts
@dataclass
class SLOResult:
    """One SLO's verdict on one run record."""

    name: str
    sli: str
    objective: float
    value: Optional[float]
    burn_rate: Optional[float]
    ok: bool
    window: Optional[float] = None
    detail: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sli": self.sli,
            "objective": self.objective,
            "value": self.value,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
            "window": self.window,
            "detail": self.detail,
        }


@dataclass
class SLOReport:
    """All verdicts of one spec against one run record."""

    spec_name: str
    results: List[SLOResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed(self) -> List[SLOResult]:
        return [result for result in self.results if not result.ok]

    @property
    def max_burn(self) -> float:
        burns = [r.burn_rate for r in self.results if r.burn_rate is not None]
        return max(burns) if burns else 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "ok": self.ok,
            "max_burn": self.max_burn,
            "slos": [result.to_record() for result in self.results],
        }


# ----------------------------------------------------------------------- SLIs
def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not math.isnan(value)


def _budget(record: Dict[str, Any], key: str) -> Optional[float]:
    invariants = record.get("invariants") or {}
    budget = invariants.get(key)
    return float(budget) if _is_number(budget) else None


def _latency_sli(
    record: Dict[str, Any], objective: float, field_name: str
) -> SLIVerdict:
    value = record.get(field_name)
    if not _is_number(value):
        return None, None, False, f"no {field_name} observed"
    burn = value / objective if objective > 0 else None
    ok = burn is not None and burn <= 1.0
    return (
        float(value),
        burn,
        ok,
        f"{field_name} {value * 1e3:.1f} ms vs {objective * 1e3:.1f} ms",
    )


def _sli_availability(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    pairs = [
        p
        for p in record.get("pairs", [])
        if p.get("completed") and _is_number(p.get("total_time"))
    ]
    if not pairs:
        return None, None, False, "no completed pairs to measure"
    worst_gap = 0.0
    worst_avail = 1.0
    for pair in pairs:
        gap = pair.get("max_gap") or 0.0
        total = pair["total_time"]
        if total <= 0:
            continue
        worst_gap = max(worst_gap, gap)
        worst_avail = min(worst_avail, 1.0 - gap / total)
    error_budget = 1.0 - objective
    if slo.window is not None:
        # Fast-burn form: the worst outage against the allowance of one
        # window (an outage longer than the window saturates at the
        # window itself — the budget of that window is fully gone).
        allowance = error_budget * slo.window
        burn = (min(worst_gap, slo.window) / allowance) if allowance > 0 else None
        detail = (
            f"worst outage {worst_gap * 1e3:.1f} ms vs "
            f"{allowance * 1e3:.1f} ms allowed per {slo.window:g} s window"
        )
    else:
        burn = ((1.0 - worst_avail) / error_budget) if error_budget > 0 else None
        detail = f"worst pair availability {worst_avail:.6f} vs {objective:g}"
    ok = burn is not None and burn <= 1.0
    return worst_avail, burn, ok, detail


def _sli_takeover_latency(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    return _latency_sli(record, objective, "takeover_latency")


def _sli_detection_latency(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    return _latency_sli(record, objective, "detection_latency")


def _sli_election_sync_p99(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    digests = (record.get("tsdb") or {}).get("digests") or {}
    digest = digests.get("cluster.election_sync") or {}
    value = digest.get("p99")
    source = "tsdb digest"
    if not _is_number(value):
        latencies = [
            e.get("sync_latency")
            for e in record.get("elections", [])
            if _is_number(e.get("sync_latency"))
        ]
        if not latencies:
            # A run with no elections has nothing to bound — vacuously
            # within budget (the bounded_election invariant separately
            # fails runs that *should* have elected but didn't sync).
            return None, 0.0, True, "no election sync evidence"
        value = max(latencies)
        source = "election records"
    burn = value / objective if objective > 0 else None
    ok = burn is not None and burn <= 1.0
    return (
        float(value),
        burn,
        ok,
        f"sync p99 {value * 1e3:.1f} ms vs {objective * 1e3:.1f} ms ({source})",
    )


def _sli_exactly_once(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    degraded = record.get("degraded", 0) or 0
    pairs = [p for p in record.get("pairs", []) if p.get("completed") is not None]
    if pairs:
        verified = sum(1 for p in pairs if p.get("verified"))
        value = verified / len(pairs) if pairs else 0.0
        detail = f"{verified}/{len(pairs)} streams verified, {degraded} degraded"
    else:
        # Scale records carry a single aggregated verdict.
        verified_flag = record.get("verified", record.get("clients_verified"))
        if verified_flag is None:
            return None, None, False, "no verification evidence"
        value = 1.0 if verified_flag else 0.0
        detail = f"verified={bool(verified_flag)}, {degraded} degraded"
    if degraded:
        value = 0.0
    error_budget = 1.0 - objective
    if error_budget > 0:
        burn: Optional[float] = (1.0 - value) / error_budget
        ok = burn <= 1.0
    else:
        ok = value >= 1.0
        burn = 0.0 if ok else None
    return value, burn, ok, detail


def _sli_no_dual_primary(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    invariants = record.get("invariants") or {}
    holds = invariants.get("no_dual_primary")
    if holds is None:
        return None, None, False, "no dual-primary evidence"
    value = 1.0 if holds else 0.0
    ok = value >= objective
    violations = (invariants.get("dual_primary") or {}).get("violation_count", 0)
    return (
        value,
        0.0 if ok else None,
        ok,
        "invariant holds" if holds else f"{violations} dual-primary violations",
    )


def _sli_resource_leaks(
    record: Dict[str, Any], slo: SLO, objective: float
) -> SLIVerdict:
    keys = ("leftover_shadows", "leftover_client_tcbs", "leftover_backup_tcbs")
    present = [k for k in keys if _is_number(record.get(k))]
    if not present:
        return None, None, False, "no leak counters in record"
    leaked = float(sum(record[k] for k in present))
    allowance = max(objective, 1.0)
    burn = leaked / allowance
    ok = leaked <= objective
    return leaked, burn, ok, f"{leaked:g} leftover objects vs {objective:g} allowed"


SLIFunction = Callable[[Dict[str, Any], SLO, float], SLIVerdict]

SLI_FUNCTIONS: Dict[str, SLIFunction] = {
    "availability": _sli_availability,
    "takeover_latency": _sli_takeover_latency,
    "detection_latency": _sli_detection_latency,
    "election_sync_p99": _sli_election_sync_p99,
    "exactly_once": _sli_exactly_once,
    "no_dual_primary": _sli_no_dual_primary,
    "resource_leaks": _sli_resource_leaks,
}

#: Which budget key the ``"budget"`` objective resolves to, per SLI.
_BUDGET_KEYS = {
    "takeover_latency": "takeover_budget",
    "detection_latency": "takeover_budget",
    "election_sync_p99": "election_budget",
}


# -------------------------------------------------------------- evaluation
def evaluate_slos(
    spec: Union[SLOSpec, Dict[str, Any], str, Path], record: Dict[str, Any]
) -> SLOReport:
    """Evaluate every SLO of ``spec`` against one run record."""
    spec = load_slo_spec(spec)
    report = SLOReport(spec_name=spec.name)
    for slo in spec.slos:
        if slo.objective == "budget":
            budget_key = _BUDGET_KEYS.get(slo.sli)
            objective = _budget(record, budget_key) if budget_key else None
            if objective is None:
                report.results.append(
                    SLOResult(
                        name=slo.name,
                        sli=slo.sli,
                        objective=float("nan"),
                        value=None,
                        burn_rate=None,
                        ok=False,
                        window=slo.window,
                        detail=(
                            f"objective 'budget' but record carries no "
                            f"{budget_key or 'budget'} (sli {slo.sli})"
                        ),
                    )
                )
                continue
        else:
            objective = float(slo.objective)
        value, burn, ok, detail = SLI_FUNCTIONS[slo.sli](record, slo, objective)
        report.results.append(
            SLOResult(
                name=slo.name,
                sli=slo.sli,
                objective=objective,
                value=value,
                burn_rate=burn,
                ok=ok,
                window=slo.window,
                detail=detail,
            )
        )
    return report


__all__ = [
    "SLI_FUNCTIONS",
    "SLO",
    "SLOReport",
    "SLOResult",
    "SLOSpec",
    "evaluate_slos",
    "load_slo_spec",
    "spec_from_dict",
]

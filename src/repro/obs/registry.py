"""The metrics registry: named counters, gauges and histograms.

Components used to keep ad-hoc ``self.foo += 1`` attributes that
experiments harvested by attribute name; the registry replaces that with
*named* instruments that stay O(1) on the hot path:

* a :class:`Counter` increment is one attribute load plus an integer add
  (``counter.value += n``) — the same machine work as the bare attribute
  it replaces, so instrumented hot paths cost nothing extra;
* instruments are created once (``registry.counter(name)`` is
  get-or-create) and *held* by the component; the dict lookup happens at
  wiring time, never per event;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.delta` give
  whole-registry and since-last-look views without touching the
  instruments themselves.

Per-host scoping: ``registry.scope("primary")`` returns a
:class:`MetricsScope` whose instruments are prefixed ``primary.`` — the
convention is ``<host>.<layer>.<name>`` (e.g. ``backup.sttcp.acks_sent``),
so one simulator-wide registry serves every host without collisions.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError

Number = Union[int, float]


class Counter:
    """A monotonically increasing count.  Increment via :meth:`inc` or —
    on hot paths — ``counter.value += n`` directly."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (a level, a role, a queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


#: Default histogram bucket upper bounds (unitless; callers pick units).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def bucket_quantile(
    bounds: Tuple[float, ...],
    bucket_counts: List[int],
    q: float,
    observed_max: Optional[float] = None,
) -> Optional[float]:
    """Approximate quantile from a fixed-bucket digest.

    Returns the upper bound of the bucket holding the q-th observation,
    clamped to ``observed_max`` when known — so a single-sample p99 is
    the sample itself (not its bucket's ceiling) and the overflow bucket
    reports the real maximum instead of ``inf``.  Shared by
    :meth:`Histogram.quantile` and the TSDB's windowed digest queries
    (:mod:`repro.obs.timeseries`), which subtract two cumulative digests
    and pass the difference here.
    """
    total = sum(bucket_counts)
    if total <= 0:
        return None
    target = q * total
    seen = 0
    for index, bucket_count in enumerate(bucket_counts):
        seen += bucket_count
        if seen >= target and bucket_count:
            if index < len(bounds):
                bound = float(bounds[index])
                return min(bound, observed_max) if observed_max is not None else bound
            break  # the overflow bucket has no upper bound
    return observed_max if observed_max is not None else float("inf")


class Histogram:
    """Fixed-bucket histogram: one bisect + one add per observation."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(f"histogram {name}: bounds must be sorted")
        # One count per bound plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket holding
        the q-th observation, clamped to the observed maximum (a
        single-sample p99 is the sample, never its bucket's ceiling or
        ``inf``)."""
        return bucket_quantile(self.bounds, self.bucket_counts, q, self.max)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count}>"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All instruments of one simulation, keyed by dotted name."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)  # type: ignore[return-value]

    def scope(self, prefix: str) -> "MetricsScope":
        """A view whose instrument names are prefixed ``<prefix>.``."""
        return MetricsScope(self, prefix)

    # Introspection ---------------------------------------------------------
    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def value(self, name: str, default: Any = 0) -> Any:
        """Scalar value of a counter/gauge (histograms: observation count)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Point-in-time values: scalars for counters/gauges, summary
        dicts for histograms.  Feed back into :meth:`delta`."""
        out: Dict[str, Any] = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def delta(self, since: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
        """What changed since ``since`` (an earlier :meth:`snapshot`).

        Counters and histogram counts subtract; gauges report their
        current value when it differs.  Unchanged instruments are
        omitted, so a delta over a quiet interval is empty.
        """
        out: Dict[str, Any] = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            previous = since.get(name)
            if isinstance(instrument, Counter):
                baseline = previous if isinstance(previous, (int, float)) else 0
                if instrument.value != baseline:
                    # A value below the baseline means the counter was
                    # reset (host teardown, engine replacement): report
                    # the post-reset count, never a negative delta that
                    # would claim events un-happened.
                    out[name] = (
                        instrument.value - baseline
                        if instrument.value >= baseline
                        else instrument.value
                    )
            elif isinstance(instrument, Histogram):
                baseline = previous["count"] if isinstance(previous, dict) else 0
                if instrument.count != baseline:
                    out[name] = (
                        instrument.count - baseline
                        if instrument.count >= baseline
                        else instrument.count
                    )
            else:  # Gauge: report the new level, not a difference
                if instrument.value != previous:
                    out[name] = instrument.value
        return out


class MetricsScope:
    """A prefixed view onto a registry (per host, per layer)."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._full(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._full(name))

    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        return self.registry.histogram(self._full(name), bounds)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, self._full(prefix))

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot(prefix=self.prefix + ".")

    def delta(self, since: Dict[str, Any]) -> Dict[str, Any]:
        return self.registry.delta(since, prefix=self.prefix + ".")

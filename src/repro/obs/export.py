"""Trace export: Chrome trace-event JSON (Perfetto) and JSONL.

The Chrome trace-event format is the lingua franca of timeline viewers —
``chrome://tracing``, Perfetto UI and speedscope all load it.  We map:

* closed spans → ``"X"`` complete events (explicit ``dur``), which keeps
  the output valid even when spans from different connections interleave
  (a ``B``/``E`` stream must nest LIFO per track; ``X`` events need not);
* spans still open at end of trace → ``"B"`` begin events (the viewer
  draws them to the end of the timeline);
* ordinary records → ``"i"`` instant events;
* causal chains (spans sharing a ``flow`` id, see
  :meth:`repro.obs.spans.SpanSet.flows`) → ``"s"``/``"t"``/``"f"`` flow
  events anchored at each member span's begin, so the viewer draws
  arrows detection → fence → election → resync → resume across tracks;
* track naming → one ``pid`` per trace ("repro"), one ``tid`` per record
  category, labelled via ``"M"`` metadata events.

Times are exported in microseconds (the format's unit); the simulator's
seconds are multiplied by 1e6.

JSONL export is the lossless sibling: one record per line with fields
rendered through :func:`format_field`, re-importable via
:func:`read_jsonl` for offline span assembly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List

from repro.obs.spans import SpanSet, assemble_spans, is_span_record
from repro.sim.trace import TraceRecord, format_field

#: Synthetic process id for all simulator tracks.
TRACE_PID = 1


def _json_fields(fields: Dict[str, Any]) -> Dict[str, Any]:
    """Render arbitrary field values JSON-safely (segments → summaries)."""
    out: Dict[str, Any] = {}
    for key, value in fields.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        else:
            out[key] = format_field(value)
    return out


def chrome_trace_events(records: List[TraceRecord]) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` array for a record stream."""
    span_set: SpanSet = assemble_spans(records)
    categories: List[str] = []
    for record in records:
        if record.category not in categories:
            categories.append(record.category)
    tid_of = {category: index + 1 for index, category in enumerate(categories)}

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": "repro"},
        }
    ]
    for category, tid in tid_of.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": category},
            }
        )

    for span in span_set.spans:
        args = _json_fields(span.fields)
        if span.flow is not None:
            args["flow"] = span.flow
        base = {
            "name": span.name,
            "cat": span.category,
            "pid": TRACE_PID,
            "tid": tid_of.get(span.category, 0),
            "ts": span.begin * 1e6,
            "args": args,
        }
        if span.open:
            events.append({**base, "ph": "B"})
        else:
            events.append({**base, "ph": "X", "dur": (span.end - span.begin) * 1e6})

    # Causal chains as flow arrows: start on the first member span, step
    # on intermediates, finish (binding to the enclosing slice) on the
    # last — one arrow sequence per flow id, across category tracks.
    for flow_id, chain in sorted(span_set.flows().items()):
        last = len(chain) - 1
        for index, span in enumerate(chain):
            event: Dict[str, Any] = {
                "name": f"flow-{flow_id}",
                "cat": span.category,
                "ph": "s" if index == 0 else ("f" if index == last else "t"),
                "id": flow_id,
                "pid": TRACE_PID,
                "tid": tid_of.get(span.category, 0),
                "ts": span.begin * 1e6,
            }
            if event["ph"] == "f":
                event["bp"] = "e"
            events.append(event)

    for record in records:
        if is_span_record(record):
            continue  # represented above as slices
        events.append(
            {
                "name": record.event,
                "cat": record.category,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": TRACE_PID,
                "tid": tid_of.get(record.category, 0),
                "ts": record.time * 1e6,
                "args": _json_fields(record.fields),
            }
        )
    return events


def write_chrome_trace(records: List[TraceRecord], fh: IO[str]) -> int:
    """Write a Chrome trace-event JSON document; returns the event count."""
    events = chrome_trace_events(records)
    json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh, indent=1)
    fh.write("\n")
    return len(events)


def write_jsonl(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """One JSON object per record: ``{"t", "cat", "ev", "fields"}``."""
    count = 0
    for record in records:
        json.dump(
            {
                "t": record.time,
                "cat": record.category,
                "ev": record.event,
                "fields": _json_fields(record.fields),
            },
            fh,
            separators=(",", ":"),
        )
        fh.write("\n")
        count += 1
    return count


def read_jsonl(fh: IO[str]) -> List[TraceRecord]:
    """Read records written by :func:`write_jsonl` (span keys survive the
    round trip, so :func:`assemble_spans` works on the result)."""
    records: List[TraceRecord] = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        records.append(
            TraceRecord(obj["t"], obj["cat"], obj["ev"], obj.get("fields", {}))
        )
    return records


__all__ = [
    "chrome_trace_events",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

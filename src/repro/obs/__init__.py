"""repro.obs — the unified observability layer.

Four pieces (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.registry` — named counters/gauges/histograms with O(1)
  hot-path increments, per-host scoping and delta snapshots;
* :mod:`repro.obs.spans` — reassembles the Tracer's span begin/end
  records into timed units (handshakes, retransmission bursts,
  failovers);
* :mod:`repro.obs.recorder` — the flight recorder: an always-cheap
  bounded ring buffer of the last N trace records, dumped automatically
  when a run goes red;
* :mod:`repro.obs.timeline` / :mod:`repro.obs.export` — the paper's
  failover phase decomposition, plus Chrome trace-event (Perfetto) and
  JSONL export of any trace.
"""

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, assemble_spans
from repro.obs.timeline import FailoverTimeline, TimelineCollector, reconstruct_failover

__all__ = [
    "Counter",
    "FailoverTimeline",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TimelineCollector",
    "assemble_spans",
    "reconstruct_failover",
]

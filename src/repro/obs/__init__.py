"""repro.obs — the unified observability layer.

Seven pieces (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.registry` — named counters/gauges/histograms with O(1)
  hot-path increments, per-host scoping and delta snapshots;
* :mod:`repro.obs.timeseries` — the sim-time TSDB: bounded ring-buffer
  series sampled from the registry on a sim-time cadence, with counter
  rate derivation and windowed histogram percentile queries;
* :mod:`repro.obs.spans` — reassembles the Tracer's span begin/end
  records into timed units (handshakes, retransmission bursts,
  failovers) and causal chains (cross-host ``flow`` links);
* :mod:`repro.obs.recorder` — the flight recorder: an always-cheap
  bounded ring buffer of the last N trace records, dumped automatically
  when a run goes red;
* :mod:`repro.obs.timeline` / :mod:`repro.obs.export` — the paper's
  failover phase decomposition (per-pair and cluster-level), plus
  Chrome trace-event (Perfetto, including flow arrows) and JSONL export
  of any trace;
* :mod:`repro.obs.slo` — the declarative SLO engine: JSON specs under
  ``configs/slo/`` evaluated against run records with burn-rate
  verdicts;
* :mod:`repro.obs.scorecard` — per-scenario health grades rendered to
  Markdown + JSON (the ``repro health`` artefact).
"""

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.scorecard import Scorecard, grade_record, score_record
from repro.obs.slo import SLOReport, SLOSpec, evaluate_slos, load_slo_spec
from repro.obs.spans import Span, assemble_spans, causal_chains
from repro.obs.timeline import (
    ClusterPhases,
    FailoverTimeline,
    TimelineCollector,
    reconstruct_cluster_phases,
    reconstruct_failover,
)
from repro.obs.timeseries import TimeSeriesDB

__all__ = [
    "ClusterPhases",
    "Counter",
    "FailoverTimeline",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOReport",
    "SLOSpec",
    "Scorecard",
    "Span",
    "TimeSeriesDB",
    "TimelineCollector",
    "assemble_spans",
    "causal_chains",
    "evaluate_slos",
    "grade_record",
    "load_slo_spec",
    "reconstruct_cluster_phases",
    "reconstruct_failover",
    "score_record",
]

"""Drill results and the per-script pass/fail table.

The report is a pure function of simulated behaviour — no wall-clock
times, no object ids — so two runs of a deterministic corpus produce
byte-identical tables (the property CI asserts).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class DrillResult:
    """Outcome of one drill script."""

    __slots__ = ("name", "passed", "expects", "probes", "injects", "sim_time", "failure")

    def __init__(
        self,
        name: str,
        passed: bool,
        expects: int,
        probes: int,
        injects: int,
        sim_time: float,
        failure: Optional[str] = None,
    ) -> None:
        self.name = name
        self.passed = passed
        self.expects = expects
        self.probes = probes
        self.injects = injects
        self.sim_time = sim_time
        self.failure = failure

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "expects": self.expects,
            "probes": self.probes,
            "injects": self.injects,
            "sim_time": round(self.sim_time, 6),
            "failure": self.failure,
        }


def format_report(results: List[DrillResult]) -> str:
    """The per-script result table (deterministic; no wall-clock data)."""
    header = f"{'script':<34} {'result':<6} {'expects':>7} {'probes':>6} {'injects':>7} {'sim_s':>8}"
    rule = "-" * len(header)
    lines = [header, rule]
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(
            f"{result.name:<34} {status:<6} {result.expects:>7} "
            f"{result.probes:>6} {result.injects:>7} {result.sim_time:>8.3f}"
        )
    passed = sum(1 for r in results if r.passed)
    lines.append(rule)
    lines.append(f"{passed}/{len(results)} scripts passed")
    return "\n".join(lines)


def format_failures(results: List[DrillResult]) -> str:
    """Full first-mismatch diagnostics for every failing script."""
    blocks = []
    for result in results:
        if not result.passed and result.failure:
            blocks.append(f"=== {result.name} ===\n{result.failure}")
    return "\n\n".join(blocks)


def results_to_json(results: List[DrillResult]) -> List[Dict[str, Any]]:
    return [result.to_dict() for result in results]

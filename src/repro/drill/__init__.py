"""repro.drill — packetdrill-style scripted conformance testing.

A drill script drives one host's TCP (or ST-TCP) stack through a scripted
wire peer: ``inject(t, tcp("S", seq=0))`` crafts a raw segment on the
medium, ``expect(t, tcp("SA", ack=1))`` pattern-matches what the stack
emits, with field wildcards, time tolerances and first-mismatch
diagnostics.  See docs/DRILL.md for the DSL reference.
"""

from repro.drill.patterns import ANY, SegmentSpec, tcp
from repro.drill.report import DrillResult, format_report, results_to_json
from repro.drill.runner import run_drill_file, run_drill_path
from repro.drill.script import DrillProgram, load_script

__all__ = [
    "ANY",
    "DrillProgram",
    "DrillResult",
    "SegmentSpec",
    "format_report",
    "load_script",
    "results_to_json",
    "run_drill_file",
    "run_drill_path",
    "tcp",
]

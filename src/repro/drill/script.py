"""Drill scripts: a Python-embedded DSL, packetdrill style.

A script is a plain ``.py`` file executed with the DSL bound into its
namespace.  It *declares* a timeline — it does not run the simulation
itself::

    use(mode="server", port=8000)
    inject(0.1, tcp("S", seq=0, win=65535, mss=1460))
    expect(0.1, tcp("SA", seq=0, ack=1, mss=ANY))
    inject(0.102, tcp("A", seq=1, ack=1))
    expect_state(0.15, "ESTABLISHED")

Times are seconds of simulated time, shifted by any preceding
``advance(dt)`` calls.  ``seq``/``ack`` are relative stream offsets
(SYN = 0, first data byte = 1).  The runner executes the timeline and
matches expectations post-hoc; see docs/DRILL.md for the full reference.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.apps.protocol import KIND_DATA, KIND_ECHO, encode_request
from repro.drill.patterns import ANY, SegmentSpec, tcp
from repro.util.bytespan import ByteSpan, PatternBytes, RealBytes

#: Default time tolerance for expectations (seconds).
DEFAULT_TOLERANCE = 0.005

#: Pattern id for bytes written by drill ``sock_write`` (host side).
DRILL_WRITE_PATTERN = 17
#: Pattern id for bytes injected by the peer without an explicit payload.
DRILL_INJECT_PATTERN = 19


class Op:
    """One timeline entry; ``kind`` selects runner behaviour."""

    __slots__ = ("kind", "time", "until", "spec", "tolerance", "action", "args", "label")

    def __init__(
        self,
        kind: str,
        time: float,
        until: Optional[float] = None,
        spec: Optional[SegmentSpec] = None,
        tolerance: Optional[float] = None,
        action: Optional[Callable] = None,
        args: Optional[tuple] = None,
        label: str = "",
    ) -> None:
        self.kind = kind
        self.time = time
        self.until = until
        self.spec = spec
        self.tolerance = tolerance
        self.action = action
        self.args = args or ()
        self.label = label


class DrillProgram:
    """A parsed drill script: settings plus a time-ordered op list."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.settings: Dict[str, Any] = {}
        self.ops: List[Op] = []
        self._origin = 0.0

    # -- time base ----------------------------------------------------------
    def _at(self, t: float) -> float:
        return self._origin + t

    def advance(self, dt: float) -> None:
        """Shift the time origin for all subsequent ops."""
        if dt < 0:
            raise ValueError(f"advance() must move forward, got {dt}")
        self._origin += dt

    # -- declarations -------------------------------------------------------
    def use(self, **settings: Any) -> None:
        """Configure the run: ``mode`` (server/client/sttcp), ``port``,
        ``seed``, ``tol``, ``run_for``, ``tcp={...}``, ``sttcp={...}``."""
        self.settings.update(settings)

    def inject(self, t: float, spec: SegmentSpec) -> None:
        """Put a crafted segment on the wire at time ``t``."""
        self.ops.append(Op("inject", self._at(t), spec=spec))

    def expect(self, t: float, spec: SegmentSpec, tol: Optional[float] = None) -> None:
        """The host must emit a matching segment at ``t`` (± tolerance),
        in order relative to other ``expect`` calls."""
        self.ops.append(Op("expect", self._at(t), spec=spec, tolerance=tol))

    def expect_unordered(self, t: float, spec: SegmentSpec, tol: Optional[float] = None) -> None:
        """Like ``expect`` but matched anywhere in the capture (no cursor)."""
        self.ops.append(Op("expect_unordered", self._at(t), spec=spec, tolerance=tol))

    def expect_no(self, t0: float, t1: float, spec: SegmentSpec) -> None:
        """No matching segment may appear in the window [t0, t1]."""
        self.ops.append(Op("expect_no", self._at(t0), until=self._at(t1), spec=spec))

    # -- socket calls on the host under test --------------------------------
    def sock_connect(self, t: float) -> None:
        self.ops.append(Op("sock", self._at(t), action=None, args=("connect",), label="sock_connect"))

    def sock_write(self, t: float, data: Union[int, bytes, ByteSpan]) -> None:
        self.ops.append(Op("sock", self._at(t), args=("write", data), label="sock_write"))

    def sock_read(self, t: float, max_bytes: int = 1 << 20) -> None:
        self.ops.append(Op("sock", self._at(t), args=("read", max_bytes), label="sock_read"))

    def sock_close(self, t: float) -> None:
        self.ops.append(Op("sock", self._at(t), args=("close",), label="sock_close"))

    def sock_abort(self, t: float) -> None:
        self.ops.append(Op("sock", self._at(t), args=("abort",), label="sock_abort"))

    # -- faults and live probes ---------------------------------------------
    def fault(self, t: float, name: str, **kwargs: Any) -> None:
        """Arm a named fault (see repro.faults.injection.DRILL_FAULTS)."""
        self.ops.append(Op("fault", self._at(t), args=(name, kwargs), label=f"fault:{name}"))

    def probe(self, t: float, fn: Callable[[Any], None], label: str = "probe") -> None:
        """Run ``fn(env)`` at ``t``; raise AssertionError to fail the drill."""
        self.ops.append(Op("probe", self._at(t), action=fn, label=label))

    def expect_state(self, t: float, state: str) -> None:
        """The tracked connection must be in TCP state ``state`` at ``t``."""

        def check(env: Any) -> None:
            actual = env.connection_state()
            assert actual == state, f"connection state is {actual}, expected {state}"

        self.probe(t, check, label=f"expect_state:{state}")

    def expect_shadow(
        self,
        t: float,
        established: Optional[bool] = None,
        isn_rebased: Optional[bool] = None,
        rcv_nxt: Optional[int] = None,
        snd_nxt: Optional[int] = None,
        suppressed: Optional[bool] = None,
    ) -> None:
        """Probe the backup's shadow connection (sttcp mode), in relative
        sequence units (SYN = 0)."""

        def check(env: Any) -> None:
            tcb = env.shadow_tcb()
            assert tcb is not None, "backup holds no shadow connection"
            ext = env.shadow_ext()
            assert ext is not None, "backup connection has no shadow extension"
            if established is not None:
                is_established = tcb.state.value == "ESTABLISHED"
                assert is_established == established, f"shadow state is {tcb.state.value}"
            if isn_rebased is not None:
                assert ext.isn_rebased == isn_rebased, f"shadow isn_rebased is {ext.isn_rebased}"
            if rcv_nxt is not None:
                actual = tcb.rcv_nxt - tcb.irs
                assert actual == rcv_nxt, f"shadow rcv_nxt is {actual}, expected {rcv_nxt}"
            if snd_nxt is not None:
                actual = tcb.snd_nxt - tcb.iss
                assert actual == snd_nxt, f"shadow snd_nxt is {actual}, expected {snd_nxt}"
            if suppressed is not None:
                assert ext.suppressing == suppressed, (
                    f"shadow suppress_output is {ext.suppressing}"
                )

        self.probe(t, check, label="expect_shadow")

    def expect_extensions(self, t: float, *names: str) -> None:
        """The tracked connection's extension chain must be exactly
        ``names``, in dispatch order, at ``t``.  In sttcp mode the
        backup's shadow connection is checked instead."""

        def check(env: Any) -> None:
            tcb = env.extension_target()
            assert tcb is not None, "no connection to check extensions on"
            actual = tuple(ext.name for ext in tcb.extensions)
            assert actual == names, (
                f"extension chain is {actual}, expected {names}"
            )

        self.probe(t, check, label=f"expect_extensions:{','.join(names)}")

    def expect_probe_counts(self, t: float, **bounds: int) -> None:
        """Assert minimum hook-invocation counts on the obs trace probe
        (requires ``use(obs_probe=True)``); e.g.
        ``expect_probe_counts(1.0, on_segment_in=3, filter_transmit=0)``.
        A bound of 0 means *exactly zero* invocations (leak check)."""

        def check(env: Any) -> None:
            probe = env.obs_probe()
            assert probe is not None, "no obs probe attached (use obs_probe=True)"
            for hook, minimum in bounds.items():
                actual = probe.calls.get(hook)
                assert actual is not None, f"unknown hook {hook!r}"
                if minimum == 0:
                    assert actual == 0, f"{hook} ran {actual} times, expected none"
                else:
                    assert actual >= minimum, (
                        f"{hook} ran {actual} times, expected >= {minimum}"
                    )

        self.probe(t, check, label="expect_probe_counts")

    def expect_takeover(self, t: float) -> None:
        """The backup must have completed takeover (role ACTIVE) by ``t``."""

        def check(env: Any) -> None:
            role = env.backup_role()
            assert role == "active", f"backup role is {role!r}, expected 'active'"

        self.probe(t, check, label="expect_takeover")

    # -- payload helpers ----------------------------------------------------
    @staticmethod
    def app_request(kind: str = "echo", size: int = 0, request_id: int = 1) -> ByteSpan:
        """A 150-byte application request record (repro.apps.protocol)."""
        kinds = {"echo": KIND_ECHO, "data": KIND_DATA}
        return encode_request(kinds[kind], size, request_id)

    @staticmethod
    def pattern(length: int, offset: int = 0) -> ByteSpan:
        """Deterministic filler bytes for injected payloads."""
        return PatternBytes(length, offset, DRILL_INJECT_PATTERN)

    # -- namespace ----------------------------------------------------------
    def dsl_namespace(self) -> Dict[str, Any]:
        return {
            "ANY": ANY,
            "tcp": tcp,
            "use": self.use,
            "advance": self.advance,
            "inject": self.inject,
            "expect": self.expect,
            "expect_unordered": self.expect_unordered,
            "expect_no": self.expect_no,
            "sock_connect": self.sock_connect,
            "sock_write": self.sock_write,
            "sock_read": self.sock_read,
            "sock_close": self.sock_close,
            "sock_abort": self.sock_abort,
            "fault": self.fault,
            "probe": self.probe,
            "expect_state": self.expect_state,
            "expect_shadow": self.expect_shadow,
            "expect_extensions": self.expect_extensions,
            "expect_probe_counts": self.expect_probe_counts,
            "expect_takeover": self.expect_takeover,
            "app_request": self.app_request,
            "pattern": self.pattern,
            "raw": RealBytes,
        }

    # -- derived ------------------------------------------------------------
    @property
    def end_time(self) -> float:
        """When the simulation must have run to for matching to be fair."""
        latest = 0.0
        for op in self.ops:
            tol = op.tolerance if op.tolerance is not None else self.tolerance
            horizon = op.until if op.until is not None else op.time + (
                tol if op.kind.startswith("expect") else 0.0
            )
            latest = max(latest, horizon)
        return latest + float(self.settings.get("run_for", 0.05))

    @property
    def tolerance(self) -> float:
        return float(self.settings.get("tol", DEFAULT_TOLERANCE))


def load_script(path: Union[str, Path]) -> DrillProgram:
    """Parse a drill script file into a :class:`DrillProgram`."""
    path = Path(path)
    program = DrillProgram(path.stem)
    source = path.read_text()
    code = compile(source, str(path), "exec")
    namespace = program.dsl_namespace()
    namespace["__name__"] = f"drill:{path.stem}"
    exec(code, namespace)  # noqa: S102 - scripts are repo-controlled tests
    return program

"""Segment patterns: the ``tcp(...)`` spec builder and the field matcher.

A :class:`SegmentSpec` plays two roles, exactly as in packetdrill:

* under ``inject()`` it is a *template* — unset fields get sensible
  defaults (next peer sequence number, window 65535) and the segment is
  built concretely;
* under ``expect()`` it is a *pattern* — unset fields are wildcards, set
  fields must match, and :func:`mismatches` reports every differing field
  with expected vs actual values for the first-mismatch diagnostic.

Sequence and ack numbers in scripts are *relative* (SYN = 0, first data
byte = 1), as in packetdrill; the runner supplies the translation to the
stack's live ISNs via a :class:`SeqSpace`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    SEQ_MASK,
)
from repro.tcp.segment import TCPSegment
from repro.util.bytespan import ByteSpan


class _Any:
    """Wildcard sentinel: the field must be present but may hold any value."""

    def __repr__(self) -> str:
        return "ANY"


ANY = _Any()

_FLAG_BITS = {"S": FLAG_SYN, "F": FLAG_FIN, "R": FLAG_RST, "P": FLAG_PSH, "A": FLAG_ACK}


def parse_flags(text: str) -> int:
    """``"SA"`` -> FLAG_SYN|FLAG_ACK; ``"."`` means no flags."""
    if text == ".":
        return 0
    value = 0
    for char in text:
        try:
            value |= _FLAG_BITS[char]
        except KeyError:
            raise ValueError(f"unknown TCP flag {char!r} in {text!r}") from None
    return value


class SeqSpace:
    """Relative<->absolute sequence translation for one drill run.

    ``local_isn`` anchors the peer's own stream (the drill convention pins
    it to 0 so injected numbers are used as-is); ``remote_isn`` is learned
    from the first SYN the host under test emits.
    """

    def __init__(self, local_isn: int = 0) -> None:
        self.local_isn = local_isn
        self.remote_isn: Optional[int] = None

    def learn_remote(self, isn: int) -> None:
        if self.remote_isn is None:
            self.remote_isn = isn

    def abs_local(self, relative: int) -> int:
        return (self.local_isn + relative) & SEQ_MASK

    def abs_remote(self, relative: int) -> int:
        return ((self.remote_isn or 0) + relative) & SEQ_MASK

    def rel_local(self, absolute: int) -> int:
        return _fold((absolute - self.local_isn) & SEQ_MASK)

    def rel_remote(self, absolute: int) -> int:
        return _fold((absolute - (self.remote_isn or 0)) & SEQ_MASK)


def _fold(delta: int) -> int:
    """Fold a 32-bit offset into a signed window for readable diffs."""
    return delta - (1 << 32) if delta > (1 << 31) else delta


Field = Union[int, str, _Any, None]


class SegmentSpec:
    """A TCP segment template/pattern built by :func:`tcp`."""

    __slots__ = ("flags", "seq", "ack", "win", "length", "payload", "mss", "sport", "dport")

    def __init__(
        self,
        flags: Union[str, _Any],
        seq: Field = None,
        ack: Field = None,
        win: Field = None,
        length: Field = None,
        payload: Optional[ByteSpan] = None,
        mss: Field = None,
        sport: Field = None,
        dport: Field = None,
    ) -> None:
        self.flags = flags
        self.seq = seq
        self.ack = ack
        self.win = win
        self.length = length
        self.payload = payload
        self.mss = mss
        self.sport = sport
        self.dport = dport

    # Matching --------------------------------------------------------------
    def mismatches(self, segment: TCPSegment, space: SeqSpace) -> List[Tuple[str, str, str]]:
        """Every differing field as ``(name, expected, actual)``.

        The captured segment was emitted by the host under test, so its
        ``seq`` lives in the remote stream and its ``ack`` in the peer's.
        """
        diffs: List[Tuple[str, str, str]] = []

        def check(name: str, expected: Field, actual: Union[int, str]) -> None:
            if expected is None or expected is ANY:
                return
            if expected != actual:
                diffs.append((name, str(expected), str(actual)))

        if self.flags is not ANY:
            want = "".join(sorted(str(self.flags).replace(".", "")))
            got = "".join(sorted(segment.flag_string().replace(".", "")))
            if want != got:
                diffs.append(("flags", str(self.flags), segment.flag_string()))
        check("seq", self.seq, space.rel_remote(segment.seq))
        if self.ack is not None and self.ack is not ANY and not segment.is_ack:
            diffs.append(("ack", str(self.ack), "(no ACK flag)"))
        elif segment.is_ack:
            check("ack", self.ack, space.rel_local(segment.ack))
        check("win", self.win, segment.window)
        check("len", self.length, segment.payload_length)
        if self.mss is ANY:  # ANY on mss still requires the option's presence
            if segment.mss_option is None:
                diffs.append(("mss", "ANY", "(absent)"))
        else:
            check("mss", self.mss, segment.mss_option if segment.mss_option is not None else "(absent)")
        check("sport", self.sport, segment.src_port)
        check("dport", self.dport, segment.dst_port)
        if self.payload is not None and self.payload is not ANY:
            if segment.payload != self.payload:
                diffs.append(
                    ("payload", f"{len(self.payload)} expected bytes", f"{segment.payload_length} bytes differ")
                )
        return diffs

    def matches(self, segment: TCPSegment, space: SeqSpace) -> bool:
        return not self.mismatches(segment, space)

    def describe(self) -> str:
        """Human rendering in the canonical field order, ``*`` = wildcard."""
        def show(value: Field) -> str:
            return "*" if value is None or value is ANY else str(value)

        parts = [str(self.flags) if self.flags is not ANY else "*"]
        parts.append(f"seq {show(self.seq)}")
        parts.append(f"ack {show(self.ack)}")
        parts.append(f"win {show(self.win)}")
        parts.append(f"len {show(self.length)}")
        if self.mss is not None:
            parts.append(f"mss {show(self.mss)}")
        if self.dport is not None:
            parts.append(f"dport {show(self.dport)}")
        return " ".join(parts)


def tcp(
    flags: Union[str, _Any] = ANY,
    seq: Field = None,
    ack: Field = None,
    win: Field = None,
    length: Field = None,
    payload: Optional[ByteSpan] = None,
    mss: Field = None,
    sport: Field = None,
    dport: Field = None,
) -> SegmentSpec:
    """Build a segment template (inject) / pattern (expect).

    ``flags`` uses the canonical letters ``S F R P A`` (``"."`` for none);
    comparison is order-insensitive.  ``seq``/``ack`` are relative stream
    offsets (SYN = 0).  Unset fields are wildcards under ``expect`` and
    defaults under ``inject``.
    """
    return SegmentSpec(
        flags, seq=seq, ack=ack, win=win, length=length, payload=payload,
        mss=mss, sport=sport, dport=dport,
    )

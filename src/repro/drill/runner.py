"""Drill execution: build a topology, run the timeline, match post-hoc.

Each script gets a fresh :class:`~repro.sim.simulator.Simulator` seeded
from its settings (default: a stable hash of the script name), so a drill
is bit-deterministic run to run — the corpus report is byte-identical
across invocations, which CI asserts.

Modes:

* ``server`` — the host under test listens; the peer plays client.
* ``client`` — the host under test connects (``sock_connect``); the peer
  plays server.
* ``sttcp``  — a full primary/backup pair on a hub (the paper's §6
  topology) with the peer as the client; ``fault(t, "primary_crash")``
  and the ``expect_shadow``/``expect_takeover`` probes target it.
"""

from __future__ import annotations

import json
import traceback
import zlib
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.drill.patterns import SegmentSpec
from repro.drill.peer import CapturedSegment, DrillPeer
from repro.drill.report import DrillResult
from repro.drill.script import DRILL_WRITE_PATTERN, DrillProgram, Op, load_script
from repro.faults.injection import CrashInjector, apply_drill_fault
from repro.host.host import Host
from repro.net.addresses import IPAddress, fresh_unicast_mac, ip
from repro.net.medium import Hub
from repro.obs.recorder import FlightRecorder
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.util.bytespan import ByteSpan, PatternBytes, RealBytes

# Drill address plan (mirrors the harness scenario's LAN).
HUT_IP = ip("10.0.0.1")
BACKUP_IP = ip("10.0.0.2")
SERVICE_IP = ip("10.0.0.100")
PEER_IP = ip("10.0.0.99")

DEFAULT_PORT = 8000
DEFAULT_PEER_PORT = 46000
DEFAULT_LOCAL_PORT = 40000

#: Drill links are fast and near-instant so protocol timers dominate:
#: 1 Gb/s with 1 µs propagation keeps wire time ~3 µs per segment,
#: negligible against the default 5 ms expectation tolerance.
LINK_RATE_BPS = 1_000_000_000
LINK_DELAY = 1e-6


class CheckFailure:
    """A live probe or socket call that failed during the run."""

    __slots__ = ("time", "label", "message")

    def __init__(self, time: float, label: str, message: str) -> None:
        self.time = time
        self.label = label
        self.message = message

    def __str__(self) -> str:
        return f"{self.label} at t={self.time:.6f}: {self.message}"


class DrillEnv:
    """Everything one drill run owns: topology, peer, tracked state."""

    def __init__(self, program: DrillProgram) -> None:
        settings = program.settings
        self.program = program
        self.mode = settings.get("mode", "server")
        if self.mode not in ("server", "client", "sttcp", "cluster"):
            raise ValueError(f"unknown drill mode {self.mode!r}")
        seed = settings.get("seed")
        if seed is None:
            seed = zlib.crc32(program.name.encode()) & 0x7FFFFFFF
        self.sim = Simulator(seed=seed)
        # Every drill flies with the recorder attached: when a drill
        # fails (or the stack crashes mid-run) the last trace records are
        # available for the dump, with no re-run needed.  The ring is
        # bounded, so a long drill cannot grow it.
        self.flight = FlightRecorder()
        self.sim.trace.add_sink(self.flight)
        self.crash_injector = CrashInjector(self.sim)
        self.hub = Hub(self.sim, LINK_RATE_BPS, delay=LINK_DELAY)
        self.tcp_config = TCPConfig().copy(**settings.get("tcp", {}))
        self.port = int(settings.get("port", DEFAULT_PORT))
        self.tracked: List[Any] = []  # TCBs of the host under test
        self.check_failures: List[CheckFailure] = []
        self.app_sent = 0  # cumulative sock_write bytes (pattern offsets)
        self.app_read_bytes = 0
        self.pair = None
        self.peer: Optional[DrillPeer] = None
        self.primary: Optional[Host] = None
        self.backup: Optional[Host] = None
        self.tap_nic = None
        self.sttcp_config = None
        self.power_switch = None
        self.cluster = None
        self.obs_probes: List[Any] = []
        if self.mode == "sttcp":
            self._build_sttcp(settings)
        elif self.mode == "cluster":
            self._build_cluster(settings)
        else:
            self._build_single(settings)

    # -- topologies ---------------------------------------------------------
    def _attach_peer(self, remote_ip: IPAddress, remote_port: int, hut_hosts: List[Host]) -> None:
        peer_port = int(self.program.settings.get("peer_port", DEFAULT_PEER_PORT))
        self.peer = DrillPeer(
            self.sim, PEER_IP, fresh_unicast_mac(), peer_port, remote_ip, remote_port
        )
        self.hub.attach(self.peer)
        # Static ARP both ways: drills script TCP, not address resolution.
        for host in hut_hosts:
            host.arp.add_static(PEER_IP, self.peer.mac)

    def _build_single(self, settings: dict) -> None:
        self.hut = Host(self.sim, "hut", tcp_config=self.tcp_config)
        nic = self.hut.add_nic()
        self.hub.attach(nic)
        self.hut.configure_ip(nic, HUT_IP, 24)
        self.primary = self.hut
        if self.mode == "server":
            self._attach_peer(HUT_IP, self.port, [self.hut])
            self.listener = self.hut.tcp.listen(self.port)
            self.hut.tcp.connection_observers.append(self.tracked.append)
            if settings.get("obs_probe"):
                self._install_obs_probe(self.hut)
        else:
            # The peer injects toward the port the host will connect from.
            local_port = int(settings.get("local_port", DEFAULT_LOCAL_PORT))
            self._attach_peer(HUT_IP, local_port, [self.hut])
        self.peer.remote_mac = nic.mac

    def _build_sttcp(self, settings: dict) -> None:
        from repro.sttcp.config import STTCPConfig
        from repro.sttcp.manager import STTCPServerPair
        from repro.sttcp.power_switch import PowerSwitch

        self.sttcp_config = STTCPConfig(**settings.get("sttcp", {}))
        self.primary = Host(self.sim, "primary", tcp_config=self.tcp_config)
        self.backup = Host(self.sim, "backup", tcp_config=self.tcp_config)
        primary_nic = self.primary.add_nic()
        self.hub.attach(primary_nic)
        self.primary.configure_ip(primary_nic, HUT_IP, 24)
        self.primary.add_vnic("svi", SERVICE_IP, primary_nic.mac, primary_nic)
        backup_nic = self.backup.add_nic()
        backup_nic.promiscuous = True  # the hub tap
        self.hub.attach(backup_nic)
        self.backup.configure_ip(backup_nic, BACKUP_IP, 24)
        self.backup.add_vnic("svi", SERVICE_IP, backup_nic.mac, backup_nic)
        self.tap_nic = backup_nic
        self.hut = self.primary
        power_switch = PowerSwitch(self.sim, self.sttcp_config.stonith_delay)
        self.power_switch = power_switch
        self.pair = STTCPServerPair(
            self.primary,
            self.backup,
            SERVICE_IP,
            self.port,
            config=self.sttcp_config,
            power_switch=power_switch,
        )
        self._attach_peer(SERVICE_IP, self.port, [self.primary, self.backup])
        self.peer.remote_mac = primary_nic.mac
        self.primary.tcp.connection_observers.append(self.tracked.append)
        if settings.get("obs_probe"):
            # Appended after the backup engine's own observer, so on the
            # backup's connections the probe stacks *behind* the
            # output-suppressing shadow extension — the contractually
            # correct order (suppressor first).
            self._install_obs_probe(self.backup)
        self.pair.start_service()

    def _build_cluster(self, settings: dict) -> None:
        """A full cluster fabric under the drill timeline.

        ``use(mode="cluster", cluster={...})`` takes a scenario document
        (the ``configs/cluster/`` schema).  There is no scripted peer —
        every pair runs its real client — so the script drives the run
        with ``fault`` and ``probe`` ops only; the scenario's own crash
        is NOT scheduled (drill faults own the timeline).
        """
        from repro.cluster.run import ClusterRun
        from repro.cluster.scenario import spec_from_dict

        raw = dict(settings.get("cluster") or {})
        raw.setdefault("name", self.program.name)
        self.cluster = ClusterRun(spec_from_dict(raw), sim=self.sim)
        self.cluster.begin(schedule_crash=False)
        self.hut = self.cluster.fabric.services[0].primary
        self.primary = self.hut

    def _install_obs_probe(self, host: Host) -> None:
        from repro.obs.tcp_ext import TraceProbeExtension

        def attach(tcb: Any) -> None:
            if tcb.local_port == self.port:
                probe = TraceProbeExtension()
                tcb.add_extension(probe)
                self.obs_probes.append(probe)

        host.tcp.connection_observers.append(attach)

    # -- probe helpers (used by the script DSL) -----------------------------
    def tcb(self) -> Optional[Any]:
        return self.tracked[0] if self.tracked else None

    def connection_state(self) -> str:
        tcb = self.tcb()
        return tcb.state.value if tcb is not None else "NONE"

    def shadow_tcb(self) -> Optional[Any]:
        if self.pair is None:
            return None
        shadows = self.pair.backup_engine.shadow_connections
        return shadows[0] if shadows else None

    def shadow_ext(self) -> Optional[Any]:
        from repro.sttcp.shadow import ShadowExtension

        tcb = self.shadow_tcb()
        return ShadowExtension.of(tcb) if tcb is not None else None

    def extension_target(self) -> Optional[Any]:
        """The connection whose extension chain probes inspect."""
        return self.shadow_tcb() if self.mode == "sttcp" else self.tcb()

    def obs_probe(self) -> Optional[Any]:
        return self.obs_probes[0] if self.obs_probes else None

    def backup_role(self) -> str:
        return self.pair.backup_engine.role if self.pair is not None else "none"

    # -- op execution -------------------------------------------------------
    def schedule(self, program: DrillProgram) -> None:
        for op in program.ops:
            if self.mode == "cluster" and (
                op.kind in ("inject", "sock") or op.kind.startswith("expect")
            ):
                raise ValueError(
                    f"{op.label or op.kind}: cluster drills have no scripted "
                    "peer; use fault() and probe() ops"
                )
            if op.kind == "inject":
                self.sim.schedule_at(op.time, self.peer.inject, op.spec)
            elif op.kind == "sock":
                self.sim.schedule_at(op.time, self._guard(op, self._sock_call), op)
            elif op.kind == "probe":
                self.sim.schedule_at(op.time, self._guard(op, op.action), self)
            elif op.kind == "fault":
                name, kwargs = op.args
                apply_drill_fault(name, self, op.time, **kwargs)

    def _guard(self, op: Op, fn: Callable) -> Callable:
        def run(*args: Any) -> None:
            try:
                fn(*args)
            except AssertionError as exc:
                self.check_failures.append(CheckFailure(self.sim.now, op.label, str(exc)))

        return run

    def _sock_call(self, op: Op) -> None:
        action, *args = op.args
        if action == "connect":
            assert self.mode == "client", "sock_connect is only valid in client mode"
            local_port = int(self.program.settings.get("local_port", DEFAULT_LOCAL_PORT))
            socket = self.hut.tcp.connect(
                (self.peer.ip, self.peer.port), local_port=local_port
            )
            self.tracked.append(socket._tcb)
            return
        tcb = self.tcb()
        assert tcb is not None, f"{op.label} before any connection exists"
        if action == "write":
            data = args[0]
            span = self._to_span(data)
            accepted = tcb.app_write(span)
            self.app_sent += len(span)
            assert accepted == len(span), (
                f"send buffer accepted {accepted} of {len(span)} bytes"
            )
        elif action == "read":
            span = tcb.app_read(args[0])
            self.app_read_bytes += len(span)
        elif action == "close":
            tcb.app_close()
        elif action == "abort":
            tcb.app_abort()

    def _to_span(self, data: Union[int, bytes, ByteSpan]) -> ByteSpan:
        if isinstance(data, int):
            return PatternBytes(data, self.app_sent, DRILL_WRITE_PATTERN)
        if isinstance(data, bytes):
            return RealBytes(data)
        return data


# ---------------------------------------------------------------------------
# Expectation matching
# ---------------------------------------------------------------------------


def _render_spec(spec: SegmentSpec) -> str:
    return spec.describe()


def _match_expectations(program: DrillProgram, env: DrillEnv) -> Optional[str]:
    """Match expect ops against the capture; first mismatch wins."""
    peer = env.peer
    if peer is None:  # cluster mode: probes only, nothing to match
        return None
    captured = peer.captured
    cursor = 0
    expect_index = 0
    for op in program.ops:
        if op.kind == "expect":
            expect_index += 1
            tol = op.tolerance if op.tolerance is not None else program.tolerance
            found = _find_match(op.spec, captured, cursor, op.time, tol, peer)
            if found is None:
                return _mismatch_report(
                    f"expect #{expect_index}", op, tol, captured, cursor, env
                )
            cursor = found + 1
        elif op.kind == "expect_unordered":
            expect_index += 1
            tol = op.tolerance if op.tolerance is not None else program.tolerance
            found = _find_match(op.spec, captured, 0, op.time, tol, peer)
            if found is None:
                return _mismatch_report(
                    f"expect_unordered #{expect_index}", op, tol, captured, 0, env
                )
        elif op.kind == "expect_no":
            for item in captured:
                if op.time - 1e-9 <= item.time <= op.until + 1e-9 and op.spec.matches(
                    item.segment, item.space
                ):
                    context = "\n    ".join(peer.recent_context(item.time))
                    return (
                        f"expect_no [{op.time:.3f}, {op.until:.3f}] "
                        f"{_render_spec(op.spec)}:\n"
                        f"  forbidden segment at t={item.time:.6f}: "
                        f"{peer.render_captured(item)}\n"
                        f"  recent wire context:\n    {context}"
                    )
    return None


def _find_match(
    spec: SegmentSpec,
    captured: List[CapturedSegment],
    start: int,
    time: float,
    tol: float,
    peer: DrillPeer,
) -> Optional[int]:
    for index in range(start, len(captured)):
        item = captured[index]
        if item.time > time + tol + 1e-9:
            break
        if item.time < time - tol - 1e-9:
            continue
        if spec.matches(item.segment, item.space):
            return index
    return None


def _mismatch_report(
    what: str,
    op: Op,
    tol: float,
    captured: List[CapturedSegment],
    cursor: int,
    env: DrillEnv,
) -> str:
    """The first-mismatch diagnostic: field diff + late/early hints +
    recent tcpdump context."""
    peer = env.peer
    header = f"{what} at t={op.time:.3f}±{tol:.3f}: {_render_spec(op.spec)}"
    in_window = [
        (i, item)
        for i, item in enumerate(captured[cursor:], cursor)
        if op.time - tol - 1e-9 <= item.time <= op.time + tol + 1e-9
    ]
    lines = [header]
    if in_window:
        best_index, best = min(
            in_window, key=lambda pair: (len(op.spec.mismatches(pair[1].segment, pair[1].space)), pair[0])
        )
        diffs = op.spec.mismatches(best.segment, best.space)
        lines.append(
            f"  closest segment at t={best.time:.6f}: {peer.render_captured(best)}"
        )
        for field, expected, actual in diffs:
            lines.append(f"    field {field}: expected {expected}, actual {actual}")
    else:
        lines.append("  no segment captured in the window")
        late = next(
            (
                item
                for item in captured[cursor:]
                if item.time > op.time + tol and op.spec.matches(item.segment, item.space)
            ),
            None,
        )
        if late is not None:
            lines.append(
                f"  a matching segment arrived late at t={late.time:.6f}: "
                f"{peer.render_captured(late)}"
            )
    context = peer.recent_context(op.time + tol)
    if context:
        lines.append("  recent wire context:")
        lines.extend(f"    {line}" for line in context)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_program(program: DrillProgram) -> Tuple[DrillResult, DrillEnv]:
    env = DrillEnv(program)
    env.schedule(program)
    crash: Optional[str] = None
    try:
        env.sim.run(until=program.end_time)
    except Exception:
        # A stack that crashes mid-drill fails that drill — it must not
        # abort the rest of the corpus.
        crash = f"stack crashed during run:\n{traceback.format_exc()}"
    failure = crash or _match_expectations(program, env)
    if failure is None and env.check_failures:
        failure = "\n".join(str(item) for item in env.check_failures)
    expects = sum(1 for op in program.ops if op.kind.startswith("expect"))
    probes = sum(1 for op in program.ops if op.kind == "probe")
    result = DrillResult(
        name=program.name,
        passed=failure is None,
        expects=expects,
        probes=probes,
        injects=env.peer.injected if env.peer is not None else 0,
        sim_time=program.end_time,
        failure=failure,
    )
    return result, env


def run_drill_file(
    path: Union[str, Path], flight_dump: Optional[Union[str, Path]] = None
) -> DrillResult:
    """Load and run one drill script.

    ``flight_dump`` names a directory; a failing drill leaves its
    flight-recorder dump there as ``<name>.flight.txt`` plus, when the
    recorded window carries causal-flow links (the cluster takeover
    drills), a Perfetto-loadable ``<name>.trace.json``.  Dumps are a
    side channel only — the report and the failure diagnostics stay
    byte-identical with and without them.
    """
    program = load_script(path)
    result, env = run_program(program)
    if flight_dump is not None and not result.passed:
        directory = Path(flight_dump)
        directory.mkdir(parents=True, exist_ok=True)
        env.flight.dump_to(
            directory / f"{program.name}.flight.txt",
            reason=f"drill {program.name} failed",
        )
        _dump_causal_trace(env, directory / f"{program.name}.trace.json")
    return result


def _dump_causal_trace(env: DrillEnv, path: Path) -> Optional[Path]:
    """Chrome-trace attachment for a failed drill's causal window.

    Only written when the recorded window carries flow-linked records —
    single-pair drills have no cross-host chains and get no file.
    Cluster drills read the run's timeline collector (which keeps every
    cold-path marker) rather than the flight ring, whose 256-record
    window the hot TCP chatter overruns long before the drill ends.
    """
    from repro.obs.export import chrome_trace_events
    from repro.obs.spans import causal_chains

    if env.cluster is not None:
        records = list(env.cluster.collector.records)
    else:
        records = env.flight.records()
    chains = causal_chains(records)
    if not chains:
        return None
    payload = {
        "traceEvents": chrome_trace_events(records),
        "causalChains": {str(flow): nodes for flow, nodes in chains.items()},
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def run_drill_path(
    path: Union[str, Path], flight_dump: Optional[Union[str, Path]] = None
) -> List[DrillResult]:
    """Run one script, or every ``*.py`` under a directory (sorted)."""
    path = Path(path)
    if path.is_dir():
        scripts = sorted(path.glob("*.py"))
        if not scripts:
            raise FileNotFoundError(f"no drill scripts under {path}")
        return [run_drill_file(script, flight_dump) for script in scripts]
    return [run_drill_file(path, flight_dump)]


def write_failure_pcap(env: DrillEnv, path: Union[str, Path]) -> int:
    """Dump the peer's full wire log as a pcap for post-mortem analysis."""
    from repro.net.tcpdump import write_pcap

    return write_pcap(str(path), env.peer.wire_log)

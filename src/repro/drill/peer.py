"""The scripted wire peer: a remote endpoint that is pure script.

A :class:`DrillPeer` attaches to the medium like a NIC but runs no stack:
it crafts raw segments on ``inject()`` and records every TCP segment the
host under test addresses to it, timestamped, for post-hoc expectation
matching.  It also keeps a full wire log (everything heard on the medium)
for failure-context rendering and pcap export.

Sequence bookkeeping follows the packetdrill convention: the peer's own
ISN is pinned to 0, so script-relative numbers are the peer's absolute
ones; the host's ISN is learned from the first SYN it emits and all
expected/injected numbers in the host's stream are rebased onto it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.drill.patterns import ANY, SegmentSpec, SeqSpace, parse_flags
from repro.ip.datagram import PROTO_TCP, IPDatagram
from repro.net.addresses import IPAddress, MACAddress
from repro.net.arp import ARP_MESSAGE_SIZE, ARP_REPLY, ARP_REQUEST, ArpMessage
from repro.net.frame import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.medium import Attachment, FrameReceiver
from repro.tcp.constants import FLAG_ACK
from repro.tcp.segment import TCPSegment
from repro.util.bytespan import EMPTY, ByteSpan

#: Default advertised window of the scripted peer.
DEFAULT_PEER_WINDOW = 65535


class CapturedSegment:
    """One TCP segment the host under test sent to the peer.

    ``space`` freezes the sequence translation as of capture time: a RST
    emitted before any SYN was seen keeps absolute numbers even if a later
    handshake teaches the peer an ISN.
    """

    __slots__ = ("time", "segment", "src_ip", "dst_ip", "space")

    def __init__(
        self,
        time: float,
        segment: TCPSegment,
        src_ip: IPAddress,
        dst_ip: IPAddress,
        space: SeqSpace,
    ) -> None:
        self.time = time
        self.segment = segment
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.space = space

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Captured t={self.time:.6f} {self.segment.summary()}>"


class DrillPeer(FrameReceiver):
    """A scripted remote TCP endpoint sitting directly on the wire."""

    def __init__(
        self,
        sim: Any,
        ip: IPAddress,
        mac: MACAddress,
        port: int,
        remote_ip: IPAddress,
        remote_port: int,
    ) -> None:
        self.sim = sim
        self.ip = ip
        self.mac = mac
        self.port = port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.remote_mac: Optional[MACAddress] = None  # set by the runner
        self.space = SeqSpace(local_isn=0)
        self.snd_nxt = 0  # next relative sequence number to inject
        self.captured: List[CapturedSegment] = []
        self.wire_log: List[Tuple[float, EthernetFrame]] = []
        self.injected = 0
        self._attachment: Optional[Attachment] = None

    # Medium protocol -------------------------------------------------------
    def attached_to(self, attachment: Attachment) -> None:
        self._attachment = attachment

    def receive_frame(self, frame: EthernetFrame) -> None:
        self.wire_log.append((self.sim.now, frame))
        if frame.ethertype == ETHERTYPE_ARP:
            self._maybe_answer_arp(frame.payload)
            return
        if frame.ethertype != ETHERTYPE_IPV4:
            return
        datagram: IPDatagram = frame.payload
        if datagram.protocol != PROTO_TCP or datagram.dst != self.ip:
            return
        segment: TCPSegment = datagram.payload
        if segment.dst_port != self.port:
            return
        if segment.is_syn:
            self.space.learn_remote(segment.seq)
        snapshot = SeqSpace(local_isn=self.space.local_isn)
        snapshot.remote_isn = self.space.remote_isn
        self.captured.append(
            CapturedSegment(self.sim.now, segment, datagram.src, datagram.dst, snapshot)
        )

    def _maybe_answer_arp(self, message: ArpMessage) -> None:
        if message.op != ARP_REQUEST or message.target_ip != self.ip:
            return
        reply = ArpMessage(ARP_REPLY, self.ip, self.mac, message.sender_ip, message.sender_mac)
        frame = EthernetFrame(
            message.sender_mac, self.mac, ETHERTYPE_ARP, reply, ARP_MESSAGE_SIZE
        )
        if self._attachment is not None:
            self._attachment.send(frame)

    # Injection -------------------------------------------------------------
    def inject(self, spec: SegmentSpec) -> TCPSegment:
        """Craft a raw segment from a template and put it on the wire."""
        if self._attachment is None:
            raise RuntimeError("drill peer is not attached to a medium")
        flags = parse_flags(str(spec.flags)) if spec.flags is not ANY else 0
        payload: ByteSpan = spec.payload if spec.payload is not None else EMPTY
        seq_rel = spec.seq if isinstance(spec.seq, int) else self.snd_nxt
        window = spec.win if isinstance(spec.win, int) else DEFAULT_PEER_WINDOW
        ack_abs = 0
        if isinstance(spec.ack, int):
            ack_abs = self.space.abs_remote(spec.ack)
            flags |= FLAG_ACK
        segment = TCPSegment(
            spec.sport if isinstance(spec.sport, int) else self.port,
            spec.dport if isinstance(spec.dport, int) else self.remote_port,
            self.space.abs_local(seq_rel),
            ack_abs,
            flags,
            window,
            payload,
            mss_option=spec.mss if isinstance(spec.mss, int) else None,
        )
        advance = segment.sequence_space_length
        self.snd_nxt = max(self.snd_nxt, seq_rel + advance)
        datagram = IPDatagram(self.ip, self.remote_ip, PROTO_TCP, segment, segment.size)
        frame = EthernetFrame(
            self.remote_mac, self.mac, ETHERTYPE_IPV4, datagram, datagram.size
        )
        self._attachment.send(frame)
        self.injected += 1
        return segment

    # Rendering helpers -----------------------------------------------------
    def render_captured(self, item: CapturedSegment) -> str:
        """Canonical rendering of a captured segment in script coordinates."""
        return item.segment.summary(
            seq_base=item.space.remote_isn or 0, ack_base=item.space.local_isn
        )

    def recent_context(self, before: float, lines: int = 8) -> List[str]:
        """The last wire-log lines at or before ``before`` (tcpdump style)."""
        from repro.net.tcpdump import format_frame

        selected = [(t, f) for t, f in self.wire_log if t <= before + 1e-9]
        return [f"{t:.6f} {format_frame(f)}" for t, f in selected[-lines:]]

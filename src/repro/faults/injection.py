"""Fault injection: crashes, tap loss, channel partitions.

Everything experiments inject goes through here so scenarios read
declaratively — "crash the primary 0.3 s into the run", "drop 1% of the
backup's tapped frames", "partition the UDP channel".
"""

from __future__ import annotations

from typing import Any, List

from repro.net.frame import ETHERTYPE_IPV4, EthernetFrame
from repro.net.loss import RandomLoss, ScriptedLoss, WindowLoss
from repro.ip.datagram import PROTO_UDP
from repro.sim.events import EventHandle


class CrashInjector:
    """Schedules host crashes at absolute simulated times."""

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        self.scheduled: List[EventHandle] = []
        self.crashes_performed = 0

    def crash_at(self, host: Any, time: float) -> EventHandle:
        """Crash ``host`` at absolute time ``time``."""
        handle = self.sim.schedule_at(time, self._crash, host)
        self.scheduled.append(handle)
        return handle

    def crash_after(self, host: Any, delay: float) -> EventHandle:
        """Crash ``host`` after ``delay`` seconds from now."""
        handle = self.sim.schedule(delay, self._crash, host)
        self.scheduled.append(handle)
        return handle

    def _crash(self, host: Any) -> None:
        self.crashes_performed += 1
        host.crash()

    def cancel_all(self) -> None:
        for handle in self.scheduled:
            handle.cancel()
        self.scheduled.clear()


def add_tap_loss(nic: Any, rng: Any, rate: float) -> RandomLoss:
    """Make the backup's tap lossy: drop ``rate`` of frames in the NIC
    receive path (the IP-buffer-overflow analogue of §4.2)."""
    model = RandomLoss(rng, rate)
    nic.rx_loss_model = model
    return model


def add_tap_outage(nic: Any, start: float, stop: float) -> WindowLoss:
    """Black out the backup's tap during [start, stop) — deterministic
    loss used to force UDP-channel (or logger) recovery."""
    model = WindowLoss(start, stop)
    nic.rx_loss_model = model
    return model


def _is_udp_channel_frame(frame: EthernetFrame, port: int) -> bool:
    if frame.ethertype != ETHERTYPE_IPV4:
        return False
    datagram = frame.payload
    if datagram.protocol != PROTO_UDP:
        return False
    udp = datagram.payload
    return udp.dst_port == port or udp.src_port == port


def lossy_channel(medium: Any, channel_port: int, rng: Any, rate: float) -> ScriptedLoss:
    """Drop UDP-channel frames randomly at ``rate`` (heartbeat jitter).

    Exercises the failure detector's robustness: with a small miss
    threshold, a few unlucky consecutive drops wrongly suspect a healthy
    primary (§3.2's motivation for making suspicions safe).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"loss rate must be in [0, 1], got {rate}")

    def predicate(frame: EthernetFrame) -> bool:
        return _is_udp_channel_frame(frame, channel_port) and rng.random() < rate

    model = ScriptedLoss(predicate=predicate)
    medium.loss_model = model
    return model


def partition_channel(medium: Any, channel_port: int) -> ScriptedLoss:
    """Drop every UDP-channel frame crossing ``medium``.

    Isolates the heartbeat path while client TCP traffic continues —
    the wrong-suspicion scenario that the power switch must make safe
    (§3.2, §4.4).
    """
    model = ScriptedLoss(
        predicate=lambda frame: _is_udp_channel_frame(frame, channel_port)
    )
    medium.loss_model = model
    return model


def partition_channel_oneway(medium: Any, channel_port: int, src_ip: Any) -> ScriptedLoss:
    """Drop UDP-channel frames *sent by* ``src_ip`` crossing ``medium``.

    The asymmetric partition: one side's heartbeats vanish while the
    other side's still arrive, so exactly one endpoint turns suspicious.
    Without fencing this is the classic dual-primary recipe.
    """

    def predicate(frame: EthernetFrame) -> bool:
        return (
            _is_udp_channel_frame(frame, channel_port)
            and frame.payload.src == src_ip
        )

    model = ScriptedLoss(predicate=predicate)
    medium.loss_model = model
    return model


def clear_loss(medium_or_nic: Any) -> None:
    """Remove any injected loss model."""
    if hasattr(medium_or_nic, "rx_loss_model"):
        medium_or_nic.rx_loss_model = None
    if hasattr(medium_or_nic, "loss_model"):
        from repro.net.loss import NoLoss

        medium_or_nic.loss_model = NoLoss()


# ---------------------------------------------------------------------------
# Drill DSL binding: named faults a drill script arms with fault(t, name)
# ---------------------------------------------------------------------------

#: ``name -> applier(env, time, **kwargs)``; the env is a DrillEnv
#: (repro.drill.runner) exposing sim, crash_injector, hub, the hosts and
#: the sttcp config.  Appliers run at *arm* time and schedule their own
#: effect at ``time``.
DRILL_FAULTS: dict = {}


def drill_fault(name: str):
    """Register a named fault for the drill DSL."""

    def register(fn):
        DRILL_FAULTS[name] = fn
        return fn

    return register


def apply_drill_fault(name: str, env: Any, time: float, **kwargs: Any) -> None:
    try:
        applier = DRILL_FAULTS[name]
    except KeyError:
        known = ", ".join(sorted(DRILL_FAULTS))
        raise ValueError(f"unknown fault {name!r}; known faults: {known}") from None
    applier(env, time, **kwargs)


def _require(env: Any, attribute: str, fault: str) -> Any:
    value = getattr(env, attribute, None)
    if value is None:
        raise ValueError(f"fault {fault!r} needs a topology with {attribute!r} (sttcp mode)")
    return value


@drill_fault("primary_crash")
def _fault_primary_crash(env: Any, time: float) -> None:
    env.crash_injector.crash_at(_require(env, "primary", "primary_crash"), time)


@drill_fault("backup_crash")
def _fault_backup_crash(env: Any, time: float) -> None:
    env.crash_injector.crash_at(_require(env, "backup", "backup_crash"), time)


@drill_fault("hut_crash")
def _fault_hut_crash(env: Any, time: float) -> None:
    env.crash_injector.crash_at(_require(env, "hut", "hut_crash"), time)


@drill_fault("tap_outage")
def _fault_tap_outage(env: Any, time: float, duration: float = 0.1) -> None:
    add_tap_outage(_require(env, "tap_nic", "tap_outage"), time, time + duration)


@drill_fault("tap_loss")
def _fault_tap_loss(env: Any, time: float, rate: float = 0.1) -> None:
    nic = _require(env, "tap_nic", "tap_loss")
    rng = env.sim.random.stream("drill.tap_loss")
    env.sim.schedule_at(time, add_tap_loss, nic, rng, rate)


@drill_fault("channel_partition")
def _fault_channel_partition(env: Any, time: float) -> None:
    config = _require(env, "sttcp_config", "channel_partition")
    env.sim.schedule_at(time, partition_channel, env.hub, config.channel_port)


@drill_fault("channel_partition_oneway")
def _fault_channel_partition_oneway(env: Any, time: float, sender: str = "primary") -> None:
    config = _require(env, "sttcp_config", "channel_partition_oneway")
    host = _require(env, sender, "channel_partition_oneway")
    src_ip = host.interfaces[0].ip
    env.sim.schedule_at(
        time, partition_channel_oneway, env.hub, config.channel_port, src_ip
    )


@drill_fault("channel_heal")
def _fault_channel_heal(env: Any, time: float) -> None:
    env.sim.schedule_at(time, clear_loss, env.hub)


@drill_fault("power_kill")
def _fault_power_kill(env: Any, time: float, host: str = "primary") -> None:
    """Fence ``host`` through the power switch (relay delay included) —
    the STONITH primitive as a drill-armable fault."""
    switch = _require(env, "power_switch", "power_kill")
    target = _require(env, host, "power_kill")
    env.sim.schedule_at(time, switch.cut_power, target)


# -- cluster-mode faults (env.cluster is a repro.cluster.run.ClusterRun) ----
def _cluster_service(env: Any, service: str, fault: str) -> Any:
    cluster = _require(env, "cluster", fault)
    try:
        return cluster.fabric.service_by_name[service]
    except KeyError:
        known = ", ".join(sorted(cluster.fabric.service_by_name))
        raise ValueError(f"fault {fault!r}: unknown service {service!r} ({known})") from None


@drill_fault("cluster_crash")
def _fault_cluster_crash(env: Any, time: float, service: str = "s0") -> None:
    """Crash the host currently acting as ``service``'s primary."""
    node = _cluster_service(env, service, "cluster_crash")
    env.sim.schedule_at(
        time, lambda: env.crash_injector.crash_at(node.primary_host, env.sim.now)
    )


@drill_fault("cluster_partition_oneway")
def _fault_cluster_partition_oneway(env: Any, time: float, service: str = "s0") -> None:
    """Asymmetric partition: ``service``'s primary stays alive but its
    outbound UDP-channel frames (heartbeats included) never leave its
    cable — the backup sees a dead primary, the primary sees a healthy
    world.  Only fencing keeps this from a dual-primary."""
    node = _cluster_service(env, service, "cluster_partition_oneway")
    cluster = env.cluster
    cable = cluster.fabric.lan_cables[node.primary_host.name]
    src_ip = node.primary_host.interfaces[0].ip
    env.sim.schedule_at(
        time, partition_channel_oneway, cable, node.config.channel_port, src_ip
    )

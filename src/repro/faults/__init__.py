"""Fault injection for experiments: crashes, tap loss, channel partitions."""

from repro.faults.injection import (
    CrashInjector,
    add_tap_loss,
    add_tap_outage,
    clear_loss,
    partition_channel,
)

__all__ = [
    "CrashInjector",
    "add_tap_loss",
    "add_tap_outage",
    "clear_loss",
    "partition_channel",
]

"""A5 — the heartbeat miss threshold (§4.4/§6.2 fix it at 3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.workload import echo_workload
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.runner import measure_failover_time, run_workload
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
)
from repro.sttcp.config import STTCPConfig


def _build_cells(
    scale=None,
    thresholds: Sequence[int] = (1, 2, 3, 5),
    channel_loss: float = 0.30,
    observation_time: float = 3.0,
    hb_interval: float = 0.05,
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 900,
) -> List[GridCell]:
    del scale
    return [
        GridCell(
            experiment="ablation_detection",
            cell_id=f"threshold{threshold}",
            params={
                "threshold": threshold,
                "channel_loss": channel_loss,
                "observation_time": observation_time,
                "hb_interval": hb_interval,
                "profile": profile_params(profile),
            },
            seed=base_seed + index,
        )
        for index, threshold in enumerate(thresholds)
    ]


def _run_cell(cell: GridCell) -> Record:
    from repro.faults.injection import lossy_channel
    from repro.harness.scenario import Scenario

    params = cell.params
    threshold = params["threshold"]
    hb_interval = params["hb_interval"]
    profile = profile_from_params(params["profile"])
    config = STTCPConfig(hb_interval=hb_interval, hb_miss_threshold=threshold)
    # (a) false-suspicion probe: healthy primary, jittery channel.
    scenario = Scenario(profile=profile, sttcp=config, seed=cell.seed)
    lossy_channel(
        scenario.hub,
        config.channel_port,
        scenario.sim.random.stream("channel-jitter"),
        params["channel_loss"],
    )
    scenario.start_service()
    scenario.sim.run(until=params["observation_time"])
    wrongly_suspected = scenario.pair.failed_over
    # The service must survive a wrong suspicion transparently.
    probe = run_workload(
        echo_workload(10),
        scenario=scenario,
        seed=cell.seed,
        deadline=120.0,
    )
    service_ok = probe.result.error is None and probe.result.verified
    # (b) detection latency on a real crash (clean channel).
    sample = measure_failover_time(
        echo_workload(30),
        STTCPConfig(hb_interval=hb_interval, hb_miss_threshold=threshold),
        profile=profile,
        seed=cell.seed,
    )
    return {
        "threshold": float(threshold),
        "wrong_suspicion": bool(wrongly_suspected),
        "service_ok_after": bool(service_ok),
        "detection_latency": sample["detection_latency"],
        "failover_time": sample["failover_time"],
    }


SPEC = register(
    ExperimentSpec(
        name="ablation_detection",
        title="A5: heartbeat miss threshold",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def ablation_detection(
    thresholds: Sequence[int] = (1, 2, 3, 5),
    channel_loss: float = 0.30,
    observation_time: float = 3.0,
    hb_interval: float = 0.05,
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 900,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, float]]:
    """A5 — the heartbeat miss threshold (§4.4/§6.2 fix it at 3).

    Two costs pull in opposite directions: a *small* threshold detects
    real crashes faster but wrongly suspects a healthy primary under
    heartbeat loss (here: 30% random loss on the UDP channel only); a
    *large* threshold is robust but slow.  STONITH keeps wrong suspicions
    *safe* (§3.2) — this measures how often they happen and what they cost.
    """
    return run_experiment(
        "ablation_detection",
        jobs=jobs,
        store=store,
        thresholds=thresholds,
        channel_loss=channel_loss,
        observation_time=observation_time,
        hb_interval=hb_interval,
        profile=profile,
        base_seed=base_seed,
    ).rows

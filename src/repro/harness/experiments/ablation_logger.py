"""A3 — double-failure masking via the packet logger (§3.2)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
)
from repro.util.units import KB


def _build_cells(
    scale=None,
    upload_size: int = 512 * KB,
    outage: Tuple[float, float] = (0.15, 0.25),
    hb_interval: float = 0.05,
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 700,
) -> List[GridCell]:
    del scale
    return [
        GridCell(
            experiment="ablation_logger",
            cell_id=f"logger={use_logger}",
            params={
                "use_logger": use_logger,
                "upload_size": upload_size,
                "outage": list(outage),
                "hb_interval": hb_interval,
                "profile": profile_params(profile),
            },
            seed=base_seed,
        )
        for use_logger in (False, True)
    ]


def _run_cell(cell: GridCell) -> Record:
    from repro.apps.workload import upload_workload
    from repro.errors import SimulationError
    from repro.faults.injection import add_tap_outage
    from repro.harness.runner import run_workload
    from repro.harness.scenario import Scenario
    from repro.sttcp.config import STTCPConfig

    params = cell.params
    use_logger = params["use_logger"]
    outage = tuple(params["outage"])
    config = STTCPConfig(hb_interval=params["hb_interval"], use_logger=use_logger)
    scenario = Scenario(
        profile=profile_from_params(params["profile"]),
        sttcp=config,
        with_logger=use_logger,
        seed=cell.seed,
    )
    backup_nic = scenario.backup.nics[0]
    add_tap_outage(backup_nic, *outage)
    # Crash inside the outage so the channel cannot repair the gap.
    crash_time = outage[1] - 0.001
    try:
        run = run_workload(
            upload_workload(params["upload_size"]),
            scenario=scenario,
            crash_at=crash_time,
            seed=cell.seed,
            deadline=2000.0,
        )
        completed = run.result.error is None
        verified = run.result.verified
        total_time = run.total_time
    except SimulationError:
        completed = False
        verified = False
        total_time = float("inf")
    backup_engine = scenario.pair.backup_engine
    return {
        "logger": use_logger,
        "completed": completed,
        "verified": verified,
        "degraded_connections": len(backup_engine.degraded_connections),
        "logger_bytes_recovered": backup_engine.logger_bytes_recovered,
        "total_time": total_time,
    }


SPEC = register(
    ExperimentSpec(
        name="ablation_logger",
        title="A3: double-failure masking via the logger",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def ablation_logger(
    upload_size: int = 512 * KB,
    outage: Tuple[float, float] = (0.15, 0.25),
    hb_interval: float = 0.05,
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 700,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, object]]:
    """A3 — double failure: the backup's tap blacks out, then the primary
    crashes before the UDP channel can repair the gap (§3.2).

    During the outage the primary keeps acknowledging the client's upload,
    so the client purges those bytes — after the crash they exist nowhere
    the backup can reach.  Without a logger the takeover is degraded and
    the client's connection eventually dies; with the logger the backup
    replays the hole and the upload completes, fully verified.
    """
    return run_experiment(
        "ablation_logger",
        jobs=jobs,
        store=store,
        upload_size=upload_size,
        outage=outage,
        hb_interval=hb_interval,
        profile=profile,
        base_seed=base_seed,
    ).rows

"""Figures 5(a)/5(b) — total time vs heartbeat interval, echo/interactive."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.workload import echo_workload, interactive_workload
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.experiments.scale import (
    FIGURE_HB_SWEEP,
    ExperimentScale,
    default_scale,
    hb_label,
)
from repro.harness.results import ResultStore
from repro.harness.runner import DEFAULT_CRASH_FRACTION, measure_failover_time
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
    workload_from_params,
    workload_params,
)
from repro.harness.tables import format_table
from repro.sttcp.config import STTCPConfig


def _workload_for(application: str, scale: ExperimentScale):
    if application == "echo":
        return echo_workload(scale.echo_exchanges)
    if application == "interactive":
        return interactive_workload(scale.interactive_exchanges)
    raise ValueError(f"figure5 covers echo/interactive, not {application!r}")


def _build_cells(
    scale: Optional[ExperimentScale] = None,
    application: str = "echo",
    hb_sweep: Sequence[float] = FIGURE_HB_SWEEP,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 300,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
) -> List[GridCell]:
    scale = scale or default_scale()
    workload = _workload_for(application, scale)
    return [
        GridCell(
            experiment="figure5",
            cell_id=f"{application}|hb{hb:g}",
            params={
                "hb": hb,
                "workload": workload_params(workload),
                "profile": profile_params(profile),
                "topology": topology,
                "crash_fraction": crash_fraction,
            },
            seed=base_seed + index,
        )
        for index, hb in enumerate(hb_sweep)
    ]


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    sample = measure_failover_time(
        workload_from_params(params["workload"]),
        STTCPConfig(hb_interval=params["hb"]),
        profile=profile_from_params(params["profile"]),
        topology=params["topology"],
        crash_fraction=params["crash_fraction"],
        seed=cell.seed,
    )
    return {
        "hb": params["hb"],
        "no_failure_time": sample["no_failure_time"],
        "failure_time": sample["failure_time"],
        "failover_time": sample["failover_time"],
        # The outage window the timeline phases decompose (they sum to
        # this, not to failover_time = added completion time).
        "max_gap": sample["max_gap"],
        "timeline": sample.get("timeline"),
    }


def format_figure5(points: List[Dict[str, float]], application: str) -> str:
    rows = [
        [hb_label(p["hb"]), p["no_failure_time"], p["failure_time"], p["failover_time"]]
        for p in points
    ]
    return format_table(
        ["HB interval", "no failure (s)", "with failure (s)", "failover (s)"],
        rows,
        title=f"Figure 5 ({application}): total time vs heartbeat interval",
    )


SPEC = register(
    ExperimentSpec(
        name="figure5",
        title="Figure 5: total time vs heartbeat interval",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def figure5(
    application: str = "echo",
    scale: Optional[ExperimentScale] = None,
    hb_sweep: Sequence[float] = FIGURE_HB_SWEEP,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 300,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, float]]:
    """Total run time vs HB interval, with and without failure.

    ``application`` is ``"echo"`` (Figure 5a) or ``"interactive"`` (5b).
    Each point: {hb, no_failure_time, failure_time}.
    """
    return run_experiment(
        "figure5",
        scale=scale,
        jobs=jobs,
        store=store,
        application=application,
        hb_sweep=hb_sweep,
        profile=profile,
        topology=topology,
        base_seed=base_seed,
        crash_fraction=crash_fraction,
    ).rows

"""Grid sizing shared by every experiment (paper scale vs quick scale)."""

from __future__ import annotations

import dataclasses
import os
from typing import List, Tuple

from repro.apps.workload import (
    AppWorkload,
    bulk_workload,
    echo_workload,
    interactive_workload,
)
from repro.util.units import KB, MB

#: The paper's heartbeat-interval grid (Tables 1 and 2).
PAPER_HB_GRID: Tuple[float, ...] = (5.0, 1.0, 0.2, 0.05)

#: Denser sweep for the figures.
FIGURE_HB_SWEEP: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """How big to run the grid."""

    echo_exchanges: int
    interactive_exchanges: int
    bulk_sizes: Tuple[int, ...]
    repeats: int
    hb_grid: Tuple[float, ...] = PAPER_HB_GRID

    def workloads(self) -> List[AppWorkload]:
        apps = [
            echo_workload(self.echo_exchanges),
            interactive_workload(self.interactive_exchanges),
        ]
        apps.extend(bulk_workload(size) for size in self.bulk_sizes)
        return apps


#: The grid exactly as the paper ran it ("repeated at least three times").
PAPER_SCALE = ExperimentScale(
    echo_exchanges=100,
    interactive_exchanges=100,
    bulk_sizes=(1 * MB, 5 * MB, 20 * MB, 100 * MB),
    repeats=3,
)

#: Fast grid for benchmarks and CI.
QUICK_SCALE = ExperimentScale(
    echo_exchanges=30,
    interactive_exchanges=30,
    bulk_sizes=(256 * KB, 1 * MB),
    repeats=1,
    hb_grid=(1.0, 0.2, 0.05),
)


def default_scale() -> ExperimentScale:
    """Scale selected by environment: full paper grid, scaled, or quick."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        return PAPER_SCALE
    factor = float(os.environ.get("REPRO_SCALE", "1.0"))
    if factor >= 4.0:
        return PAPER_SCALE
    if factor <= 1.0:
        return QUICK_SCALE
    return ExperimentScale(
        echo_exchanges=int(30 * factor),
        interactive_exchanges=int(30 * factor),
        bulk_sizes=(int(256 * KB * factor), int(1 * MB * factor)),
        repeats=1,
    )


def hb_label(hb: float) -> str:
    if hb >= 1.0:
        return f"{hb:g}s"
    return f"{hb * 1000:g}ms"

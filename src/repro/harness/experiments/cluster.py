"""The ``cluster`` experiment: N primary/backup pairs on one fabric.

Each cell is one declarative scenario from ``configs/cluster/`` (or an
inline spec dict): a fabric of N primaries shadowed by a pool of M
backup hosts, one client per pair, a scripted mid-run primary crash, the
arbiter-fenced takeover, and the replacement-backup election that
re-establishes shadowing (see ``docs/CLUSTER.md``).  The cell's params
embed the *parsed* spec — not the file path — so the result-store
content hash is the scenario itself; editing a JSON file re-runs exactly
the cells it changes.

The record is the full :func:`repro.cluster.run.run_cluster` bundle:
per-pair verification, crash→detection→takeover latencies, the election
ledger with shadow-sync latencies, arbiter counters, the dual-primary
monitor's verdict, and per-pair failover timelines.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.spec import ExperimentSpec, GridCell, Record, register
from repro.harness.tables import format_table

#: The shipped scenario set, in the order the table reports them.
DEFAULT_SCENARIOS = ("smoke", "trio", "storm")

#: ``configs/cluster/`` relative to the repo root (this file lives at
#: ``src/repro/harness/experiments/``).
SCENARIO_DIR = Path(__file__).resolve().parents[4] / "configs" / "cluster"


def resolve_scenario(name: Union[str, Path, Dict[str, Any], "ClusterSpec"]) -> "ClusterSpec":
    """A scenario by shipped name, file path, inline dict, or spec."""
    # Imported lazily: repro.cluster.scenario itself imports the harness
    # package (for calibration profiles), so a module-level import here
    # would close an import cycle through repro.harness.experiments.
    from repro.cluster.scenario import ClusterSpec, load_scenario, spec_from_dict

    if isinstance(name, ClusterSpec):
        return name
    if isinstance(name, dict):
        return spec_from_dict(name)
    path = Path(name)
    if path.suffix != ".json" and not path.exists():
        path = SCENARIO_DIR / f"{name}.json"
    return load_scenario(path)


def _build_cells(
    scale: Any = None,
    scenarios: Optional[Sequence[Union[str, Dict[str, Any]]]] = None,
    **_options: Any,
) -> List[GridCell]:
    specs = [resolve_scenario(s) for s in (scenarios or DEFAULT_SCENARIOS)]
    return [
        GridCell(
            experiment="cluster",
            cell_id=spec.name,
            params={"spec": spec.params()},
            seed=spec.seed,
        )
        for spec in specs
    ]


def _run_cell(cell: GridCell) -> Record:
    from repro.cluster.run import run_cluster
    from repro.cluster.scenario import ClusterSpec

    return run_cluster(ClusterSpec(**cell.params["spec"]))


def format_cluster(records: List[Record]) -> str:
    rows = []
    for record in records:
        invariants = record["invariants"]
        held = sum(
            invariants[key]
            for key in (
                "no_dual_primary",
                "exactly_once_streams",
                "bounded_takeover",
                "bounded_election",
            )
        )
        elections = record["elections"]
        syncs = [e["sync_latency"] for e in elections if e["sync_latency"] is not None]
        rows.append(
            [
                record["scenario"],
                f"{record['primaries']}:{record['backups']}",
                f"{record['detection_latency'] * 1e3:.0f}",
                f"{record['takeover_latency'] * 1e3:.0f}",
                len(elections),
                f"{max(syncs) * 1e3:.0f}" if syncs else "-",
                record["arbiter"]["cuts_performed"],
                f"{held}/4",
                "OK" if record["ok"] else "FAIL",
            ]
        )
    return format_table(
        [
            "scenario",
            "pairs",
            "detect (ms)",
            "takeover (ms)",
            "elections",
            "sync (ms)",
            "fences",
            "invariants",
            "status",
        ],
        rows,
        title="cluster: pooled backups, fenced takeover, re-election",
    )


SPEC = register(
    ExperimentSpec(
        name="cluster",
        title="cluster: N:K shadowing fabric with election + STONITH",
        build_cells=_build_cells,
        run_cell=_run_cell,
        format=format_cluster,
    )
)


def cluster_runs(
    scenarios: Optional[Sequence[Union[str, Dict[str, Any]]]] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    **options: Any,
) -> List[Dict[str, Any]]:
    """Run the cluster scenarios; one record each (see module docstring)."""
    return run_experiment(
        "cluster", scenarios=scenarios, jobs=jobs, store=store, **options
    ).rows

"""The ``scale`` experiment: connection churn on one primary/backup pair.

Every paper artefact drives a handful of connections; the claim that a
backup can shadow a primary *closely enough to take over* only matters
under load.  This workload fills that gap (ROADMAP: "Massive-concurrency
failover"): a **concurrency ladder** where each rung

1. ramps up ``connections`` simultaneous long-lived ST-TCP connections
   (*holders*) while *churners* storm the listener with extra short
   open/flow/close cycles, flow sizes drawn from a heavy-tailed
   (Pareto) distribution;
2. waits for every shadow to converge on the primary's ISN and samples
   the backup's per-TCB memory footprint;
3. crashes the primary and measures detection/takeover latency with all
   rung connections simultaneously alive;
4. continues every holder over the taken-over connections (content
   verified end-to-end), drains, and checks that the churned TCBs were
   actually reaped — on the client, on the backup's TCP layer, and in
   the backup engine's shadow table.

Per rung the record reports takeover latency, shadow-convergence lag,
opened connections/sec, sampled bytes/TCB, peak TCB counts, and the
reap accounting — the scale story of docs/SCALE.md.
"""

from __future__ import annotations

import random
import sys
from collections import deque
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.apps.protocol import KIND_DATA, encode_request, verify_response
from repro.errors import ConnectionRefused
from repro.harness.calibrate import FAST_LAN, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.scenario import Scenario
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
    sttcp_from_params,
    sttcp_params,
)
from repro.harness.tables import format_table
from repro.metrics import perf
from repro.net.segment_pool import PooledBytes, default_pool
from repro.sttcp.config import STTCPConfig
from repro.util.bytespan import RealBytes

#: Read granularity for flow responses.
RECV_CHUNK = 65536

#: The client starts this long after the service comes up.
CLIENT_START = 0.05

#: Size of the post-takeover continuity flow every holder runs.
POST_TAKEOVER_FLOW = 1024

#: Default concurrency ladder; the top rung is the acceptance bar
#: (≥ 2,000 simultaneous ST-TCP connections on one pair).
DEFAULT_LADDER: Tuple[int, ...] = (100, 500, 2000)

#: Small ladder for CI smoke runs (seconds, not minutes).
SMOKE_LADDER: Tuple[int, ...] = (25, 100)


# ------------------------------------------------------------ memory probe
#: Attribute names that escape the per-connection object graph; following
#: them would charge the whole simulator to one TCB.
_ESCAPE_ATTRS = frozenset(
    {
        "sim",
        "layer",
        "host",
        "conn",
        "tcb",
        "socket",
        # Datapath machinery reachable from a TCB but not per-connection
        # state: the segment pool / slab leases, the scheduler behind
        # event handles, and the batch arm's cached wire template.  All
        # must stay out of the walk so ``bytes_per_tcb`` is identical
        # under both ``REPRO_DATAPATH`` arms.
        "_pool",
        "_lease",
        "_sched",
        "_template",
    }
)

_FLAT_TYPES = (str, bytes, bytearray, int, float, bool, complex)

#: Fixed cost of the object-arm span a pooled payload replaces: the
#: ``RealBytes`` instance plus an empty ``bytes``; the payload length is
#: added per span.  Pooled spans view a *shared* slab, so walking them
#: would charge a whole 64 KiB slab to one TCB — and make
#: ``bytes_per_tcb`` differ between ``REPRO_DATAPATH`` arms, breaking
#: the record-hash equivalence the differential harness enforces.
_REALBYTES_EQUIV_BASE = sys.getsizeof(RealBytes(b"")) + sys.getsizeof(b"")


def deep_size(root: Any) -> int:
    """Deterministic footprint of one connection's object graph in bytes.

    Walks ``__slots__``/``__dict__`` via :func:`sys.getsizeof`, stopping
    at the attributes that point back into the simulator.  Not an exact
    RSS figure — a *comparable* per-TCB cost that scales with buffered
    data, so the per-rung trend (bytes/TCB vs connection count) is
    meaningful and machine-stable.
    """
    seen: set = set()
    stack: List[Any] = [root]
    total = 0
    while stack:
        obj = stack.pop()
        if obj is None or callable(obj) or isinstance(obj, type):
            continue
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, PooledBytes):
            # Charge the RealBytes equivalent the object arm holds for
            # this payload, not the shared slab behind the view.
            total += _REALBYTES_EQUIV_BASE + len(obj)
            continue
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects only
            continue
        if isinstance(obj, _FLAT_TYPES):
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset, deque)):
            stack.extend(obj)
        else:
            names: List[str] = []
            for klass in type(obj).__mro__:
                names.extend(getattr(klass, "__slots__", ()))
            instance_dict = getattr(obj, "__dict__", None)
            if instance_dict is not None:
                names.extend(instance_dict)
            for name in names:
                if name in _ESCAPE_ATTRS or name.startswith("__"):
                    continue
                stack.append(getattr(obj, name, None))
    return total


# ------------------------------------------------------------ grid builder
def _heavy_tailed_sizes(
    rng: random.Random, count: int, base: int, cap: int, alpha: float
) -> List[int]:
    """Pareto-distributed flow sizes: many small flows, a fat tail."""
    return [min(cap, int(base * rng.paretovariate(alpha))) for _ in range(count)]


def _build_cells(
    scale: Any = None,
    ladder: Optional[Sequence[int]] = None,
    churn_fraction: float = 0.25,
    churn_flows: int = 3,
    flow_base: int = 512,
    flow_cap: int = 64 * 1024,
    pareto_alpha: float = 1.3,
    open_rate: float = 2000.0,
    hb: float = 0.1,
    profile: NetworkProfile = FAST_LAN,
    topology: str = "hub",
    base_seed: int = 900,
) -> List[GridCell]:
    rungs = tuple(ladder) if ladder is not None else DEFAULT_LADDER
    return [
        GridCell(
            experiment="scale",
            cell_id=f"conns{connections}",
            params={
                "connections": connections,
                "churn_fraction": churn_fraction,
                "churn_flows": churn_flows,
                "flow_base": flow_base,
                "flow_cap": flow_cap,
                "pareto_alpha": pareto_alpha,
                "open_rate": open_rate,
                "sttcp": sttcp_params(STTCPConfig(hb_interval=hb)),
                "profile": profile_params(profile),
                "topology": topology,
            },
            seed=base_seed + index,
        )
        for index, connections in enumerate(rungs)
    ]


#: Connect attempts before a client gives up on a refused service.
CONNECT_RETRIES = 8


# ------------------------------------------------------------ rung runner
def _connect_with_retry(sim: Any, host: Any, addr: Any) -> Generator:
    """Active open with backoff-and-retry on a full listener backlog.

    During an open storm the listener legitimately deflects SYNs
    (:attr:`TCPLayer.syns_deflected`); a real client sees ECONNREFUSED
    and tries again.  Deterministic: fixed exponential backoff.
    """
    delay = 0.01
    for attempt in range(CONNECT_RETRIES):
        sock = host.tcp.connect(addr)
        try:
            yield sock.wait_connected()
            return sock
        except ConnectionRefused:
            if attempt == CONNECT_RETRIES - 1:
                raise
            yield sim.timeout(delay)
            delay = min(0.16, delay * 2)
    raise AssertionError("unreachable")


def _flow(sock: Any, request_id: int, size: int, stream_offset: int) -> Generator:
    """Issue one DATA request and verify the sized response; returns
    (ok, new_stream_offset)."""
    yield sock.send(encode_request(KIND_DATA, size, request_id))
    ok = True
    remaining = size
    while remaining > 0:
        chunk = yield sock.recv_exactly(min(RECV_CHUNK, remaining))
        if not verify_response(chunk, stream_offset):
            ok = False
        stream_offset += len(chunk)
        remaining -= len(chunk)
    return ok, stream_offset


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    n = int(params["connections"])
    rng = random.Random(cell.seed)
    scenario = Scenario(
        profile=profile_from_params(params["profile"]),
        topology=params["topology"],
        sttcp=sttcp_from_params(params["sttcp"]),
        seed=cell.seed,
    )
    sim = scenario.sim
    # Snapshot the process-global segment pool so the rung's datapath
    # gauges report this rung's deltas, not process-lifetime totals.
    pool = default_pool()
    pool_base = pool.stats()
    scenario.start_service()
    backup_engine = scenario.pair.backup_engine
    backup_host = scenario.backup
    client = scenario.client
    service_addr = scenario.service_addr

    churn_count = int(n * params["churn_fraction"])
    churn_flows = int(params["churn_flows"])
    holder_sizes = _heavy_tailed_sizes(
        rng, n, params["flow_base"], params["flow_cap"], params["pareto_alpha"]
    )
    churn_sizes = [
        _heavy_tailed_sizes(
            rng, churn_flows, params["flow_base"], params["flow_cap"], params["pareto_alpha"]
        )
        for _ in range(churn_count)
    ]
    ramp = max(n, churn_count) / float(params["open_rate"])

    ready = [0]  # holders whose initial flow completed
    churners_done = [0]
    holders_done = [0]
    failures: List[str] = []
    final_at: List[Optional[float]] = [None]

    def holder(index: int, size: int) -> Generator:
        yield sim.timeout((index * ramp) / max(1, n))
        counted = False
        try:
            sock = yield from _connect_with_retry(sim, client, service_addr)
            ok, offset = yield from _flow(sock, 0, size, 0)
            if not ok:
                failures.append(f"holder-{index}: corrupt initial flow")
            counted = True
            ready[0] += 1
            # Hold the connection across the crash, then prove it still
            # works on the taken-over endpoint.
            while final_at[0] is None or sim.now < final_at[0]:
                yield sim.timeout(0.025)
            ok, _ = yield from _flow(sock, 1, POST_TAKEOVER_FLOW, offset)
            if not ok:
                failures.append(f"holder-{index}: corrupt post-takeover flow")
            sock.close()
        except Exception as exc:  # noqa: BLE001 - recorded in the rung record
            failures.append(f"holder-{index}: {type(exc).__name__}: {exc}")
            if not counted:
                ready[0] += 1  # do not deadlock the ramp barrier
        holders_done[0] += 1

    def churner(index: int, sizes: List[int]) -> Generator:
        yield sim.timeout((index * ramp) / max(1, churn_count))
        try:
            for flow_id, size in enumerate(sizes):
                sock = yield from _connect_with_retry(sim, client, service_addr)
                ok, _ = yield from _flow(sock, flow_id, size, 0)
                if not ok:
                    failures.append(f"churner-{index}: corrupt flow {flow_id}")
                sock.close()
        except Exception as exc:  # noqa: BLE001 - recorded in the rung record
            failures.append(f"churner-{index}: {type(exc).__name__}: {exc}")
        churners_done[0] += 1

    sim.run(until=CLIENT_START)
    for index in range(n):
        client.spawn(holder(index, holder_sizes[index]), f"holder-{index}")
    for index in range(churn_count):
        client.spawn(churner(index, churn_sizes[index]), f"churner-{index}")

    def run_until(predicate: Any, deadline: float, step: float) -> None:
        while not predicate() and sim.now < deadline:
            sim.run(until=sim.now + step)

    # Phase 1: ramp — all holders connected + flowed, all churners done.
    run_until(
        lambda: ready[0] >= n and churners_done[0] >= churn_count,
        deadline=CLIENT_START + ramp + 120.0,
        step=0.005,
    )
    ramp_done = sim.now

    # Phase 2: shadow convergence (every live shadow rebased on the
    # primary's ISN) — the backup-side lag behind the open storm.
    run_until(
        lambda: backup_engine.pending_rebase_count == 0,
        deadline=ramp_done + 30.0,
        step=0.001,
    )
    convergence_lag = sim.now - ramp_done
    shadows_at_crash = backup_engine.shadow_count
    sample = backup_engine.shadow_connections[:32]
    bytes_per_tcb = (
        sum(deep_size(tcb) for tcb in sample) / len(sample) if sample else 0.0
    )

    # Phase 3: crash the primary with the full rung simultaneously alive.
    crash_time = sim.now + 0.05
    scenario.crash_primary_at(crash_time)
    run_until(
        lambda: backup_engine.takeover_time is not None,
        deadline=crash_time + 60.0,
        step=0.005,
    )
    detection_latency = (
        backup_engine.detection_time - crash_time
        if backup_engine.detection_time is not None
        else float("nan")
    )
    takeover_latency = (
        backup_engine.takeover_time - crash_time
        if backup_engine.takeover_time is not None
        else float("nan")
    )

    # Phase 4: continue every holder on the taken-over connections.
    final_at[0] = sim.now + 0.1
    run_until(
        lambda: holders_done[0] >= n,
        deadline=sim.now + 120.0,
        step=0.01,
    )
    finished = sim.now
    # Drain TIME_WAIT (1 s in the simulator) so reaping can complete.
    sim.run(until=sim.now + 1.5)
    # Datapath pool health for this rung goes into the obs registry and
    # the perf telemetry, never the record: the pool is process-global,
    # so its counters depend on how many rungs ran in this process and
    # would break the --jobs 1 vs --jobs N store-hash identity.
    pool_stats = pool.stats()
    datapath = sim.metrics.scope("datapath")
    for key in ("segments_pooled", "pool_misses", "slabs_reused"):
        datapath.gauge(key).value = pool_stats[key] - pool_base[key]
    perf.note_simulation(sim)

    total_opens = n + churn_count * churn_flows
    return {
        "connections": n,
        "total_opens": total_opens,
        "conns_per_sec": total_opens / max(1e-9, finished - CLIENT_START),
        "convergence_lag": convergence_lag,
        "detection_latency": detection_latency,
        "takeover_latency": takeover_latency,
        "bytes_per_tcb": bytes_per_tcb,
        "shadows_at_crash": shadows_at_crash,
        "peak_tcbs_client": client.tcp.connection_peak,
        "peak_tcbs_backup": backup_host.tcp.connection_peak,
        "reaped_client": client.tcp.tcbs_reaped,
        "reaped_backup": backup_host.tcp.tcbs_reaped,
        "shadows_reaped": backup_engine.shadows_reaped,
        "leftover_client_tcbs": client.tcp.connection_count,
        "leftover_backup_tcbs": backup_host.tcp.connection_count,
        "leftover_shadows": backup_engine.shadow_count,
        "degraded": len(backup_engine.degraded_connections),
        "syns_deflected": scenario.primary.tcp.syns_deflected,
        "ports_exhausted": client.tcp.ephemeral_ports_exhausted,
        "sim_events": sim.events_executed,
        "sim_segments": (
            client.tcp.segments_demuxed
            + scenario.primary.tcp.segments_demuxed
            + backup_host.tcp.segments_demuxed
        ),
        "sim_seconds": sim.now,
        "verified": not failures,
        "failures": failures[:10],
    }


# ------------------------------------------------------------ presentation
def format_scale(records: List[Dict[str, Any]]) -> str:
    rows = [
        [
            r["connections"],
            f"{r['conns_per_sec']:.0f}",
            f"{r['convergence_lag'] * 1e3:.1f}",
            f"{r['detection_latency'] * 1e3:.1f}",
            f"{r['takeover_latency'] * 1e3:.1f}",
            f"{r['bytes_per_tcb'] / 1024:.1f}",
            r["peak_tcbs_backup"],
            r["shadows_reaped"],
            r["leftover_shadows"],
            "ok" if r["verified"] and not r["degraded"] else "FAILED",
        ]
        for r in records
    ]
    return format_table(
        [
            "conns",
            "opens/s",
            "converge (ms)",
            "detect (ms)",
            "takeover (ms)",
            "KB/TCB",
            "peak TCBs",
            "reaped",
            "leftover",
            "status",
        ],
        rows,
        title="scale: churn ladder on one primary/backup pair",
    )


SPEC = register(
    ExperimentSpec(
        name="scale",
        title="scale: connection-churn ladder with mid-ladder failover",
        build_cells=_build_cells,
        run_cell=_run_cell,
        format=format_scale,
    )
)


def scale_ladder(
    ladder: Optional[Sequence[int]] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    **options: Any,
) -> List[Dict[str, Any]]:
    """Run the churn ladder; one record per rung (see module docstring)."""
    return run_experiment("scale", ladder=ladder, jobs=jobs, store=store, **options).rows

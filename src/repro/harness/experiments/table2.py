"""Table 2 — failover time across heartbeat intervals and workloads (§6.2)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.experiments.scale import ExperimentScale, default_scale, hb_label
from repro.harness.experiments.table1 import aggregate_mean_rows
from repro.harness.results import ResultStore
from repro.harness.runner import DEFAULT_CRASH_FRACTION, measure_failover_time
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
    workload_from_params,
    workload_params,
)
from repro.harness.tables import format_table
from repro.sttcp.config import STTCPConfig


def _build_cells(
    scale: Optional[ExperimentScale] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 200,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
) -> List[GridCell]:
    scale = scale or default_scale()
    cells = []
    for hb in scale.hb_grid:
        row_label = f"ST-TCP {hb_label(hb)} HB"
        for workload in scale.workloads():
            for repeat in range(scale.repeats):
                cells.append(
                    GridCell(
                        experiment="table2",
                        cell_id=f"{row_label}|{workload.name}|r{repeat}",
                        params={
                            "row": row_label,
                            "hb_interval": hb,
                            "workload": workload_params(workload),
                            "profile": profile_params(profile),
                            "topology": topology,
                            "crash_fraction": crash_fraction,
                        },
                        seed=base_seed + repeat,
                    )
                )
    return cells


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    workload = workload_from_params(params["workload"])
    sample = measure_failover_time(
        workload,
        STTCPConfig(hb_interval=params["hb_interval"]),
        profile=profile_from_params(params["profile"]),
        topology=params["topology"],
        crash_fraction=params["crash_fraction"],
        seed=cell.seed,
    )
    return {
        "row": params["row"],
        "workload": workload.name,
        "failover_time": sample["failover_time"],
    }


def format_table2(records: List[Dict[str, object]]) -> str:
    columns = [key for key in records[0] if key != "config"]
    rows = [[record["config"]] + [record[col] for col in columns] for record in records]
    return format_table(
        ["Configuration"] + columns,
        rows,
        title="Table 2: failover time (s)",
    )


SPEC = register(
    ExperimentSpec(
        name="table2",
        title="Table 2: failover time vs heartbeat interval",
        build_cells=_build_cells,
        run_cell=_run_cell,
        aggregate=lambda cells, records: aggregate_mean_rows(
            cells, records, value_key="failover_time"
        ),
        format=format_table2,
    )
)


def table2(
    scale: Optional[ExperimentScale] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 200,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, object]]:
    """Failover time across heartbeat intervals and workloads (Table 2)."""
    return run_experiment(
        "table2",
        scale=scale,
        jobs=jobs,
        store=store,
        profile=profile,
        topology=topology,
        base_seed=base_seed,
        crash_fraction=crash_fraction,
    ).rows

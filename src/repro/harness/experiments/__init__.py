"""Paper artefacts as declarative :class:`~repro.harness.spec.ExperimentSpec`s.

Each module registers one spec (Table 1/2, Figure 5/6, ablations A1–A5)
and keeps a thin legacy wrapper with the historical signature.  Importing
this package populates the spec registry — worker processes do exactly
that before running a cell.
"""

from repro.harness.experiments.ablation_detection import ablation_detection
from repro.harness.experiments.ablation_ftcp import ablation_ftcp
from repro.harness.experiments.ablation_logger import ablation_logger
from repro.harness.experiments.ablation_overhead import ablation_overhead
from repro.harness.experiments.ablation_sync import ablation_sync
from repro.harness.experiments.churn import (
    DEFAULT_LADDER,
    SMOKE_LADDER,
    format_scale,
    scale_ladder,
)
from repro.harness.experiments.cluster import (
    DEFAULT_SCENARIOS,
    cluster_runs,
    format_cluster,
    resolve_scenario,
)
from repro.harness.experiments.figure5 import figure5, format_figure5
from repro.harness.experiments.figure6 import figure6, format_figure6
from repro.harness.experiments.scale import (
    FIGURE_HB_SWEEP,
    PAPER_HB_GRID,
    PAPER_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    default_scale,
    hb_label,
)
from repro.harness.experiments.table1 import format_table1, table1
from repro.harness.experiments.table2 import format_table2, table2
from repro.harness.spec import experiment_names, get_spec

__all__ = [
    "DEFAULT_LADDER",
    "DEFAULT_SCENARIOS",
    "FIGURE_HB_SWEEP",
    "PAPER_HB_GRID",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "SMOKE_LADDER",
    "ExperimentScale",
    "ablation_detection",
    "ablation_ftcp",
    "ablation_logger",
    "ablation_overhead",
    "ablation_sync",
    "cluster_runs",
    "default_scale",
    "experiment_names",
    "figure5",
    "figure6",
    "format_cluster",
    "format_figure5",
    "format_figure6",
    "format_scale",
    "format_table1",
    "format_table2",
    "get_spec",
    "hb_label",
    "resolve_scenario",
    "scale_ladder",
    "table1",
    "table2",
]

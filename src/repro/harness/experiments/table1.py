"""Table 1 — failure-free total time, standard TCP vs ST-TCP (§6.1)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.experiments.scale import ExperimentScale, default_scale, hb_label
from repro.harness.results import ResultStore
from repro.harness.runner import run_workload
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
    sttcp_from_params,
    sttcp_params,
    workload_from_params,
    workload_params,
)
from repro.harness.tables import format_table
from repro.sttcp.config import STTCPConfig


def _build_cells(
    scale: Optional[ExperimentScale] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 100,
) -> List[GridCell]:
    scale = scale or default_scale()
    workloads = scale.workloads()
    rows = [("Standard TCP", None)]
    rows += [
        (f"ST-TCP {hb_label(hb)} HB", STTCPConfig(hb_interval=hb))
        for hb in scale.hb_grid
    ]
    cells = []
    for row_label, sttcp in rows:
        for workload in workloads:
            for repeat in range(scale.repeats):
                cells.append(
                    GridCell(
                        experiment="table1",
                        cell_id=f"{row_label}|{workload.name}|r{repeat}",
                        params={
                            "row": row_label,
                            "workload": workload_params(workload),
                            "sttcp": sttcp_params(sttcp),
                            "profile": profile_params(profile),
                            "topology": topology,
                        },
                        seed=base_seed + repeat,
                    )
                )
    return cells


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    workload = workload_from_params(params["workload"])
    run = run_workload(
        workload,
        profile=profile_from_params(params["profile"]),
        topology=params["topology"],
        sttcp=sttcp_from_params(params["sttcp"]),
        seed=cell.seed,
    ).require_clean()
    return {
        "row": params["row"],
        "workload": workload.name,
        "total_time": run.total_time,
    }


def aggregate_mean_rows(
    cells: List[GridCell], records: List[Record], value_key: str = "total_time"
) -> List[Record]:
    """Fold (row, workload, repeat) cell records into paper-shaped rows."""
    ordered: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        columns = ordered.setdefault(record["row"], {})
        columns.setdefault(record["workload"], []).append(record[value_key])
    return [
        {"config": row, **{c: sum(v) / len(v) for c, v in columns.items()}}
        for row, columns in ordered.items()
    ]


def format_table1(records: List[Dict[str, object]]) -> str:
    columns = [key for key in records[0] if key != "config"]
    rows = [[record["config"]] + [record[col] for col in columns] for record in records]
    return format_table(
        ["Configuration"] + columns,
        rows,
        title="Table 1: average total time (s) without failure",
    )


SPEC = register(
    ExperimentSpec(
        name="table1",
        title="Table 1: failure-free total time, standard TCP vs ST-TCP",
        build_cells=_build_cells,
        run_cell=_run_cell,
        aggregate=aggregate_mean_rows,
        format=format_table1,
    )
)


def table1(
    scale: Optional[ExperimentScale] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 100,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, object]]:
    """Failure-free comparison of standard TCP and ST-TCP (Table 1).

    Returns one record per protocol row with a column per workload.
    """
    return run_experiment(
        "table1",
        scale=scale,
        jobs=jobs,
        store=store,
        profile=profile,
        topology=topology,
        base_seed=base_seed,
    ).rows

"""A1 — §4.3 acknowledgment strategy: SyncTime and X on an upload stream."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.workload import upload_workload
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.runner import run_workload
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
)
from repro.sttcp.config import STTCPConfig
from repro.util.units import MB


def _build_cells(
    scale=None,
    upload_size: int = 1 * MB,
    sync_times: Sequence[float] = (0.05, 0.2, 1.0, 5.0),
    x_fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 500,
) -> List[GridCell]:
    del scale  # the sweep is fixed by its own parameters
    cells = []
    for sync_index, sync_time in enumerate(sync_times):
        for x_index, fraction in enumerate(x_fractions):
            cells.append(
                GridCell(
                    experiment="ablation_sync",
                    cell_id=f"sync{sync_time:g}|x{fraction:g}",
                    params={
                        "upload_size": upload_size,
                        "sync_time": sync_time,
                        "x_fraction": fraction,
                        "profile": profile_params(profile),
                    },
                    seed=base_seed + sync_index * 13 + x_index,
                )
            )
    return cells


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    config = STTCPConfig(
        hb_interval=0.05,
        sync_time=params["sync_time"],
        ack_threshold_fraction=params["x_fraction"],
    )
    run = run_workload(
        upload_workload(params["upload_size"]),
        profile=profile_from_params(params["profile"]),
        sttcp=config,
        seed=cell.seed,
    ).require_clean()
    pair = run.scenario.pair
    assert pair is not None
    primary_states = list(pair.primary_engine._connections.values())
    retention_peak = max(
        (state.retention.peak_usage for state in primary_states), default=0
    )
    overflow_peak = max(
        (state.retention.overflow_byte_peak for state in primary_states),
        default=0,
    )
    return {
        "sync_time": params["sync_time"],
        "x_fraction": params["x_fraction"],
        "total_time": run.total_time,
        "acks_sent": float(pair.backup_engine.acks_sent),
        "retention_peak": float(retention_peak),
        "overflow_peak": float(overflow_peak),
    }


SPEC = register(
    ExperimentSpec(
        name="ablation_sync",
        title="A1: acknowledgment strategy (SyncTime × X)",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def ablation_sync(
    upload_size: int = 1 * MB,
    sync_times: Sequence[float] = (0.05, 0.2, 1.0, 5.0),
    x_fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 500,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, float]]:
    """A1 — the §4.3 acknowledgment strategy: how SyncTime and X affect
    throughput, channel chatter, and second-buffer pressure.

    Uses an *upload* workload: the second receive buffer retains
    client→server bytes, so only uploads put pressure on it.
    """
    return run_experiment(
        "ablation_sync",
        jobs=jobs,
        store=store,
        upload_size=upload_size,
        sync_times=sync_times,
        x_fractions=x_fractions,
        profile=profile,
        base_seed=base_seed,
    ).rows

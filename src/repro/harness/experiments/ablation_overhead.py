"""A4 — UDP-channel overhead as a fraction of client traffic (§4.3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.workload import upload_workload
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.runner import run_workload
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
)
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB, MB


def _build_cells(
    scale=None,
    upload_size: int = 1 * MB,
    second_buffers: Sequence[int] = (4 * KB, 8 * KB, 16 * KB, 32 * KB),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 800,
) -> List[GridCell]:
    del scale
    return [
        GridCell(
            experiment="ablation_overhead",
            cell_id=f"buf{second_buffer // KB}KB",
            params={
                "upload_size": upload_size,
                "second_buffer": second_buffer,
                "profile": profile_params(profile),
            },
            seed=base_seed + index,
        )
        for index, second_buffer in enumerate(second_buffers)
    ]


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    second_buffer = params["second_buffer"]
    config = STTCPConfig(
        hb_interval=0.05,
        second_buffer_size=second_buffer,
        ack_threshold_fraction=0.75,
    )
    run = run_workload(
        upload_workload(params["upload_size"]),
        profile=profile_from_params(params["profile"]),
        sttcp=config,
        seed=cell.seed,
    ).require_clean()
    pair = run.scenario.pair
    assert pair is not None
    backup = pair.backup_engine
    # One 128 B ack plus the primary's 128 B reply per BackupAck.
    channel_bytes = (backup.acks_sent + pair.primary_engine.acks_received) * 128
    client_bytes = run.result.bytes_sent
    return {
        "second_buffer": float(second_buffer),
        "x_bytes": float(second_buffer * 3 // 4),
        "acks_sent": float(backup.acks_sent),
        "channel_bytes": float(channel_bytes),
        "client_bytes": float(client_bytes),
        "overhead_percent": 100.0 * channel_bytes / client_bytes,
    }


SPEC = register(
    ExperimentSpec(
        name="ablation_overhead",
        title="A4: UDP-channel overhead vs second-buffer size",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def ablation_overhead(
    upload_size: int = 1 * MB,
    second_buffers: Sequence[int] = (4 * KB, 8 * KB, 16 * KB, 32 * KB),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 800,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, float]]:
    """A4 — UDP-channel overhead as a fraction of client traffic (§4.3).

    The paper's arithmetic: a 4 KB second buffer gives X = 3 KB, one
    128-byte ack per 3 KB of client data → 4.17% added LAN traffic in
    the worst case.  This reproduces that number and its scaling with
    the second-buffer size, on a real upload stream.
    """
    return run_experiment(
        "ablation_overhead",
        jobs=jobs,
        store=store,
        upload_size=upload_size,
        second_buffers=second_buffers,
        profile=profile,
        base_seed=base_seed,
    ).rows

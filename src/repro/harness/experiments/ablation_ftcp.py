"""A2 — ST-TCP vs the FT-TCP restart-and-replay baseline."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.workload import bulk_workload
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.results import ResultStore
from repro.harness.runner import measure_failover_time
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
)
from repro.sttcp.config import STTCPConfig
from repro.util.units import MB


def _build_cells(
    scale=None,
    bulk_size: int = 1 * MB,
    hb_interval: float = 0.2,
    crash_fractions: Sequence[float] = (0.25, 0.5, 0.9),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 600,
) -> List[GridCell]:
    del scale
    cells = []
    for index, fraction in enumerate(crash_fractions):
        for label in ("ST-TCP", "FT-TCP"):
            cells.append(
                GridCell(
                    experiment="ablation_ftcp",
                    cell_id=f"{label}|crash{fraction:g}",
                    params={
                        "protocol": label,
                        "bulk_size": bulk_size,
                        "hb_interval": hb_interval,
                        "crash_fraction": fraction,
                        "profile": profile_params(profile),
                    },
                    seed=base_seed + index,
                )
            )
    return cells


def _run_cell(cell: GridCell) -> Record:
    from repro.ftcp.baseline import FTCPConfig

    params = cell.params
    config_class = FTCPConfig if params["protocol"] == "FT-TCP" else STTCPConfig
    sample = measure_failover_time(
        bulk_workload(params["bulk_size"]),
        config_class(hb_interval=params["hb_interval"]),
        profile=profile_from_params(params["profile"]),
        crash_fraction=params["crash_fraction"],
        seed=cell.seed,
    )
    return {
        "protocol": params["protocol"],
        "crash_fraction": params["crash_fraction"],
        "failover_time": sample["failover_time"],
        "detection_latency": sample["detection_latency"],
    }


SPEC = register(
    ExperimentSpec(
        name="ablation_ftcp",
        title="A2: ST-TCP vs FT-TCP failover",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def ablation_ftcp(
    bulk_size: int = 1 * MB,
    hb_interval: float = 0.2,
    crash_fractions: Sequence[float] = (0.25, 0.5, 0.9),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 600,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, float]]:
    """A2 — ST-TCP vs FT-TCP failover: restart+replay cost grows with the
    connection history; ST-TCP's does not."""
    return run_experiment(
        "ablation_ftcp",
        jobs=jobs,
        store=store,
        bulk_size=bulk_size,
        hb_interval=hb_interval,
        crash_fractions=crash_fractions,
        profile=profile,
        base_seed=base_seed,
    ).rows

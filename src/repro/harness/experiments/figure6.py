"""Figure 6 — bulk-transfer total time vs size, with and without failure."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.workload import bulk_workload
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.executor import run_experiment
from repro.harness.experiments.scale import ExperimentScale, default_scale, hb_label
from repro.harness.results import ResultStore
from repro.harness.runner import DEFAULT_CRASH_FRACTION, measure_failover_time
from repro.harness.spec import (
    ExperimentSpec,
    GridCell,
    Record,
    profile_from_params,
    profile_params,
    register,
)
from repro.harness.tables import format_table
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB, MB


def _build_cells(
    scale: Optional[ExperimentScale] = None,
    hb_grid: Optional[Sequence[float]] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 400,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
) -> List[GridCell]:
    scale = scale or default_scale()
    hb_values = tuple(hb_grid) if hb_grid is not None else scale.hb_grid
    cells = []
    for hb_index, hb in enumerate(hb_values):
        for size_index, size in enumerate(scale.bulk_sizes):
            cells.append(
                GridCell(
                    experiment="figure6",
                    cell_id=f"hb{hb:g}|{size}B",
                    params={
                        "hb": hb,
                        "size": size,
                        "profile": profile_params(profile),
                        "topology": topology,
                        "crash_fraction": crash_fraction,
                    },
                    seed=base_seed + hb_index * 17 + size_index,
                )
            )
    return cells


def _run_cell(cell: GridCell) -> Record:
    params = cell.params
    sample = measure_failover_time(
        bulk_workload(params["size"]),
        STTCPConfig(hb_interval=params["hb"]),
        profile=profile_from_params(params["profile"]),
        topology=params["topology"],
        crash_fraction=params["crash_fraction"],
        seed=cell.seed,
    )
    return {
        "hb": params["hb"],
        "size": params["size"],
        "no_failure_time": sample["no_failure_time"],
        "failure_time": sample["failure_time"],
        "failover_time": sample["failover_time"],
    }


def format_figure6(points: List[Dict[str, float]]) -> str:
    rows = [
        [
            hb_label(p["hb"]),
            f"{p['size'] // KB} KB" if p["size"] < MB else f"{p['size'] // MB} MB",
            p["no_failure_time"],
            p["failure_time"],
        ]
        for p in points
    ]
    return format_table(
        ["HB interval", "size", "no failure (s)", "with failure (s)"],
        rows,
        title="Figure 6: bulk transfer with and without failover",
    )


SPEC = register(
    ExperimentSpec(
        name="figure6",
        title="Figure 6: bulk transfers with/without failover",
        build_cells=_build_cells,
        run_cell=_run_cell,
    )
)


def figure6(
    scale: Optional[ExperimentScale] = None,
    hb_grid: Optional[Sequence[float]] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 400,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> List[Dict[str, float]]:
    """Bulk-transfer total time vs size, with and without failure.

    One record per (hb, size): {hb, size, no_failure_time, failure_time}.
    """
    return run_experiment(
        "figure6",
        scale=scale,
        jobs=jobs,
        store=store,
        hb_grid=hb_grid,
        profile=profile,
        topology=topology,
        base_seed=base_seed,
        crash_fraction=crash_fraction,
    ).rows

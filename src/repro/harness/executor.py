"""Execution engine for experiment grids: serial or process-parallel.

The engine takes a spec's cell list and produces one record per cell,
in cell order, regardless of backend:

* ``jobs=1`` runs cells in-process;
* ``jobs>1`` fans cells out over a :class:`ProcessPoolExecutor`.  Each
  worker rebuilds the scenario from the cell's params and seed, so a
  parallel run is **bit-identical** to a serial one — simulations are
  deterministic and share no state.

With a :class:`~repro.harness.results.ResultStore`, cells whose content
key is already stored are *skipped* and their records read back, making
grids resumable; freshly executed cells are appended as they finish
(with perf telemetry from :mod:`repro.metrics.perf`), so an interrupted
grid loses at most its in-flight cells.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Tuple

from pathlib import Path

from repro.harness.results import ResultStore, cell_key
from repro.harness.spec import ExperimentSpec, GridCell, Record, get_spec
from repro.metrics import perf, profile


@dataclasses.dataclass
class GridResult:
    """Records (in cell order) plus execution accounting for one grid."""

    records: List[Record]
    telemetry: List[Optional[Dict[str, Any]]]
    executed: int
    cached: int
    jobs: int
    wall_time: float
    #: Indices into ``records`` of cells executed by *this* run (the rest
    #: were read back from the store with their original telemetry).
    executed_indices: List[int] = dataclasses.field(default_factory=list)

    def _executed_telemetry(self) -> List[Dict[str, Any]]:
        return [t for i in self.executed_indices if (t := self.telemetry[i])]

    @property
    def events(self) -> int:
        return sum(int(t["events"]) for t in self._executed_telemetry())

    @property
    def sim_seconds(self) -> float:
        return sum(float(t["sim_seconds"]) for t in self._executed_telemetry())

    def summary(self) -> str:
        total = self.executed + self.cached
        line = (
            f"{total} cells: {self.executed} executed, {self.cached} cached "
            f"(jobs={self.jobs}, {self.wall_time:.1f}s wall)"
        )
        if self.executed and self.wall_time > 0:
            line += (
                f"; {self.events} events, {self.sim_seconds:.1f} sim-s, "
                f"{self.events / self.wall_time:,.0f} events/s"
            )
        return line


@dataclasses.dataclass
class ExperimentResult:
    """Aggregated rows plus the underlying grid accounting."""

    spec: ExperimentSpec
    cells: List[GridCell]
    grid: GridResult
    rows: List[Record]


def execute_cell(cell: GridCell) -> Tuple[Record, Dict[str, Any]]:
    """Run one cell under a perf probe; returns (record, telemetry)."""
    spec = get_spec(cell.experiment)
    with perf.track() as probe:
        record = spec.run_cell(cell)
    return record, probe.telemetry()


def _execute_cell_worker(cell: GridCell) -> Tuple[Record, Dict[str, Any]]:
    """Process-pool entry point: make sure the registry is populated."""
    import repro.harness.experiments  # noqa: F401 — registers built-in specs

    return execute_cell(cell)


def run_grid(
    spec: ExperimentSpec,
    cells: List[GridCell],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
) -> GridResult:
    """Execute a grid, skipping cells already present in ``store``."""
    started = time.perf_counter()
    records: List[Optional[Record]] = [None] * len(cells)
    telemetry: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    keys = [cell_key(cell) for cell in cells]
    todo: List[int] = []
    cached = 0
    for index, key in enumerate(keys):
        entry = store.get(key) if store is not None else None
        if entry is not None:
            records[index] = entry["record"]
            telemetry[index] = entry.get("telemetry")
            cached += 1
        else:
            todo.append(index)

    def finish(index: int, record: Record, cell_telemetry: Dict[str, Any]) -> None:
        records[index] = record
        telemetry[index] = cell_telemetry
        if store is not None:
            store.append(cells[index], record, cell_telemetry, key=keys[index])

    if jobs > 1 and len(todo) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_execute_cell_worker, cells[index]): index
                for index in todo
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    record, cell_telemetry = future.result()
                    finish(futures[future], record, cell_telemetry)
    else:
        for index in todo:
            record, cell_telemetry = execute_cell(cells[index])
            finish(index, record, cell_telemetry)

    return GridResult(
        records=records,  # type: ignore[arg-type] — every index was filled
        telemetry=telemetry,
        executed=len(todo),
        cached=cached,
        jobs=jobs,
        wall_time=time.perf_counter() - started,
        executed_indices=todo,
    )


def run_experiment(
    name: str,
    scale: Any = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    profile_path: Optional[Path] = None,
    **options: Any,
) -> ExperimentResult:
    """Build, execute, and aggregate one named experiment.

    With ``profile_path``, grid execution runs under the sampling
    profiler (:mod:`repro.metrics.profile`) and the layer-attribution
    report is written there as JSON.  Sampling sees only this process:
    use ``jobs=1`` to attribute simulation time (workers burn their CPU
    elsewhere).
    """
    spec = get_spec(name)
    cells = spec.build_cells(scale=scale, **options)
    if profile_path is not None:
        with profile.sample(path=profile_path):
            grid = run_grid(spec, cells, jobs=jobs, store=store)
    else:
        grid = run_grid(spec, cells, jobs=jobs, store=store)
    rows = (
        spec.aggregate(cells, grid.records)
        if spec.aggregate is not None
        else list(grid.records)
    )
    return ExperimentResult(spec=spec, cells=cells, grid=grid, rows=rows)

"""Experiment harness: calibrated profiles, topologies, and every
table/figure of the paper as a runnable function."""

from repro.harness.calibrate import FAST_LAN, PAPER_TESTBED, NetworkProfile
from repro.harness.experiments import (
    FIGURE_HB_SWEEP,
    PAPER_HB_GRID,
    PAPER_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    ablation_detection,
    ablation_ftcp,
    ablation_logger,
    ablation_overhead,
    ablation_sync,
    default_scale,
    figure5,
    figure6,
    format_figure5,
    format_figure6,
    format_table1,
    format_table2,
    table1,
    table2,
)
from repro.harness.runner import (
    CLIENT_START,
    ExperimentRun,
    measure_failover_time,
    run_workload,
)
from repro.harness.scenario import (
    SERVICE_PORT,
    TOPOLOGY_HUB,
    TOPOLOGY_SWITCHED,
    Scenario,
)
from repro.harness.tables import format_table

__all__ = [
    "CLIENT_START",
    "ExperimentRun",
    "ExperimentScale",
    "FAST_LAN",
    "FIGURE_HB_SWEEP",
    "NetworkProfile",
    "PAPER_HB_GRID",
    "PAPER_SCALE",
    "PAPER_TESTBED",
    "QUICK_SCALE",
    "SERVICE_PORT",
    "Scenario",
    "TOPOLOGY_HUB",
    "TOPOLOGY_SWITCHED",
    "ablation_detection",
    "ablation_ftcp",
    "ablation_logger",
    "ablation_overhead",
    "ablation_sync",
    "default_scale",
    "figure5",
    "figure6",
    "format_figure5",
    "format_figure6",
    "format_table",
    "format_table1",
    "format_table2",
    "measure_failover_time",
    "run_workload",
    "table1",
    "table2",
]

"""ASCII rendering of experiment results in the paper's table shapes."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table."""
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def rows_from_records(
    records: List[Dict[str, Any]], columns: Sequence[str]
) -> List[List[Any]]:
    """Project a list of dicts onto ordered columns (missing → '-')."""
    return [[record.get(column, "-") for column in columns] for record in records]

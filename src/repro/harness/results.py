"""Resumable result store: append-only JSON lines keyed by content hash.

Every executed grid cell becomes one line::

    {"key": "<sha256>", "experiment": "table1", "cell_id": "...",
     "seed": 100, "params": {...}, "record": {...},
     "telemetry": {"wall_time": ..., "events": ..., ...},
     "code_version": "1.0.0", "created_at": 1754500000.0}

The ``key`` is a SHA-256 over the canonical JSON of (experiment,
cell_id, params, seed, code_version).  The calibration profile is part
of ``params``, so recalibrating the simulator — or bumping the package
version — invalidates old entries automatically rather than silently
serving stale numbers.  Re-running a grid against a warm store executes
only the cells whose keys are missing; everything else is read back.

Append-only means a killed run loses at most the in-flight cell; a torn
final line is skipped on load and overwritten by the re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import repro
from repro.harness.spec import GridCell

Entry = Dict[str, Any]

#: Default store location; override per-call or with ``REPRO_STORE``.
DEFAULT_STORE_PATH = "results/results.jsonl"


def code_version() -> str:
    """Version stamp folded into every cell key.

    ``REPRO_CODE_VERSION`` overrides the package version — useful to
    force re-execution after a behaviour-changing edit without a bump.
    """
    return os.environ.get("REPRO_CODE_VERSION", repro.__version__)


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def cell_key(cell: GridCell, version: Optional[str] = None) -> str:
    """Content hash identifying one cell's result."""
    payload = {
        "experiment": cell.experiment,
        "cell_id": cell.cell_id,
        "params": cell.params,
        "seed": cell.seed,
        "code_version": version if version is not None else code_version(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def default_store_path() -> Path:
    return Path(os.environ.get("REPRO_STORE", DEFAULT_STORE_PATH))


class ResultStore:
    """Append-only JSONL store with an in-memory key index."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._by_key: Dict[str, Entry] = {}
        if self.path.exists():
            with self.path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail of an interrupted run
                    if isinstance(entry, dict) and "key" in entry:
                        self._by_key[entry["key"]] = entry

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def get(self, key: str) -> Optional[Entry]:
        return self._by_key.get(key)

    @property
    def entries(self) -> List[Entry]:
        return list(self._by_key.values())

    def records_for(self, experiment: str) -> List[Entry]:
        return [e for e in self._by_key.values() if e.get("experiment") == experiment]

    def append(
        self,
        cell: GridCell,
        record: Dict[str, Any],
        telemetry: Optional[Dict[str, Any]] = None,
        key: Optional[str] = None,
    ) -> Entry:
        """Persist one cell result; returns the stored entry."""
        entry: Entry = {
            "key": key if key is not None else cell_key(cell),
            "experiment": cell.experiment,
            "cell_id": cell.cell_id,
            "seed": cell.seed,
            "params": cell.params,
            "record": record,
            "telemetry": telemetry,
            "code_version": code_version(),
            "created_at": time.time(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._by_key[entry["key"]] = entry
        return entry

"""Command-line interface: ``python -m repro <experiment> [options]``.

Subcommands regenerate the paper's artefacts and the ablations::

    python -m repro table1                 # reduced grid
    python -m repro table2 --paper-scale   # the full Table 2 grid
    python -m repro figure5 --app interactive
    python -m repro figure6 --json out.json
    python -m repro ablations --csv out.csv
    python -m repro demo                   # one narrated failover run

Execution: ``--jobs N`` fans cells out over N worker processes (results
are bit-identical to ``--jobs 1``).  Completed cells are cached in the
result store (``results/results.jsonl`` by default; ``--store PATH`` to
relocate, ``--no-store`` to disable) and skipped on re-runs.

Exports: ``--json PATH`` / ``--csv PATH`` write the raw records.

Profiling: ``--profile`` samples wall time per simulator layer and writes
``profile_<experiment>.json`` next to the result store (docs/HARNESS.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.harness.executor import ExperimentResult, run_experiment
from repro.harness.experiments import (
    DEFAULT_LADDER,
    DEFAULT_SCENARIOS,
    PAPER_SCALE,
    QUICK_SCALE,
    SMOKE_LADDER,
    default_scale,
    format_cluster,
    format_figure5,
    format_figure6,
    format_scale,
    format_table1,
    format_table2,
)
from repro.harness.results import ResultStore, default_store_path
from repro.harness.runner import FLIGHT_DUMP_ENV
from repro.harness.tables import format_table, rows_from_records
from repro.metrics.report import records_to_csv, records_to_json
from repro.sim.datapath import datapath_mode


def _scale_from_args(args: argparse.Namespace):
    if getattr(args, "paper_scale", False):
        return PAPER_SCALE
    if getattr(args, "quick", False):
        return QUICK_SCALE
    return default_scale()


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    if getattr(args, "no_store", False):
        return None
    path = getattr(args, "store", None) or default_store_path()
    return ResultStore(path)


def _profile_path(name: str, args: argparse.Namespace, store: Optional[ResultStore]):
    """Report destination for ``--profile``: next to the result store."""
    if not getattr(args, "profile", False):
        return None
    base = store.path.parent if store is not None else default_store_path().parent
    return base / f"profile_{name}.json"


def _run(name: str, args: argparse.Namespace, **options: Any) -> ExperimentResult:
    if getattr(args, "flight_dump", None):
        # The env var (not a parameter) so --jobs N worker processes
        # inherit it; every red cell then leaves a dump in the directory.
        os.environ[FLIGHT_DUMP_ENV] = args.flight_dump
    store = _store_from_args(args)
    profile_path = _profile_path(name, args, store)
    result = run_experiment(
        name,
        jobs=getattr(args, "jobs", 1),
        store=store,
        profile_path=profile_path,
        **options,
    )
    print(result.grid.summary(), file=sys.stderr)
    if profile_path is not None:
        report = json.loads(profile_path.read_text())
        layers = ", ".join(
            f"{layer} {info['fraction']:.0%}"
            for layer, info in report["layers"].items()
        )
        print(
            f"profile: {report['samples']} samples -> {profile_path} ({layers})",
            file=sys.stderr,
        )
    return result


def _print_pool_health(telemetry: List[Optional[Dict[str, Any]]]) -> None:
    """One line of segment-pool health summed over the run's cells.

    Reads the perf telemetry (pool deltas per tracked cell), which sits
    next to the result store but never inside the hashed records — under
    ``REPRO_DATAPATH=object`` the datapath bypasses the pool and every
    counter is simply zero.
    """
    cells = [t for t in telemetry if t is not None]
    pooled = int(sum(t.get("segments_pooled", 0) for t in cells))
    misses = int(sum(t.get("pool_misses", 0) for t in cells))
    mode = datapath_mode()
    if pooled == 0 and misses == 0:
        print(f"datapath={mode}: segment pool idle", file=sys.stderr)
        return
    hit_rate = 1.0 - misses / max(1, pooled)
    print(
        f"datapath={mode}: {pooled} segments pooled, "
        f"{misses} pool misses (slab hit rate {hit_rate:.1%})",
        file=sys.stderr,
    )


def _export(records: List[Dict[str, Any]], args: argparse.Namespace) -> None:
    if getattr(args, "json", None):
        path = records_to_json(records, args.json)
        print(f"wrote {path}")
    if getattr(args, "csv", None):
        path = records_to_csv(records, args.csv)
        print(f"wrote {path}")


def _build_scorecard(
    records: List[Dict[str, Any]],
    name_of: Any,
    slo_source: Any,
    title: str,
):
    """Grade each record against the SLO spec; returns the Scorecard."""
    from repro.obs.scorecard import Scorecard, score_record
    from repro.obs.slo import evaluate_slos, load_slo_spec

    spec = load_slo_spec(slo_source)
    card = Scorecard(title=title)
    for record in records:
        report = evaluate_slos(spec, record)
        card.scores.append(score_record(name_of(record), record, report))
    return spec, card


def _publish_scorecard(card: Any, out_dir: str) -> None:
    from pathlib import Path

    from repro.obs.scorecard import write_scorecard

    md_path, json_path = write_scorecard(card, Path(out_dir))
    print(f"wrote {md_path} and {json_path}", file=sys.stderr)


def _cmd_table1(args: argparse.Namespace) -> int:
    records = _run(
        "table1",
        args,
        scale=_scale_from_args(args),
        topology=args.topology,
        base_seed=args.seed,
    ).rows
    print(format_table1(records))
    _export(records, args)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    records = _run(
        "table2",
        args,
        scale=_scale_from_args(args),
        topology=args.topology,
        base_seed=args.seed,
    ).rows
    print(format_table2(records))
    _export(records, args)
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    points = _run(
        "figure5",
        args,
        scale=_scale_from_args(args),
        application=args.app,
        topology=args.topology,
        base_seed=args.seed,
    ).rows
    print(format_figure5(points, args.app))
    _export(points, args)
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    points = _run(
        "figure6",
        args,
        scale=_scale_from_args(args),
        topology=args.topology,
        base_seed=args.seed,
    ).rows
    print(format_figure6(points))
    _export(points, args)
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    all_records: List[Dict[str, Any]] = []
    sections: List[tuple] = [
        ("A1 sync strategy", "ablation_sync", ["sync_time", "x_fraction", "total_time", "acks_sent", "retention_peak", "overflow_peak"]),
        ("A2 vs FT-TCP", "ablation_ftcp", ["protocol", "crash_fraction", "failover_time", "detection_latency"]),
        ("A3 logger double-failure", "ablation_logger", ["logger", "completed", "verified", "logger_bytes_recovered"]),
        ("A4 channel overhead", "ablation_overhead", ["second_buffer", "x_bytes", "acks_sent", "overhead_percent"]),
        ("A5 detection threshold", "ablation_detection", ["threshold", "wrong_suspicion", "service_ok_after", "detection_latency"]),
    ]
    for title, name, columns in sections:
        records = _run(name, args).rows
        print(format_table(columns, rows_from_records(records, columns), title=title))
        print()
        for record in records:
            record["ablation"] = title.split()[0]
        all_records.extend(records)
    _export(all_records, args)
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Connection-churn ladder: rungs of simultaneous ST-TCP connections
    with a mid-ladder primary crash (docs/SCALE.md)."""
    if args.rungs:
        ladder = tuple(int(rung) for rung in args.rungs.split(","))
    elif getattr(args, "quick", False):
        ladder = SMOKE_LADDER
    else:
        ladder = DEFAULT_LADDER
    result = _run(
        "scale",
        args,
        ladder=ladder,
        topology=args.topology,
        base_seed=args.seed,
    )
    records = result.rows
    print(format_scale(records))
    _print_pool_health(result.grid.telemetry)
    _export(records, args)
    if getattr(args, "scorecard", None):
        _spec, card = _build_scorecard(
            records,
            name_of=lambda r: f"scale-{r['connections']}",
            slo_source=args.slo or "configs/slo/scale.json",
            title="repro scale scorecard",
        )
        _publish_scorecard(card, args.scorecard)
    clean = all(
        record["verified"]
        and not record["degraded"]
        and record["leftover_shadows"] == 0
        for record in records
    )
    return 0 if clean else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    """N primary/backup pairs on one fabric: pooled backups, fenced
    takeover, replacement-backup election (docs/CLUSTER.md)."""
    scenarios = args.scenario if args.scenario else list(DEFAULT_SCENARIOS)
    records = _run("cluster", args, scenarios=scenarios).rows
    print(format_cluster(records))
    _export(records, args)
    if getattr(args, "timelines", False):
        for record in records:
            print(f"\n{record['scenario']}: per-pair timelines")
            for pair, timeline in sorted(record["timelines"].items()):
                print(f"  {pair}: {timeline}")
    if getattr(args, "scorecard", None):
        _spec, card = _build_scorecard(
            records,
            name_of=lambda r: r["scenario"],
            slo_source=args.slo or "configs/slo/cluster.json",
            title="repro cluster scorecard",
        )
        _publish_scorecard(card, args.scorecard)
    return 0 if all(record["ok"] for record in records) else 1


def _cmd_health(args: argparse.Namespace) -> int:
    """Run cluster scenarios, grade them against an SLO spec, and publish
    the Markdown + JSON scorecard (docs/OBSERVABILITY.md)."""
    from repro.harness.results import cell_key
    from repro.harness.spec import GridCell

    scenarios = args.scenario if args.scenario else list(DEFAULT_SCENARIOS)
    records = _run("cluster", args, scenarios=scenarios).rows
    slo_spec, card = _build_scorecard(
        records,
        name_of=lambda r: r["scenario"],
        slo_source=args.slo,
        title=f"repro health scorecard — SLO spec '{args.slo}'",
    )
    print(card.render_markdown())
    _publish_scorecard(card, args.out)
    store = _store_from_args(args)
    if store is not None:
        # Content-hash each scenario's score into the store: the params
        # carry the full SLO spec, so editing an objective (or the code
        # version changing) re-keys the entry instead of serving a stale
        # verdict.
        slo_params = [
            {
                "name": s.name,
                "sli": s.sli,
                "objective": s.objective,
                "window": s.window,
            }
            for s in slo_spec.slos
        ]
        for score in card.scores:
            cell = GridCell(
                experiment="health",
                cell_id=f"health[{score.name}]",
                params={"slo_spec": slo_spec.name, "slos": slo_params,
                        "scenario": score.name},
                seed=0,
            )
            key = cell_key(cell)
            if store.get(key) is None:
                store.append(cell, score.to_record(), key=key)
    return 0 if card.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """A traced failover run: tcpdump at the client's NIC (``wire``) or
    a Chrome trace-event export of the full record stream (``export``)."""
    from repro.apps.workload import echo_workload
    from repro.harness.calibrate import FAST_LAN
    from repro.harness.runner import run_workload
    from repro.harness.scenario import Scenario
    from repro.net.frame import ETHERTYPE_IPV4
    from repro.net.tcpdump import PacketDump
    from repro.sttcp.config import STTCPConfig

    scenario = Scenario(
        profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=args.seed
    )
    dump = recording = None
    if args.action == "wire":
        dump = PacketDump(
            scenario.sim,
            predicate=lambda frame: frame.ethertype == ETHERTYPE_IPV4,
        )
        dump.attach_nic(scenario.client.nics[0], label="client")
    else:
        from repro.sim.trace import RecordingSink

        recording = RecordingSink()
        scenario.sim.trace.add_sink(recording)
    run = run_workload(
        echo_workload(args.exchanges),
        scenario=scenario,
        crash_at=0.102,
        deadline=120.0,
    )
    if dump is not None:
        print(
            f"\n{dump.lines_emitted} frames at the client; "
            f"run verified={run.result.verified}; the takeover at "
            f"t≈{scenario.pair.backup_engine.takeover_time:.3f}s is invisible above."
        )
    else:
        from repro.obs.export import write_chrome_trace

        with open(args.out, "w") as handle:
            count = write_chrome_trace(recording.records, handle)
        print(
            f"wrote {count} trace events to {args.out} "
            f"(load in chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Phase decomposition of one failover (detection → takeover →
    first-retransmission-accepted → resume), Figure 5-style run — or,
    with --scenario, per-service timelines plus the cluster-level
    fence → election → resync phases of one scenario."""
    if getattr(args, "scenario", None):
        return _cmd_timeline_cluster(args)
    from repro.apps.workload import echo_workload
    from repro.harness.runner import CLIENT_START, DEFAULT_CRASH_FRACTION, run_workload
    from repro.sttcp.config import STTCPConfig

    workload = echo_workload(args.exchanges)
    sttcp = STTCPConfig(hb_interval=args.hb)
    baseline = run_workload(workload, sttcp=sttcp, seed=args.seed).require_clean()
    crash_time = CLIENT_START + DEFAULT_CRASH_FRACTION * baseline.total_time
    failed = run_workload(
        workload,
        sttcp=sttcp,
        crash_at=crash_time,
        seed=args.seed,
        deadline=3600.0 + sttcp.detection_timeout() * 4,
    ).require_clean()
    if failed.timeline is None:
        print("no failover observed (takeover or client-progress markers missing)")
        return 1
    print(failed.timeline.render())
    print(
        f"measured client-visible outage (RunResult.max_gap): "
        f"{failed.result.max_gap * 1e3:.1f} ms"
    )
    return 0


def _cmd_timeline_cluster(args: argparse.Namespace) -> int:
    """Per-service timelines + cluster phases for one scenario run."""
    from repro.cluster.run import ClusterRun
    from repro.harness.experiments.cluster import resolve_scenario

    spec = resolve_scenario(args.scenario)
    run = ClusterRun(spec)
    record = run.execute()
    print(
        f"cluster scenario '{record['scenario']}' "
        f"({spec.primaries} primaries / {spec.backups} pool hosts): "
        f"crashed {record['crashed_service']} at t={record['crash_at']:g}"
    )
    for service in run.fabric.services:
        print(f"\n{service.name}:")
        timeline = (
            run.pair_timeline(service.name)
            if service.name == record["crashed_service"]
            else None
        )
        if timeline is not None:
            for line in timeline.render().splitlines():
                print(f"  {line}")
        else:
            summary = record["timelines"].get(service.name) or {}
            gap = summary.get("max_gap")
            gap_text = f"{gap * 1e3:.1f} ms" if gap is not None else "unknown"
            print(f"  no takeover on this pair; max progress gap {gap_text}")
    phases = run.collector.reconstruct_cluster()
    if phases is not None:
        print()
        print(phases.render())
    return 0 if record["ok"] else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.apps.workload import bulk_workload
    from repro.harness.calibrate import PAPER_TESTBED
    from repro.harness.runner import measure_failover_time
    from repro.sttcp.config import STTCPConfig
    from repro.util.units import MB

    sample = measure_failover_time(
        bulk_workload(1 * MB),
        STTCPConfig(hb_interval=args.hb),
        profile=PAPER_TESTBED,
        seed=args.seed,
    )
    rows = [[key, value] for key, value in sample.items()]
    print(format_table(["metric", "value"], rows, title="one failover run (bulk 1 MB)"))
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.drill import format_report, results_to_json, run_drill_path
    from repro.drill.report import format_failures

    results = run_drill_path(args.path, flight_dump=args.flight_dump)
    print(format_report(results))
    failures = format_failures(results)
    if failures:
        print()
        print(failures)
    if args.json:
        with open(args.json, "w") as handle:
            json_module.dump(results_to_json(results), handle, indent=2)
        print(f"\nJSON report written to {args.json}")
    return 0 if all(result.passed for result in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ST-TCP reproduction: regenerate the paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--paper-scale", action="store_true", help="the full paper grid")
        p.add_argument("--quick", action="store_true", help="force the quick grid")
        p.add_argument("--topology", choices=["hub", "switched"], default="hub")
        p.add_argument("--seed", type=int, default=100)
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="run cells on N worker processes (results identical to N=1)",
        )
        p.add_argument(
            "--store",
            metavar="PATH",
            help="result store path (default results/results.jsonl, or $REPRO_STORE)",
        )
        p.add_argument(
            "--no-store",
            action="store_true",
            help="do not read or write the result store",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="sample wall time per layer; JSON report lands next to the "
            "result store (use with --jobs 1)",
        )
        p.add_argument("--json", metavar="PATH", help="export records as JSON")
        p.add_argument("--csv", metavar="PATH", help="export records as CSV")
        p.add_argument(
            "--flight-dump",
            metavar="DIR",
            help="dump the flight recorder (last trace records) of any red "
            "run into DIR (CI uploads it as an artifact)",
        )

    for name, fn, help_text in [
        ("table1", _cmd_table1, "Table 1: failure-free ST-TCP vs standard TCP"),
        ("table2", _cmd_table2, "Table 2: failover time vs heartbeat interval"),
        ("figure5", _cmd_figure5, "Figure 5: echo/interactive vs HB interval"),
        ("figure6", _cmd_figure6, "Figure 6: bulk transfers with/without failover"),
        ("ablations", _cmd_ablations, "Ablations A1–A4"),
    ]:
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.set_defaults(fn=fn)
    figure5_parser = next(
        a for a in sub.choices.values() if a.prog.endswith("figure5")
    )
    figure5_parser.add_argument("--app", choices=["echo", "interactive"], default="echo")

    scale = sub.add_parser(
        "scale",
        help="connection-churn ladder with failover at each rung (docs/SCALE.md)",
    )
    common(scale)
    scale.add_argument(
        "--rungs",
        metavar="N,N,...",
        help="comma-separated ladder of simultaneous connections "
        f"(default {','.join(map(str, DEFAULT_LADDER))}; "
        f"--quick uses {','.join(map(str, SMOKE_LADDER))})",
    )
    scale.add_argument(
        "--scorecard",
        metavar="DIR",
        help="grade the rungs against an SLO spec and write the "
        "Markdown+JSON scorecard into DIR",
    )
    scale.add_argument(
        "--slo",
        metavar="PATH",
        default=None,
        help="SLO spec for --scorecard (default configs/slo/scale.json)",
    )
    scale.set_defaults(fn=_cmd_scale)

    cluster = sub.add_parser(
        "cluster",
        help="N-pair fabric with backup pool, election + STONITH (docs/CLUSTER.md)",
    )
    common(cluster)
    cluster.add_argument(
        "--scenario",
        action="append",
        metavar="NAME_OR_PATH",
        help="scenario to run: a shipped name "
        f"({', '.join(DEFAULT_SCENARIOS)}) or a JSON file path; "
        "repeatable (default: all shipped scenarios)",
    )
    cluster.add_argument(
        "--timelines",
        action="store_true",
        help="print the per-pair failover timelines after the table",
    )
    cluster.add_argument(
        "--scorecard",
        metavar="DIR",
        help="grade the scenarios against an SLO spec and write the "
        "Markdown+JSON scorecard into DIR",
    )
    cluster.add_argument(
        "--slo",
        metavar="PATH",
        default=None,
        help="SLO spec for --scorecard (default configs/slo/cluster.json)",
    )
    cluster.set_defaults(fn=_cmd_cluster)

    health = sub.add_parser(
        "health",
        help="scenario scorecard: SLO verdicts, grades, phase breakdowns "
        "(docs/OBSERVABILITY.md)",
    )
    common(health)
    health.add_argument(
        "--scenario",
        action="append",
        metavar="NAME_OR_PATH",
        help="scenario to grade: a shipped name "
        f"({', '.join(DEFAULT_SCENARIOS)}) or a JSON file path; "
        "repeatable (default: all shipped scenarios)",
    )
    health.add_argument(
        "--slo",
        metavar="PATH",
        default="configs/slo/cluster.json",
        help="SLO spec to evaluate (default configs/slo/cluster.json)",
    )
    health.add_argument(
        "--out",
        metavar="DIR",
        default="health",
        help="directory for scorecard.md / scorecard.json (default health/)",
    )
    health.set_defaults(fn=_cmd_health)

    trace = sub.add_parser(
        "trace", help="a traced failover: client tcpdump or Chrome trace export"
    )
    trace.add_argument(
        "action",
        nargs="?",
        default="wire",
        choices=["wire", "export"],
        help="wire: tcpdump at the client (default); export: Chrome trace JSON",
    )
    # 30 exchanges outlive the scripted crash on FAST_LAN, so the default
    # run always contains the takeover the command exists to show.
    trace.add_argument("--exchanges", type=int, default=30)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument(
        "--out", metavar="PATH", default="trace.json", help="export destination"
    )
    trace.set_defaults(fn=_cmd_trace)

    timeline = sub.add_parser(
        "timeline", help="phase decomposition of one failover (paper §6.2)"
    )
    timeline.add_argument("--exchanges", type=int, default=40)
    timeline.add_argument("--hb", type=float, default=0.05, help="heartbeat interval (s)")
    timeline.add_argument("--seed", type=int, default=7)
    timeline.add_argument(
        "--scenario",
        metavar="NAME_OR_PATH",
        help="decompose a cluster scenario instead: per-service timelines "
        "plus the fence → election → resync phases",
    )
    timeline.set_defaults(fn=_cmd_timeline)

    demo = sub.add_parser("demo", help="one measured failover, as a table")
    demo.add_argument("--hb", type=float, default=0.05, help="heartbeat interval (s)")
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(fn=_cmd_demo)

    drill = sub.add_parser(
        "drill", help="run scripted conformance drills (a script or a directory)"
    )
    drill.add_argument("path", help="a drill script, or a directory of *.py scripts")
    drill.add_argument("--json", metavar="PATH", help="write the result table as JSON")
    drill.add_argument(
        "--flight-dump",
        metavar="DIR",
        help="write each failing drill's flight-recorder dump into DIR",
    )
    drill.set_defaults(fn=_cmd_drill)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    start = time.time()
    status = args.fn(args)
    print(f"({time.time() - start:.1f} s wall clock)", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Declarative experiment model: grids as data, execution elsewhere.

Every paper artefact (Table 1, Table 2, Figures 5–6, ablations A1–A5) is
an :class:`ExperimentSpec`: a *builder* that expands parameters into a
list of :class:`GridCell` (pure data — picklable, hashable-by-content),
a *runner* that executes one cell in a fresh deterministic simulation,
and an optional *aggregator* that folds cell records into the paper's
row shapes.  Specs register themselves by name at import time (the
modules under :mod:`repro.harness.experiments` do this), so executor
worker processes can look a spec up by name and rebuild everything a
cell needs from its ``params`` alone.

The separation buys three things:

* **parallelism** — cells are independent, so the executor can fan them
  out across processes with bit-identical results (each worker builds
  its own :class:`~repro.sim.simulator.Simulator` from the cell's seed);
* **resumability** — a cell's identity is a content hash of its params
  (see :mod:`repro.harness.results`), so completed cells are skipped on
  re-runs;
* **provenance** — every record in the store carries the exact grid
  coordinates, calibration profile, and seed that produced it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from repro.apps.workload import AppWorkload
from repro.harness.calibrate import NetworkProfile
from repro.sttcp.config import STTCPConfig

Record = Dict[str, Any]


@dataclasses.dataclass(frozen=True)
class GridCell:
    """One point of an experiment grid, as pure JSON-able data.

    ``params`` must contain everything the spec's ``run_cell`` needs to
    rebuild the scenario — workload, ST-TCP config, network profile,
    topology — because workers reconstruct from the cell alone.
    """

    experiment: str
    cell_id: str
    params: Dict[str, Any]
    seed: int


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A paper artefact: how to enumerate, run, and fold its grid."""

    name: str
    title: str
    #: ``build_cells(scale=None, **options) -> List[GridCell]``
    build_cells: Callable[..., List[GridCell]]
    #: ``run_cell(cell) -> Record`` — one deterministic simulation bundle.
    run_cell: Callable[[GridCell], Record]
    #: Fold per-cell records into paper-shaped rows (None: records as-is).
    aggregate: Optional[Callable[[List[GridCell], List[Record]], List[Record]]] = None
    #: Render aggregated rows as the paper's ASCII table (None: generic).
    format: Optional[Callable[[List[Record]], str]] = None


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec under its name (idempotent re-registration wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def experiment_names() -> List[str]:
    return sorted(_REGISTRY)


# ------------------------------------------------------------- param codecs
# Cells carry dataclasses as plain dicts so they stay JSON-able (for the
# content hash) and picklable (for worker processes).

def workload_params(workload: AppWorkload) -> Dict[str, Any]:
    return dataclasses.asdict(workload)


def workload_from_params(params: Dict[str, Any]) -> AppWorkload:
    return AppWorkload(**params)


def profile_params(profile: NetworkProfile) -> Dict[str, Any]:
    return dataclasses.asdict(profile)


def profile_from_params(params: Dict[str, Any]) -> NetworkProfile:
    return NetworkProfile(**params)


#: Config fields added after result stores shipped.  Omitted from the
#: serialized params while they hold their default so the content hash
#: (cell identity) of every pre-existing cell — and store resumability —
#: survives the addition.  ``sttcp_from_params`` fills them back in from
#: the dataclass defaults.
_POST_V0_STTCP_FIELDS = ("takeover_batch", "hb_jitter")


def sttcp_params(config: Optional[STTCPConfig]) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    params = dataclasses.asdict(config)
    defaults = {
        field.name: field.default for field in dataclasses.fields(STTCPConfig)
    }
    for name in _POST_V0_STTCP_FIELDS:
        if params.get(name) == defaults[name]:
            del params[name]
    return params


def sttcp_from_params(params: Optional[Dict[str, Any]]) -> Optional[STTCPConfig]:
    if params is None:
        return None
    return STTCPConfig(**params)

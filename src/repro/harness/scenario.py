"""Scenario builder: the paper's topologies, ready to run.

Two topologies:

* ``hub`` — the experimental setup of §6: client, primary and backup on
  one shared 10/100 hub; the backup taps promiscuously.
* ``switched`` — the architecture of Figure 2: the client sits behind a
  gateway; primary and backup hang off an Ethernet switch; tapping works
  through virtual NICs with *multicast* Ethernet addresses (SME for
  client→server, GME for server→client) plus static ARP entries on the
  gateway and the primary.

Modes:

* ``standard`` — plain TCP server on the primary only (the baseline rows
  of Table 1);
* ``sttcp`` — full primary/backup pair with UDP channel, heartbeats,
  optional packet logger and power switch.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.injection import CrashInjector
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.host.host import Host, make_gateway
from repro.logger.client import LoggerClient
from repro.logger.packet_logger import PacketLogger
from repro.net.addresses import IPAddress, fresh_multicast_mac, ip
from repro.net.medium import Cable, Hub
from repro.net.switch import Switch
from repro.sim.simulator import Simulator
from repro.sttcp.config import STTCPConfig
from repro.sttcp.manager import STTCPServerPair
from repro.sttcp.power_switch import PowerSwitch

TOPOLOGY_HUB = "hub"
TOPOLOGY_SWITCHED = "switched"

SERVICE_PORT = 8000

# Address plan (LAN 10.0.0.0/24, client subnet 192.168.1.0/24).
PRIMARY_IP = ip("10.0.0.1")
BACKUP_IP = ip("10.0.0.2")
EXTRA_BACKUP_IPS = (ip("10.0.0.3"), ip("10.0.0.4"))
LOGGER_IP = ip("10.0.0.5")
GATEWAY_LAN_IP = ip("10.0.0.254")
GATEWAY_VIRTUAL_IP = ip("10.0.0.253")  # GVI
SERVICE_IP = ip("10.0.0.100")  # SVI
CLIENT_LAN_IP = ip("10.0.0.10")  # hub topology
CLIENT_WAN_IP = ip("192.168.1.2")  # switched topology
GATEWAY_WAN_IP = ip("192.168.1.1")
LAN_NET = ip("10.0.0.0")
WAN_NET = ip("192.168.1.0")


class Scenario:
    """A built topology plus the service deployment."""

    def __init__(
        self,
        profile: NetworkProfile = PAPER_TESTBED,
        topology: str = TOPOLOGY_HUB,
        sttcp: Optional[STTCPConfig] = None,
        with_logger: bool = False,
        backups: int = 1,
        seed: int = 0,
    ) -> None:
        if topology not in (TOPOLOGY_HUB, TOPOLOGY_SWITCHED):
            raise ConfigurationError(f"unknown topology {topology!r}")
        if backups < 1 or backups > 1 + len(EXTRA_BACKUP_IPS):
            raise ConfigurationError(f"backups must be 1..3, got {backups}")
        self.profile = profile
        self.topology = topology
        self.sttcp_config = sttcp
        self.with_logger = with_logger
        self.sim = Simulator(seed=seed)
        self.crash_injector = CrashInjector(self.sim)
        tcp_config = profile.tcp_config()
        self.backups_requested = backups
        self.client = Host(self.sim, "client", tcp_config=tcp_config)
        self.primary = Host(
            self.sim,
            "primary",
            tcp_config=tcp_config,
            nic_processing_delay=profile.nic_processing_delay,
        )
        self.backup: Optional[Host] = None
        self.gateway: Optional[Host] = None
        self.logger: Optional[PacketLogger] = None
        self.logger_host: Optional[Host] = None
        self.power_switch: Optional[PowerSwitch] = None
        self.pair: Optional[STTCPServerPair] = None
        self.hub: Optional[Hub] = None
        self.switch: Optional[Switch] = None
        self.extra_backups: list = []
        if sttcp is not None:
            self.backup = Host(
                self.sim,
                "backup",
                tcp_config=tcp_config,
                nic_processing_delay=profile.nic_processing_delay,
            )
            for index in range(backups - 1):
                self.extra_backups.append(
                    Host(
                        self.sim,
                        f"backup{index + 2}",
                        tcp_config=tcp_config,
                        nic_processing_delay=profile.nic_processing_delay,
                    )
                )
            self.power_switch = PowerSwitch(self.sim, sttcp.stonith_delay)
        if with_logger:
            self.logger_host = Host(self.sim, "logger", tcp_config=tcp_config)
        if topology == TOPOLOGY_HUB:
            self._build_hub()
        else:
            self._build_switched()
        if with_logger:
            self.logger = PacketLogger(self.logger_host, SERVICE_IP, SERVICE_PORT)
        if sttcp is not None:
            logger_client = None
            if self.logger is not None and sttcp.use_logger:
                logger_client = LoggerClient(self.backup, self.logger.address)
            from repro.ftcp.baseline import FTCPConfig, FTCPServerPair

            if self.extra_backups:
                from repro.sttcp.group import STTCPServerGroup

                if isinstance(sttcp, FTCPConfig):
                    raise ConfigurationError(
                        "the FT-TCP baseline models a single backup"
                    )
                backup_hosts = [self.backup] + self.extra_backups
                loggers = [logger_client] + [None] * len(self.extra_backups)
                self.pair = STTCPServerGroup(
                    self.primary,
                    backup_hosts,
                    SERVICE_IP,
                    SERVICE_PORT,
                    config=sttcp,
                    power_switch=self.power_switch,
                    logger_clients=loggers,
                )
            else:
                pair_cls = (
                    FTCPServerPair if isinstance(sttcp, FTCPConfig) else STTCPServerPair
                )
                self.pair = pair_cls(
                    self.primary,
                    self.backup,
                    SERVICE_IP,
                    SERVICE_PORT,
                    config=sttcp,
                    power_switch=self.power_switch,
                    logger_client=logger_client,
                )

    # Topology builders ---------------------------------------------------------
    def _build_hub(self) -> None:
        profile = self.profile
        self.hub = Hub(self.sim, profile.link_rate_bps, delay=profile.hub_delay)
        client_nic = self.client.add_nic()
        self.hub.attach(client_nic)
        self.client.configure_ip(client_nic, CLIENT_LAN_IP, 24)
        primary_nic = self.primary.add_nic()
        self.hub.attach(primary_nic)
        self.primary.configure_ip(primary_nic, PRIMARY_IP, 24)
        # The service IP rides the primary's hardware MAC on a hub.
        self.primary.add_vnic("svi", SERVICE_IP, primary_nic.mac, primary_nic)
        if self.backup is not None:
            backup_nic = self.backup.add_nic()
            backup_nic.promiscuous = True  # the hub tap (§6)
            self.hub.attach(backup_nic)
            self.backup.configure_ip(backup_nic, BACKUP_IP, 24)
            self.backup.add_vnic("svi", SERVICE_IP, backup_nic.mac, backup_nic)
            for index, extra in enumerate(self.extra_backups):
                nic = extra.add_nic()
                nic.promiscuous = True
                self.hub.attach(nic)
                extra.configure_ip(nic, EXTRA_BACKUP_IPS[index], 24)
                extra.add_vnic("svi", SERVICE_IP, nic.mac, nic)
        if self.logger_host is not None:
            logger_nic = self.logger_host.add_nic()
            logger_nic.promiscuous = True
            self.hub.attach(logger_nic)
            self.logger_host.configure_ip(logger_nic, LOGGER_IP, 24)

    def _build_switched(self) -> None:
        profile = self.profile
        self.switch = Switch(self.sim, forwarding_delay=profile.switch_delay)
        self.gateway = make_gateway(self.sim, "gateway")

        def lan_cable(nic_owner_nic) -> None:
            port = self.switch.new_port()
            Cable(
                self.sim,
                nic_owner_nic,
                port,
                profile.link_rate_bps,
                delay=profile.hub_delay / 2,
            )
            return port

        # Gateway: WAN link to the client, LAN port on the switch.
        gw_wan = self.gateway.add_nic("wan0")
        gw_lan = self.gateway.add_nic("lan0")
        client_nic = self.client.add_nic()
        Cable(
            self.sim, client_nic, gw_wan, profile.link_rate_bps, delay=profile.hub_delay
        )
        gw_port = lan_cable(gw_lan)
        self.gateway.configure_ip(gw_wan, GATEWAY_WAN_IP, 24)
        self.gateway.configure_ip(gw_lan, GATEWAY_LAN_IP, 24)
        self.client.configure_ip(client_nic, CLIENT_WAN_IP, 24)
        self.client.ip_layer.add_default_route(client_nic, GATEWAY_WAN_IP)

        primary_nic = self.primary.add_nic()
        primary_port = lan_cable(primary_nic)
        self.primary.configure_ip(primary_nic, PRIMARY_IP, 24)

        # SVI/SME: the service identity, multicast so the switch fans it out.
        sme = fresh_multicast_mac()
        self.primary.add_vnic("svi", SERVICE_IP, sme, primary_nic)
        self.switch.join_multicast(sme, primary_port)
        # Static ARP on the gateway: the router may not learn a multicast
        # MAC from a reply (RFC 1812), so it is pinned (§3.1).
        self.gateway.arp.add_static(SERVICE_IP, sme)

        # GVI/GME: the gateway's virtual identity for server→client traffic.
        gme = fresh_multicast_mac()
        self.gateway.add_vnic("gvi", GATEWAY_VIRTUAL_IP, gme, gw_lan)
        self.switch.join_multicast(gme, gw_port)
        self.primary.arp.add_static(GATEWAY_VIRTUAL_IP, gme)
        self.primary.ip_layer.add_route(
            WAN_NET, 24, primary_nic, next_hop=GATEWAY_VIRTUAL_IP
        )

        if self.backup is not None:
            for index, host in enumerate([self.backup] + self.extra_backups):
                backup_nic = host.add_nic()
                backup_port = lan_cable(backup_nic)
                address = BACKUP_IP if index == 0 else EXTRA_BACKUP_IPS[index - 1]
                host.configure_ip(backup_nic, address, 24)
                host.add_vnic("svi", SERVICE_IP, sme, backup_nic)
                self.switch.join_multicast(sme, backup_port)
                # Tap the server→client direction through GME membership.
                backup_nic.join_mac(gme)
                self.switch.join_multicast(gme, backup_port)
                host.arp.add_static(GATEWAY_VIRTUAL_IP, gme)
                host.ip_layer.add_route(
                    WAN_NET, 24, backup_nic, next_hop=GATEWAY_VIRTUAL_IP
                )
        if self.logger_host is not None:
            logger_nic = self.logger_host.add_nic()
            logger_port = lan_cable(logger_nic)
            self.logger_host.configure_ip(logger_nic, LOGGER_IP, 24)
            logger_nic.join_mac(sme)
            self.switch.join_multicast(sme, logger_port)
            logger_nic.join_mac(gme)
            self.switch.join_multicast(gme, logger_port)

    # Service deployment -----------------------------------------------------------
    def start_service(self, service_time: float = 0.0) -> None:
        """Launch the server side (standard or ST-TCP pair); idempotent so
        several client runs can share one scenario."""
        if getattr(self, "_service_started", False):
            return
        self._service_started = True
        if self.pair is not None:
            self.pair.start_service(service_time)
        else:
            from repro.apps.server import start_server

            start_server(self.primary, SERVICE_PORT, service_time=service_time)

    @property
    def service_addr(self) -> Tuple[IPAddress, int]:
        return (SERVICE_IP, SERVICE_PORT)

    @property
    def backup_host(self) -> Optional[Host]:
        return self.backup

    def crash_primary_at(self, time: float) -> None:
        self.crash_injector.crash_at(self.primary, time)

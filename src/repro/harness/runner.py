"""Run one workload on one scenario and collect the paper's metrics."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.apps.client import run_client
from repro.apps.workload import AppWorkload, RunResult
from repro.errors import ReproError
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.scenario import Scenario, TOPOLOGY_HUB
from repro.metrics import perf
from repro.sttcp.config import STTCPConfig
from repro.sttcp.manager import FailoverMetrics

#: The client starts this long after the service comes up.
CLIENT_START = 0.1

#: Crash the primary at this fraction of the failure-free run by default.
DEFAULT_CRASH_FRACTION = 0.5


@dataclasses.dataclass
class ExperimentRun:
    """One completed client run plus failover accounting."""

    result: RunResult
    failover: Optional[FailoverMetrics]
    scenario: Scenario

    @property
    def total_time(self) -> float:
        return self.result.total_time

    def require_clean(self) -> "ExperimentRun":
        """Raise unless the client completed and verified all content."""
        if self.result.error is not None:
            raise ReproError(f"client failed: {self.result.error}")
        if not self.result.verified:
            raise ReproError("client received corrupted data")
        return self


def run_workload(
    workload: AppWorkload,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = TOPOLOGY_HUB,
    sttcp: Optional[STTCPConfig] = None,
    crash_at: Optional[float] = None,
    with_logger: bool = False,
    service_time: Optional[float] = None,
    seed: int = 0,
    deadline: float = 3600.0,
    scenario: Optional[Scenario] = None,
) -> ExperimentRun:
    """Build a scenario, run one client session, return the metrics.

    ``crash_at`` is an absolute simulated time (client starts at
    ``CLIENT_START``); None means a failure-free run.
    """
    if scenario is None:
        scenario = Scenario(
            profile=profile,
            topology=topology,
            sttcp=sttcp,
            with_logger=with_logger,
            seed=seed,
        )
    if service_time is None:
        service_time = workload.service_time
    scenario.start_service(service_time)
    if crash_at is not None:
        scenario.crash_primary_at(crash_at)
    process_box = []

    def launch() -> None:
        process_box.append(run_client(scenario.client, scenario.service_addr, workload))

    launch_at = scenario.sim.now + CLIENT_START
    scenario.sim.schedule_at(launch_at, launch)
    scenario.sim.run(until=launch_at)
    if not process_box:  # pragma: no cover - the launch event just ran
        scenario.sim.step()
    try:
        result: RunResult = scenario.sim.run_until_complete(
            process_box[0], deadline=deadline
        )
    finally:
        perf.note_simulation(scenario.sim)
    failover = scenario.pair.failover_metrics() if scenario.pair is not None else None
    return ExperimentRun(result=result, failover=failover, scenario=scenario)


def measure_failover_time(
    workload: AppWorkload,
    sttcp: STTCPConfig,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = TOPOLOGY_HUB,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    with_logger: bool = False,
    seed: int = 0,
    deadline: float = 3600.0,
) -> dict:
    """The paper's failover metric (§6.2): run the application twice —
    without failure and with a mid-run primary crash — and report the
    difference in total time.
    """
    baseline = run_workload(
        workload, profile, topology, sttcp=sttcp, seed=seed, deadline=deadline
    ).require_clean()
    crash_time = CLIENT_START + crash_fraction * baseline.total_time
    failed = run_workload(
        workload,
        profile,
        topology,
        sttcp=sttcp,
        crash_at=crash_time,
        with_logger=with_logger,
        seed=seed,
        deadline=deadline + sttcp.detection_timeout() * 4 + 240.0,
    ).require_clean()
    return {
        "workload": workload.name,
        "no_failure_time": baseline.total_time,
        "failure_time": failed.total_time,
        "failover_time": failed.total_time - baseline.total_time,
        "detection_latency": failed.failover.detection_latency,
        "takeover_latency": failed.failover.takeover_latency,
        "max_gap": failed.result.max_gap,
        "crash_time": crash_time,
    }

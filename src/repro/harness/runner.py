"""Run one workload on one scenario and collect the paper's metrics."""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from repro.apps.client import run_client
from repro.apps.workload import AppWorkload, RunResult
from repro.errors import ReproError
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.scenario import Scenario, TOPOLOGY_HUB
from repro.metrics import perf
from repro.obs.recorder import FlightRecorder
from repro.obs.timeline import FailoverTimeline, TimelineCollector
from repro.sttcp.config import STTCPConfig
from repro.sttcp.manager import FailoverMetrics

#: The client starts this long after the service comes up.
CLIENT_START = 0.1

#: Crash the primary at this fraction of the failure-free run by default.
DEFAULT_CRASH_FRACTION = 0.5

#: When set to a directory, every run carries a flight recorder and red
#: runs (client error, corrupted data, simulation crash) dump their last
#: trace records there.  An env var rather than a parameter so process
#: pool workers inherit it without plumbing (CI sets it and uploads the
#: directory as an artifact on failure).
FLIGHT_DUMP_ENV = "REPRO_FLIGHT_DUMP"


@dataclasses.dataclass
class ExperimentRun:
    """One completed client run plus failover accounting."""

    result: RunResult
    failover: Optional[FailoverMetrics]
    scenario: Scenario
    #: Phase decomposition of the failover, when one was observed.
    timeline: Optional[FailoverTimeline] = None

    @property
    def total_time(self) -> float:
        return self.result.total_time

    def require_clean(self) -> "ExperimentRun":
        """Raise unless the client completed and verified all content."""
        if self.result.error is not None:
            raise ReproError(f"client failed: {self.result.error}")
        if not self.result.verified:
            raise ReproError("client received corrupted data")
        return self


def _dump_flight(
    flight: Optional[FlightRecorder], workload: AppWorkload, seed: int, reason: str
) -> None:
    directory = os.environ.get(FLIGHT_DUMP_ENV)
    if flight is None or not directory:
        return
    os.makedirs(directory, exist_ok=True)
    name = f"flight-{workload.name}-seed{seed}-pid{os.getpid()}.txt"
    flight.dump_to(os.path.join(directory, name), reason=reason)


def run_workload(
    workload: AppWorkload,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = TOPOLOGY_HUB,
    sttcp: Optional[STTCPConfig] = None,
    crash_at: Optional[float] = None,
    with_logger: bool = False,
    service_time: Optional[float] = None,
    seed: int = 0,
    deadline: float = 3600.0,
    scenario: Optional[Scenario] = None,
) -> ExperimentRun:
    """Build a scenario, run one client session, return the metrics.

    ``crash_at`` is an absolute simulated time (client starts at
    ``CLIENT_START``); None means a failure-free run.
    """
    if scenario is None:
        scenario = Scenario(
            profile=profile,
            topology=topology,
            sttcp=sttcp,
            with_logger=with_logger,
            seed=seed,
        )
    if service_time is None:
        service_time = workload.service_time
    scenario.start_service(service_time)
    if crash_at is not None:
        scenario.crash_primary_at(crash_at)
    process_box = []

    def launch() -> None:
        process_box.append(run_client(scenario.client, scenario.service_addr, workload))

    collector = TimelineCollector().attach(scenario.sim.trace)
    flight: Optional[FlightRecorder] = None
    if os.environ.get(FLIGHT_DUMP_ENV):
        flight = FlightRecorder()
        scenario.sim.trace.add_sink(flight)
    launch_at = scenario.sim.now + CLIENT_START
    scenario.sim.schedule_at(launch_at, launch)
    scenario.sim.run(until=launch_at)
    if not process_box:  # pragma: no cover - the launch event just ran
        scenario.sim.step()
    try:
        result: RunResult = scenario.sim.run_until_complete(
            process_box[0], deadline=deadline
        )
    except BaseException:
        _dump_flight(flight, workload, seed, "simulation crashed")
        raise
    finally:
        perf.note_simulation(scenario.sim)
        collector.detach()
        if flight is not None:
            scenario.sim.trace.remove_sink(flight)
    if result.error is not None or not result.verified:
        _dump_flight(
            flight, workload, seed, result.error or "client received corrupted data"
        )
    failover = scenario.pair.failover_metrics() if scenario.pair is not None else None
    return ExperimentRun(
        result=result,
        failover=failover,
        scenario=scenario,
        timeline=collector.reconstruct(),
    )


def measure_failover_time(
    workload: AppWorkload,
    sttcp: STTCPConfig,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = TOPOLOGY_HUB,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    with_logger: bool = False,
    seed: int = 0,
    deadline: float = 3600.0,
) -> dict:
    """The paper's failover metric (§6.2): run the application twice —
    without failure and with a mid-run primary crash — and report the
    difference in total time.
    """
    baseline = run_workload(
        workload, profile, topology, sttcp=sttcp, seed=seed, deadline=deadline
    ).require_clean()
    crash_time = CLIENT_START + crash_fraction * baseline.total_time
    failed = run_workload(
        workload,
        profile,
        topology,
        sttcp=sttcp,
        crash_at=crash_time,
        with_logger=with_logger,
        seed=seed,
        deadline=deadline + sttcp.detection_timeout() * 4 + 240.0,
    ).require_clean()
    return {
        "workload": workload.name,
        "no_failure_time": baseline.total_time,
        "failure_time": failed.total_time,
        "failover_time": failed.total_time - baseline.total_time,
        "detection_latency": failed.failover.detection_latency,
        "takeover_latency": failed.failover.takeover_latency,
        "max_gap": failed.result.max_gap,
        "crash_time": crash_time,
        "timeline": failed.timeline.summary() if failed.timeline else None,
    }

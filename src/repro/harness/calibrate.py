"""Network profiles calibrating the simulator to the paper's testbed (§6).

The paper's numbers (Table 1) imply, for the 2001-era hardware
(800 MHz Athlons, Linux 2.2.18, 10/100 hub):

* an echo exchange of ≈8.9 ms — dominated by end-host stack/scheduler
  latency (Linux 2.2 ran at HZ=100), not by wire time;
* bulk throughput of ≈12.5 Mb/s — *window-limited*: receive window ÷
  round-trip time, far below the 100 Mb/s wire rate.

``PAPER_TESTBED`` folds the end-host latency into the hub's one-way delay
(4.35 ms) and uses a 10-segment (14 600 B) receive window, giving:
echo exchange ≈ 8.8 ms, interactive exchange ≈ 19 ms, bulk ≈ 13 Mb/s —
within a few percent of Table 1 on all workloads.

``FAST_LAN`` is a low-latency profile for unit/integration tests where
wall-clock realism does not matter.
"""

from __future__ import annotations

import dataclasses

from repro.tcp.config import TCPConfig
from repro.tcp.constants import DEFAULT_MSS
from repro.util.units import mbps, ms, us


@dataclasses.dataclass(frozen=True)
class NetworkProfile:
    """Physical and stack parameters for a scenario."""

    name: str
    link_rate_bps: float
    #: One-way latency of the shared medium (wire + end-host stack cost).
    hub_delay: float
    #: Store-and-forward latency of the switch (switched topology).
    switch_delay: float
    #: Per-frame NIC receive processing (0 folds it into hub_delay).
    nic_processing_delay: float
    mss: int
    rcv_buffer: int
    snd_buffer: int

    def tcp_config(self) -> TCPConfig:
        return TCPConfig(
            mss=self.mss,
            rcv_buffer=self.rcv_buffer,
            snd_buffer=self.snd_buffer,
            timestamps=False,  # disabled in the paper's experiments (§6)
        )


#: Calibrated to the paper's experimental setup (§6, Table 1).
PAPER_TESTBED = NetworkProfile(
    name="paper-testbed",
    link_rate_bps=mbps(100),
    hub_delay=ms(4.35),
    switch_delay=us(10),
    nic_processing_delay=0.0,
    mss=DEFAULT_MSS,
    rcv_buffer=12 * DEFAULT_MSS,  # 17520 B window → ≈12.5 Mb/s bulk
    snd_buffer=32 * 1024,
)

#: Low-latency profile for tests: microsecond LAN, generous buffers.
FAST_LAN = NetworkProfile(
    name="fast-lan",
    link_rate_bps=mbps(100),
    hub_delay=us(50),
    switch_delay=us(5),
    nic_processing_delay=0.0,
    mss=DEFAULT_MSS,
    rcv_buffer=16 * 1024,
    snd_buffer=32 * 1024,
)


def expected_echo_exchange_time(profile: NetworkProfile) -> float:
    """Analytic estimate of one echo exchange (for calibration checks)."""
    request_wire = (150 + 40 + 18) * 8.0 / profile.link_rate_bps
    one_way = profile.hub_delay + request_wire + profile.nic_processing_delay
    return 2 * one_way


def expected_bulk_throughput(profile: NetworkProfile) -> float:
    """Analytic window-limited throughput estimate in bytes/second."""
    segment_wire = (profile.mss + 40 + 18) * 8.0 / profile.link_rate_bps
    rtt = 2 * profile.hub_delay + segment_wire + 2 * profile.nic_processing_delay
    return profile.rcv_buffer / rtt

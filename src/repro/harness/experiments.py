"""Every table and figure of the paper's evaluation, as runnable code.

Each function regenerates one artefact:

* :func:`table1` — failure-free total time, standard TCP vs ST-TCP across
  heartbeat intervals (Table 1).
* :func:`table2` — failover time for the same grid (Table 2).
* :func:`figure5` — Echo / Interactive total time vs HB interval, with
  and without failure (Figures 5a, 5b).
* :func:`figure6` — Bulk total time vs transfer size, with and without
  failure (Figure 6).
* :func:`ablation_sync` — the §4.3 acknowledgment-strategy sweep (A1).
* :func:`ablation_ftcp` — ST-TCP vs FT-TCP failover (A2).
* :func:`ablation_logger` — double-failure masking via the logger (A3).
* :func:`ablation_overhead` — UDP-channel traffic overhead (A4).

Scale: the paper's full grid (100 MB bulks, three repetitions) takes
minutes of wall clock; experiments accept an :class:`ExperimentScale` and
default to a reduced grid controlled by the ``REPRO_PAPER_SCALE`` /
``REPRO_SCALE`` environment variables.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.workload import (
    AppWorkload,
    bulk_workload,
    echo_workload,
    interactive_workload,
)
from repro.harness.calibrate import PAPER_TESTBED, NetworkProfile
from repro.harness.runner import (
    CLIENT_START,
    DEFAULT_CRASH_FRACTION,
    measure_failover_time,
    run_workload,
)
from repro.harness.tables import format_table
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB, MB

#: The paper's heartbeat-interval grid (Tables 1 and 2).
PAPER_HB_GRID: Tuple[float, ...] = (5.0, 1.0, 0.2, 0.05)

#: Denser sweep for the figures.
FIGURE_HB_SWEEP: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """How big to run the grid."""

    echo_exchanges: int
    interactive_exchanges: int
    bulk_sizes: Tuple[int, ...]
    repeats: int
    hb_grid: Tuple[float, ...] = PAPER_HB_GRID

    def workloads(self) -> List[AppWorkload]:
        apps = [
            echo_workload(self.echo_exchanges),
            interactive_workload(self.interactive_exchanges),
        ]
        apps.extend(bulk_workload(size) for size in self.bulk_sizes)
        return apps


#: The grid exactly as the paper ran it ("repeated at least three times").
PAPER_SCALE = ExperimentScale(
    echo_exchanges=100,
    interactive_exchanges=100,
    bulk_sizes=(1 * MB, 5 * MB, 20 * MB, 100 * MB),
    repeats=3,
)

#: Fast grid for benchmarks and CI.
QUICK_SCALE = ExperimentScale(
    echo_exchanges=30,
    interactive_exchanges=30,
    bulk_sizes=(256 * KB, 1 * MB),
    repeats=1,
    hb_grid=(1.0, 0.2, 0.05),
)


def default_scale() -> ExperimentScale:
    """Scale selected by environment: full paper grid, scaled, or quick."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        return PAPER_SCALE
    factor = float(os.environ.get("REPRO_SCALE", "1.0"))
    if factor >= 4.0:
        return PAPER_SCALE
    if factor <= 1.0:
        return QUICK_SCALE
    return ExperimentScale(
        echo_exchanges=int(30 * factor),
        interactive_exchanges=int(30 * factor),
        bulk_sizes=(int(256 * KB * factor), int(1 * MB * factor)),
        repeats=1,
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


# --------------------------------------------------------------------- Table 1
def table1(
    scale: Optional[ExperimentScale] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 100,
) -> List[Dict[str, object]]:
    """Failure-free comparison of standard TCP and ST-TCP (Table 1).

    Returns one record per protocol row with a column per workload.
    """
    scale = scale or default_scale()
    workloads = scale.workloads()
    records: List[Dict[str, object]] = []

    def run_row(label: str, sttcp: Optional[STTCPConfig]) -> None:
        record: Dict[str, object] = {"config": label}
        for workload in workloads:
            times = []
            for repeat in range(scale.repeats):
                run = run_workload(
                    workload,
                    profile=profile,
                    topology=topology,
                    sttcp=sttcp,
                    seed=base_seed + repeat,
                ).require_clean()
                times.append(run.total_time)
            record[workload.name] = _mean(times)
        records.append(record)

    run_row("Standard TCP", None)
    for hb in scale.hb_grid:
        run_row(f"ST-TCP {_hb_label(hb)} HB", STTCPConfig(hb_interval=hb))
    return records


# --------------------------------------------------------------------- Table 2
def table2(
    scale: Optional[ExperimentScale] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 200,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
) -> List[Dict[str, object]]:
    """Failover time across heartbeat intervals and workloads (Table 2)."""
    scale = scale or default_scale()
    workloads = scale.workloads()
    records: List[Dict[str, object]] = []
    for hb in scale.hb_grid:
        record: Dict[str, object] = {"config": f"ST-TCP {_hb_label(hb)} HB"}
        for workload in workloads:
            failovers = []
            for repeat in range(scale.repeats):
                sample = measure_failover_time(
                    workload,
                    STTCPConfig(hb_interval=hb),
                    profile=profile,
                    topology=topology,
                    crash_fraction=crash_fraction,
                    seed=base_seed + repeat,
                )
                failovers.append(sample["failover_time"])
            record[workload.name] = _mean(failovers)
        records.append(record)
    return records


# --------------------------------------------------------- Figures 5(a), 5(b)
def figure5(
    application: str = "echo",
    scale: Optional[ExperimentScale] = None,
    hb_sweep: Sequence[float] = FIGURE_HB_SWEEP,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 300,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
) -> List[Dict[str, float]]:
    """Total run time vs HB interval, with and without failure.

    ``application`` is ``"echo"`` (Figure 5a) or ``"interactive"`` (5b).
    Each point: {hb, no_failure_time, failure_time}.
    """
    scale = scale or default_scale()
    if application == "echo":
        workload = echo_workload(scale.echo_exchanges)
    elif application == "interactive":
        workload = interactive_workload(scale.interactive_exchanges)
    else:
        raise ValueError(f"figure5 covers echo/interactive, not {application!r}")
    points = []
    for index, hb in enumerate(hb_sweep):
        sample = measure_failover_time(
            workload,
            STTCPConfig(hb_interval=hb),
            profile=profile,
            topology=topology,
            crash_fraction=crash_fraction,
            seed=base_seed + index,
        )
        points.append(
            {
                "hb": hb,
                "no_failure_time": sample["no_failure_time"],
                "failure_time": sample["failure_time"],
                "failover_time": sample["failover_time"],
            }
        )
    return points


# ------------------------------------------------------------------- Figure 6
def figure6(
    scale: Optional[ExperimentScale] = None,
    hb_grid: Optional[Sequence[float]] = None,
    profile: NetworkProfile = PAPER_TESTBED,
    topology: str = "hub",
    base_seed: int = 400,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
) -> List[Dict[str, float]]:
    """Bulk-transfer total time vs size, with and without failure.

    One record per (hb, size): {hb, size, no_failure_time, failure_time}.
    """
    scale = scale or default_scale()
    hb_values = tuple(hb_grid) if hb_grid is not None else scale.hb_grid
    points = []
    for hb_index, hb in enumerate(hb_values):
        for size_index, size in enumerate(scale.bulk_sizes):
            sample = measure_failover_time(
                bulk_workload(size),
                STTCPConfig(hb_interval=hb),
                profile=profile,
                topology=topology,
                crash_fraction=crash_fraction,
                seed=base_seed + hb_index * 17 + size_index,
            )
            points.append(
                {
                    "hb": hb,
                    "size": size,
                    "no_failure_time": sample["no_failure_time"],
                    "failure_time": sample["failure_time"],
                    "failover_time": sample["failover_time"],
                }
            )
    return points


# ------------------------------------------------------------------ Ablations
def ablation_sync(
    upload_size: int = 1 * MB,
    sync_times: Sequence[float] = (0.05, 0.2, 1.0, 5.0),
    x_fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 500,
) -> List[Dict[str, float]]:
    """A1 — the §4.3 acknowledgment strategy: how SyncTime and X affect
    throughput, channel chatter, and second-buffer pressure.

    Uses an *upload* workload: the second receive buffer retains
    client→server bytes, so only uploads put pressure on it.
    """
    from repro.apps.workload import upload_workload

    records = []
    for sync_index, sync_time in enumerate(sync_times):
        for x_index, fraction in enumerate(x_fractions):
            config = STTCPConfig(
                hb_interval=0.05,
                sync_time=sync_time,
                ack_threshold_fraction=fraction,
            )
            run = run_workload(
                upload_workload(upload_size),
                profile=profile,
                sttcp=config,
                seed=base_seed + sync_index * 13 + x_index,
            ).require_clean()
            pair = run.scenario.pair
            assert pair is not None
            primary_states = list(pair.primary_engine._connections.values())
            retention_peak = max(
                (state.retention.peak_usage for state in primary_states), default=0
            )
            overflow_peak = max(
                (state.retention.overflow_byte_peak for state in primary_states),
                default=0,
            )
            records.append(
                {
                    "sync_time": sync_time,
                    "x_fraction": fraction,
                    "total_time": run.total_time,
                    "acks_sent": float(pair.backup_engine.acks_sent),
                    "retention_peak": float(retention_peak),
                    "overflow_peak": float(overflow_peak),
                }
            )
    return records


def ablation_ftcp(
    bulk_size: int = 1 * MB,
    hb_interval: float = 0.2,
    crash_fractions: Sequence[float] = (0.25, 0.5, 0.9),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 600,
) -> List[Dict[str, float]]:
    """A2 — ST-TCP vs FT-TCP failover: restart+replay cost grows with the
    connection history; ST-TCP's does not."""
    from repro.ftcp.baseline import FTCPConfig

    records = []
    for index, fraction in enumerate(crash_fractions):
        for label, config in (
            ("ST-TCP", STTCPConfig(hb_interval=hb_interval)),
            ("FT-TCP", FTCPConfig(hb_interval=hb_interval)),
        ):
            sample = measure_failover_time(
                bulk_workload(bulk_size),
                config,
                profile=profile,
                crash_fraction=fraction,
                seed=base_seed + index,
            )
            records.append(
                {
                    "protocol": label,
                    "crash_fraction": fraction,
                    "failover_time": sample["failover_time"],
                    "detection_latency": sample["detection_latency"],
                }
            )
    return records


def ablation_logger(
    upload_size: int = 512 * KB,
    outage: Tuple[float, float] = (0.15, 0.25),
    hb_interval: float = 0.05,
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 700,
) -> List[Dict[str, object]]:
    """A3 — double failure: the backup's tap blacks out, then the primary
    crashes before the UDP channel can repair the gap (§3.2).

    During the outage the primary keeps acknowledging the client's upload,
    so the client purges those bytes — after the crash they exist nowhere
    the backup can reach.  Without a logger the takeover is degraded and
    the client's connection eventually dies; with the logger the backup
    replays the hole and the upload completes, fully verified.
    """
    from repro.apps.workload import upload_workload
    from repro.errors import SimulationError
    from repro.faults.injection import add_tap_outage
    from repro.harness.scenario import Scenario

    records = []
    for use_logger in (False, True):
        config = STTCPConfig(hb_interval=hb_interval, use_logger=use_logger)
        scenario = Scenario(
            profile=profile,
            sttcp=config,
            with_logger=use_logger,
            seed=base_seed,
        )
        backup_nic = scenario.backup.nics[0]
        add_tap_outage(backup_nic, *outage)
        # Crash inside the outage so the channel cannot repair the gap.
        crash_time = outage[1] - 0.001
        try:
            run = run_workload(
                upload_workload(upload_size),
                scenario=scenario,
                crash_at=crash_time,
                seed=base_seed,
                deadline=2000.0,
            )
            completed = run.result.error is None
            verified = run.result.verified
            total_time = run.total_time
        except SimulationError:
            completed = False
            verified = False
            total_time = float("inf")
        backup_engine = scenario.pair.backup_engine
        records.append(
            {
                "logger": use_logger,
                "completed": completed,
                "verified": verified,
                "degraded_connections": len(backup_engine.degraded_connections),
                "logger_bytes_recovered": backup_engine.logger_bytes_recovered,
                "total_time": total_time,
            }
        )
    return records


def ablation_overhead(
    upload_size: int = 1 * MB,
    second_buffers: Sequence[int] = (4 * KB, 8 * KB, 16 * KB, 32 * KB),
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 800,
) -> List[Dict[str, float]]:
    """A4 — UDP-channel overhead as a fraction of client traffic (§4.3).

    The paper's arithmetic: a 4 KB second buffer gives X = 3 KB, one
    128-byte ack per 3 KB of client data → 4.17% added LAN traffic in
    the worst case.  This reproduces that number and its scaling with
    the second-buffer size, on a real upload stream.
    """
    from repro.apps.workload import upload_workload

    records = []
    for index, second_buffer in enumerate(second_buffers):
        config = STTCPConfig(
            hb_interval=0.05,
            second_buffer_size=second_buffer,
            ack_threshold_fraction=0.75,
        )
        run = run_workload(
            upload_workload(upload_size),
            profile=profile,
            sttcp=config,
            seed=base_seed + index,
        ).require_clean()
        pair = run.scenario.pair
        assert pair is not None
        backup = pair.backup_engine
        # One 128 B ack plus the primary's 128 B reply per BackupAck.
        channel_bytes = (backup.acks_sent + pair.primary_engine.acks_received) * 128
        client_bytes = run.result.bytes_sent
        records.append(
            {
                "second_buffer": float(second_buffer),
                "x_bytes": float(second_buffer * 3 // 4),
                "acks_sent": float(backup.acks_sent),
                "channel_bytes": float(channel_bytes),
                "client_bytes": float(client_bytes),
                "overhead_percent": 100.0 * channel_bytes / client_bytes,
            }
        )
    return records


def ablation_detection(
    thresholds: Sequence[int] = (1, 2, 3, 5),
    channel_loss: float = 0.30,
    observation_time: float = 3.0,
    hb_interval: float = 0.05,
    profile: NetworkProfile = PAPER_TESTBED,
    base_seed: int = 900,
) -> List[Dict[str, float]]:
    """A5 — the heartbeat miss threshold (§4.4/§6.2 fix it at 3).

    Two costs pull in opposite directions: a *small* threshold detects
    real crashes faster but wrongly suspects a healthy primary under
    heartbeat loss (here: 30% random loss on the UDP channel only); a
    *large* threshold is robust but slow.  STONITH keeps wrong suspicions
    *safe* (§3.2) — this measures how often they happen and what they cost.
    """
    from repro.errors import SimulationError
    from repro.faults.injection import lossy_channel
    from repro.harness.scenario import Scenario

    records = []
    for index, threshold in enumerate(thresholds):
        config = STTCPConfig(hb_interval=hb_interval, hb_miss_threshold=threshold)
        # (a) false-suspicion probe: healthy primary, jittery channel.
        scenario = Scenario(profile=profile, sttcp=config, seed=base_seed + index)
        lossy_channel(
            scenario.hub,
            config.channel_port,
            scenario.sim.random.stream("channel-jitter"),
            channel_loss,
        )
        scenario.start_service()
        scenario.sim.run(until=observation_time)
        wrongly_suspected = scenario.pair.failed_over
        # The service must survive a wrong suspicion transparently.
        probe = run_workload(
            echo_workload(10),
            scenario=scenario,
            seed=base_seed + index,
            deadline=120.0,
        )
        service_ok = probe.result.error is None and probe.result.verified
        # (b) detection latency on a real crash (clean channel).
        sample = measure_failover_time(
            echo_workload(30),
            STTCPConfig(hb_interval=hb_interval, hb_miss_threshold=threshold),
            profile=profile,
            seed=base_seed + index,
        )
        records.append(
            {
                "threshold": float(threshold),
                "wrong_suspicion": bool(wrongly_suspected),
                "service_ok_after": bool(service_ok),
                "detection_latency": sample["detection_latency"],
                "failover_time": sample["failover_time"],
            }
        )
    return records


# ------------------------------------------------------------------ rendering
def _hb_label(hb: float) -> str:
    if hb >= 1.0:
        return f"{hb:g}s"
    return f"{hb * 1000:g}ms"


def format_table1(records: List[Dict[str, object]]) -> str:
    columns = [key for key in records[0] if key != "config"]
    rows = [[record["config"]] + [record[col] for col in columns] for record in records]
    return format_table(
        ["Configuration"] + columns,
        rows,
        title="Table 1: average total time (s) without failure",
    )


def format_table2(records: List[Dict[str, object]]) -> str:
    columns = [key for key in records[0] if key != "config"]
    rows = [[record["config"]] + [record[col] for col in columns] for record in records]
    return format_table(
        ["Configuration"] + columns,
        rows,
        title="Table 2: failover time (s)",
    )


def format_figure5(points: List[Dict[str, float]], application: str) -> str:
    rows = [
        [_hb_label(p["hb"]), p["no_failure_time"], p["failure_time"], p["failover_time"]]
        for p in points
    ]
    return format_table(
        ["HB interval", "no failure (s)", "with failure (s)", "failover (s)"],
        rows,
        title=f"Figure 5 ({application}): total time vs heartbeat interval",
    )


def format_figure6(points: List[Dict[str, float]]) -> str:
    rows = [
        [
            _hb_label(p["hb"]),
            f"{p['size'] // KB} KB" if p["size"] < MB else f"{p['size'] // MB} MB",
            p["no_failure_time"],
            p["failure_time"],
        ]
        for p in points
    ]
    return format_table(
        ["HB interval", "size", "no failure (s)", "with failure (s)"],
        rows,
        title="Figure 6: bulk transfer with and without failover",
    )

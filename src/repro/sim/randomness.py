"""Seeded random-number streams for reproducible simulations.

Every stochastic component (loss models, jitter, ISN generation, crash
schedules) draws from a named stream derived from the simulation's master
seed, so adding a new consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, deterministically seeded RNGs."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the RNG for ``name``.

        The per-stream seed is a stable hash of ``(master_seed, name)`` so
        the same name always yields the same sequence for a given master
        seed, independent of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Reset the master seed and drop all existing streams."""
        self.master_seed = int(master_seed)
        self._streams.clear()

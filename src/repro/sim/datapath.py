"""The ``REPRO_DATAPATH`` switch selecting the hot-datapath style.

Mirrors ``REPRO_SCHED_BACKEND``: two arms behind one API, proven
bit-identical by differential tests.

* ``batch`` (the default) — slot-drain event dispatch, pooled zero-copy
  segment payloads, and precomputed per-connection wire headers.  Every
  observable (dispatch order, wire bytes, store hashes, drill reports)
  is identical to the reference arm; only allocation and per-event
  overhead change.
* ``object`` — the pure per-object reference path: per-event
  ``run_next`` dispatch, fresh-bytes payload copies, full header packing
  per segment.  This is the oracle the differential harness
  (``tests/harness/test_datapath_differential.py``) compares against.

Components read the switch **at construction time** (scheduler,
send-buffer ingest, output engine, pcap writer, backup tap), so tests
flip it by setting the environment variable before building a
:class:`~repro.sim.simulator.Simulator` — never mid-run.

This module lives in ``repro.sim`` (the bottom layer) so every consumer
— ``repro.net``, ``repro.tcp``, ``repro.sttcp`` — can import it without
bending the layering rules in ``tools/check_import_cycles.py``.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError

#: Environment override for the datapath arm: ``batch`` (default) or
#: ``object`` (the bit-exact per-object reference).
DATAPATH_ENV = "REPRO_DATAPATH"

_MODES = ("batch", "object")


def datapath_mode() -> str:
    """The selected datapath arm: ``"batch"`` or ``"object"``."""
    mode = os.environ.get(DATAPATH_ENV, "batch")
    if mode not in _MODES:
        raise SimulationError(
            f"{DATAPATH_ENV}={mode!r} is not a datapath arm; expected one of {_MODES}"
        )
    return mode


def batch_enabled() -> bool:
    """True when the batch datapath is selected (the default)."""
    return datapath_mode() == "batch"

"""Discrete-event simulation kernel.

Public surface:

* :class:`Simulator` — clock, scheduler, process spawner.
* :class:`SimEvent`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` —
  waitable events for coroutine processes.
* :class:`Process`, :class:`Semaphore`, :class:`Channel` — process layer.
* :class:`Tracer` sinks for structured tracing.
"""

from repro.sim.events import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    EventHandle,
    SimEvent,
    Timeout,
)
from repro.sim.process import Channel, Process, Semaphore
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.trace import PrintSink, RecordingSink, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "EventHandle",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "PrintSink",
    "Process",
    "RandomStreams",
    "RecordingSink",
    "Semaphore",
    "SimEvent",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]

"""Lightweight tracing for simulations.

Components emit structured trace records through the simulator's
:class:`Tracer`.  Tracing is off by default and costs a single attribute
check per emit when disabled, so it can be left in hot paths.  Hot paths
that must build kwargs (segment summaries, formatted addresses) should
guard with :meth:`Tracer.enabled_for` so the whole call is skipped when
no sink subscribed to the category::

    if self.sim.trace.enabled_for("tcp"):
        self.sim.trace.emit(self.sim.now, "tcp", "send", seg=segment)

Records are ``(time, category, event, fields)`` tuples; sinks decide how
to render or store them.  Tests use :class:`RecordingSink` to assert on
protocol behaviour without reaching into private state.

**Spans.**  Multi-event episodes (a handshake, a retransmission burst, a
failover) are traced as *span* begin/end pairs: two ordinary records
whose fields carry the reserved keys ``span`` (``"B"``/``"E"``), ``sid``
(the span id) and optionally ``psid`` (the parent span id).  Sinks that
do not care see two normal records; :mod:`repro.obs.spans` reassembles
them into timed units post-hoc, and :mod:`repro.obs.export` renders them
as Chrome trace-event slices.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    category: str
    event: str
    fields: Dict[str, Any]


Sink = Callable[[TraceRecord], None]

#: Reserved field keys of the span protocol (see module docstring).
SPAN_KEY = "span"
SPAN_ID_KEY = "sid"
SPAN_PARENT_KEY = "psid"
SPAN_BEGIN = "B"
SPAN_END = "E"

#: Reserved field key of the causal-flow protocol: records (usually span
#: begins) carrying the same ``flow`` id form one causal chain even when
#: they were emitted by different hosts — a cluster takeover's
#: detection → fence → election → resync → resume becomes a single
#: traversable graph (:meth:`repro.obs.spans.SpanSet.flows`), exported
#: as Chrome trace-event flow arrows by :mod:`repro.obs.export`.
FLOW_KEY = "flow"


class Tracer:
    """Dispatches trace records to registered sinks, filtered by category.

    The fast-path filter is the union of every sink's categories (or
    ``None`` while any wildcard sink is registered); it is rebuilt from
    the per-sink bookkeeping whenever a sink is removed, so removing a
    filtered sink drops its categories and removing the last wildcard
    sink re-tightens the filter.
    """

    __slots__ = (
        "_sinks",
        "_sink_categories",
        "enabled",
        "_category_filter",
        "_next_span_id",
        "_next_flow_id",
        "current_flow",
    )

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self._sink_categories: List[Optional[frozenset]] = []
        self.enabled = False
        self._category_filter: Optional[set] = None
        self._next_span_id = 0
        self._next_flow_id = 0
        #: Dynamic causal context: while an event handler participating
        #: in a causal chain runs, it sets this to the chain's flow id so
        #: downstream emitters (the arbiter serving a fence request, the
        #: election triggered inside a takeover) can tag their own spans
        #: without every call signature threading the id through.
        self.current_flow: Optional[int] = None

    def add_sink(self, sink: Sink, categories: Optional[List[str]] = None) -> None:
        """Register a sink; enables tracing as a side effect."""
        self._sinks.append(sink)
        self._sink_categories.append(
            None if categories is None else frozenset(categories)
        )
        self.enabled = True
        self._rebuild_filter()

    def remove_sink(self, sink: Sink) -> None:
        try:
            index = self._sinks.index(sink)
        except ValueError:
            return
        del self._sinks[index]
        del self._sink_categories[index]
        self.enabled = bool(self._sinks)
        self._rebuild_filter()

    def _rebuild_filter(self) -> None:
        if not self._sinks or any(c is None for c in self._sink_categories):
            self._category_filter = None  # a wildcard sink sees everything
        else:
            union: set = set()
            for categories in self._sink_categories:
                union |= categories  # type: ignore[arg-type]
            self._category_filter = union

    def enabled_for(self, category: str) -> bool:
        """True when at least one registered sink wants ``category``.

        The guard for hot paths whose *kwargs* are expensive to build:
        checking here first skips the segment summary / address
        formatting entirely when nobody is listening.
        """
        if not self.enabled:
            return False
        category_filter = self._category_filter
        return category_filter is None or category in category_filter

    def emit(self, time: float, category: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._category_filter is not None and category not in self._category_filter:
            return
        # The union filter above is only the fast path; each sink still
        # sees exclusively its own categories (a sink registered for
        # ["tcp"] must not receive "link" records merely because another
        # sink subscribed to them).  The record is built lazily, on the
        # first sink that matches.
        record: Optional[TraceRecord] = None
        for sink, categories in zip(self._sinks, self._sink_categories):
            if categories is None or category in categories:
                if record is None:
                    record = TraceRecord(time, category, event, fields)
                sink(record)

    # Spans -----------------------------------------------------------------
    def begin_span(
        self,
        time: float,
        category: str,
        name: str,
        parent: Optional[int] = None,
        **fields: Any,
    ) -> int:
        """Open a span; returns its id (pass to :meth:`end_span`).

        Ids are allocated from a per-tracer counter, so a deterministic
        simulation produces identical span ids run to run.
        """
        self._next_span_id += 1
        sid = self._next_span_id
        fields[SPAN_KEY] = SPAN_BEGIN
        fields[SPAN_ID_KEY] = sid
        if parent is not None:
            fields[SPAN_PARENT_KEY] = parent
        self.emit(time, category, name, **fields)
        return sid

    def end_span(
        self, time: float, category: str, name: str, sid: int, **fields: Any
    ) -> None:
        """Close the span ``sid`` (a :meth:`begin_span` return value)."""
        fields[SPAN_KEY] = SPAN_END
        fields[SPAN_ID_KEY] = sid
        self.emit(time, category, name, **fields)

    # Causal flows ----------------------------------------------------------
    def new_flow(self) -> int:
        """Allocate a causal-chain id (deterministic per-tracer counter).

        Emitters include it as the reserved ``flow`` field on the spans
        that form the chain; intermediate hops read :attr:`current_flow`
        instead of threading the id through call signatures.
        """
        self._next_flow_id += 1
        return self._next_flow_id


class RecordingSink:
    """Collects trace records into a list (for tests and debugging)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def of_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def of_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()


#: Rendered field values longer than this are truncated with an ellipsis
#: so a long payload repr cannot wrap a drill report or flight dump.
MAX_FIELD_WIDTH = 60


def format_field(value: Any) -> str:
    """Canonical rendering of one trace field value.

    * TCP segments render through :meth:`TCPSegment.summary` — the same
      ``flags seq:end(len) ack win`` format tcpdump and the drill
      diagnostics use, so a segment reads identically everywhere;
    * floats use ``%g`` (no ``0.30000000000000004`` noise);
    * bytes use ``repr`` (they are payload, not text);
    * everything is capped at :data:`MAX_FIELD_WIDTH` characters.
    """
    # Duck-typed so the sim layer does not import the tcp layer: only
    # TCPSegment carries both of these methods.
    if hasattr(value, "flag_string") and hasattr(value, "summary"):
        text = value.summary()
    elif isinstance(value, float):
        text = f"{value:g}"
    elif isinstance(value, (bytes, bytearray)):
        text = repr(value)
    else:
        text = str(value)
    if len(text) > MAX_FIELD_WIDTH:
        text = text[: MAX_FIELD_WIDTH - 1] + "…"
    return text


def format_record(record: TraceRecord, prefix: str = "") -> str:
    """One canonical line per record, shared by :class:`PrintSink` and
    the flight recorder so dumps and live output read the same."""
    fields = " ".join(
        f"{key}={format_field(value)}" for key, value in record.fields.items()
    )
    return (
        f"{prefix}[{record.time:12.6f}] {record.category}/{record.event}"
        + (f" {fields}" if fields else "")
    )


class PrintSink:
    """Renders trace records to stdout; handy in examples."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix

    def __call__(self, record: TraceRecord) -> None:
        print(format_record(record, prefix=self.prefix))

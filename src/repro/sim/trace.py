"""Lightweight tracing for simulations.

Components emit structured trace records through the simulator's
:class:`Tracer`.  Tracing is off by default and costs a single attribute
check per emit when disabled, so it can be left in hot paths.

Records are ``(time, category, event, fields)`` tuples; sinks decide how to
render or store them.  Tests use :class:`RecordingSink` to assert on
protocol behaviour without reaching into private state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    time: float
    category: str
    event: str
    fields: Dict[str, Any]


Sink = Callable[[TraceRecord], None]


class Tracer:
    """Dispatches trace records to registered sinks, filtered by category.

    The fast-path filter is the union of every sink's categories (or
    ``None`` while any wildcard sink is registered); it is rebuilt from
    the per-sink bookkeeping whenever a sink is removed, so removing a
    filtered sink drops its categories and removing the last wildcard
    sink re-tightens the filter.
    """

    __slots__ = ("_sinks", "_sink_categories", "enabled", "_category_filter")

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self._sink_categories: List[Optional[frozenset]] = []
        self.enabled = False
        self._category_filter: Optional[set] = None

    def add_sink(self, sink: Sink, categories: Optional[List[str]] = None) -> None:
        """Register a sink; enables tracing as a side effect."""
        self._sinks.append(sink)
        self._sink_categories.append(
            None if categories is None else frozenset(categories)
        )
        self.enabled = True
        self._rebuild_filter()

    def remove_sink(self, sink: Sink) -> None:
        try:
            index = self._sinks.index(sink)
        except ValueError:
            return
        del self._sinks[index]
        del self._sink_categories[index]
        self.enabled = bool(self._sinks)
        self._rebuild_filter()

    def _rebuild_filter(self) -> None:
        if not self._sinks or any(c is None for c in self._sink_categories):
            self._category_filter = None  # a wildcard sink sees everything
        else:
            union: set = set()
            for categories in self._sink_categories:
                union |= categories  # type: ignore[arg-type]
            self._category_filter = union

    def emit(self, time: float, category: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._category_filter is not None and category not in self._category_filter:
            return
        record = TraceRecord(time, category, event, fields)
        # The union filter above is only the fast path; each sink still
        # sees exclusively its own categories (a sink registered for
        # ["tcp"] must not receive "link" records merely because another
        # sink subscribed to them).
        for sink, categories in zip(self._sinks, self._sink_categories):
            if categories is None or category in categories:
                sink(record)


class RecordingSink:
    """Collects trace records into a list (for tests and debugging)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def of_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def of_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()


class PrintSink:
    """Renders trace records to stdout; handy in examples."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix

    def __call__(self, record: TraceRecord) -> None:
        fields = " ".join(f"{key}={value}" for key, value in record.fields.items())
        print(
            f"{self.prefix}[{record.time:12.6f}] {record.category}/{record.event} {fields}"
        )

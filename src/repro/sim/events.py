"""Event primitives for the discrete-event kernel.

Two kinds of objects live here:

* :class:`EventHandle` — the token returned by ``Simulator.schedule`` which
  allows a pending callback to be cancelled or rescheduled.
* :class:`SimEvent` — a waitable, one-shot event in the style of SimPy.
  Coroutine processes ``yield`` a :class:`SimEvent` to suspend until the
  event is triggered with :meth:`SimEvent.succeed` or :meth:`SimEvent.fail`.
"""

from __future__ import annotations

import functools
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

#: Tie-break priorities for events scheduled at the same simulated instant.
#: Lower values run first.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_handle_ids = itertools.count()


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Instances are created by the scheduler; user code only cancels them.
    Cancellation is O(1): the handle is flagged and skipped when popped.
    The scheduler keeps a back-reference (``_sched``) while the handle is
    queued so cancellation can maintain the O(1) live-entry counters, and
    ``_tick`` records which backend holds it (a timing-wheel tick, or -1
    for the heap).  Handles are recycled through the scheduler's free list
    once they have fired and no outside reference remains.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled", "_sched", "_tick")

    def __init__(
        self,
        time: float,
        priority: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_handle_ids)
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._sched: Any = None
        self._tick = -1

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references eagerly so cancelled timers do not pin payloads
        # (a retransmit timer can capture an entire segment).
        self.callback = _noop
        self.args = ()
        sched = self._sched
        if sched is not None:
            self._sched = None
            sched._on_cancel(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # Heap ordering -------------------------------------------------------
    def __lt__(self, other: "EventHandle") -> bool:
        # Direct field comparisons: this runs O(log n) times per heap
        # operation, and building two tuples per call dominated the old
        # scheduler's profile.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"


def _noop(*_args: Any) -> None:
    return None


class SimEvent:
    """A one-shot waitable event.

    A :class:`SimEvent` starts *pending*.  It is triggered exactly once via
    :meth:`succeed` or :meth:`fail`; triggering twice raises
    :class:`SimulationError`.  Processes that yielded the event are resumed
    by the kernel in FIFO order with the event's value (or the failure
    exception raised inside them).

    The class is deliberately independent of the scheduler: triggering only
    records the outcome and notifies subscribed callbacks; the process layer
    turns those callbacks into coroutine resumptions.
    """

    __slots__ = ("sim", "_value", "_exc", "_done", "_callbacks", "name")

    def __init__(self, sim: "Any", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._done = False
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    # Introspection -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._done

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._done and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises the failure exception for failed events."""
        if not self._done:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # Triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        """Mark the event successful and wake all waiters."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Mark the event failed; waiters will see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._trigger(None, exc)
        return self

    def _trigger(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._done = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # Subscription --------------------------------------------------------
    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` when triggered (immediately if already)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Remove a previously added callback if still subscribed."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self._done:
            state = "ok" if self._exc is None else f"failed({self._exc!r})"
        return f"<SimEvent {self.name!r} {state}>"


class Timeout(SimEvent):
    """A :class:`SimEvent` that succeeds after a fixed simulated delay.

    Created via ``sim.timeout(delay, value)``; scheduling happens there so
    that this class stays a plain value object.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: Any, delay: float, name: str = "timeout") -> None:
        super().__init__(sim, name)
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.delay = delay


class AnyOf(SimEvent):
    """Succeeds when the first of several events triggers.

    The value is the ``(index, event)`` pair of the first event to trigger.
    If the winning event failed, this event fails with the same exception.
    Remaining events keep their own lifecycle; their callbacks are released
    so they do not resume anyone through this combinator twice.
    """

    __slots__ = ("events", "_child_callbacks")

    def __init__(self, sim: Any, events: List[SimEvent]) -> None:
        super().__init__(sim, "any_of")
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        self.events = list(events)
        # Each child gets its own callback closure carrying its index, so
        # completion does not pay an O(n) ``list.index`` scan per trigger.
        self._child_callbacks: List[Callable[[SimEvent], None]] = []
        for index, event in enumerate(self.events):
            callback = functools.partial(self._child_done, index)
            self._child_callbacks.append(callback)
            event.add_callback(callback)

    def _child_done(self, index: int, event: SimEvent) -> None:
        if self.triggered:
            return
        for other, callback in zip(self.events, self._child_callbacks):
            if other is not event:
                other.discard_callback(callback)
        if event.ok:
            self.succeed((index, event))
        else:
            self.fail(event.exception)  # type: ignore[arg-type]


class AllOf(SimEvent):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails.  The success value is the list of
    child values in the order the events were given.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: Any, events: List[SimEvent]) -> None:
        super().__init__(sim, "all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])

"""The event queue driving the discrete-event simulation.

Two backends cooperate behind one ``schedule_at`` API, selected per call:

* a **hierarchical timing wheel** (Varghese–Lauck) for the short-horizon
  timer band.  TCP workloads are overwhelmingly timer workloads — most
  retransmission timers are cancelled by an ACK long before firing — and a
  wheel makes both insert and cancelled-entry disposal O(1) (a flag check
  when the slot is opened) instead of O(log n) heap percolation per pop;
* a **binary heap** of :class:`~repro.sim.events.EventHandle` objects for
  events beyond the wheel horizon, ordered by ``(time, priority, seq)``.
  Cancelled handles are lazily discarded, and the heap is compacted when
  the *dead fraction* exceeds one half (never based on raw length alone).

Both backends dispatch in exactly the same ``(time, priority, seq)`` order
— the seq tie-break is a per-scheduler counter assigned at schedule time —
so a run is bit-identical whichever backend each event landed in.  The
differential tests in ``tests/sim/test_timing_wheel.py`` and the grid-hash
test in ``tests/harness/test_backend_differential.py`` enforce this.

Handles are recycled through a bounded free list once they have fired (or
were popped cancelled) and no outside reference remains — verified with
``sys.getrefcount`` so a caller-retained handle is never reused under it.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from operator import attrgetter
from sys import getrefcount
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_NORMAL, EventHandle

_sort_key = attrgetter("time", "priority", "seq")

#: Environment override for the queue backend: ``heap`` disables the
#: timing wheel (everything goes through the binary heap).  Used by the
#: differential tests to prove the two backends order identically.
BACKEND_ENV = "REPRO_SCHED_BACKEND"


class TimingWheel:
    """Hierarchical timing wheel for the near-future event band.

    Three levels of 256/256/64 slots at ``resolution`` seconds per tick
    give a horizon of ``2**22`` ticks (≈7 minutes at the default 100 µs
    resolution).  Slot membership is by absolute tick (``floor(time /
    resolution)``, computed once at insert); events cascade down a level
    whenever the cursor crosses that level's slot boundary.

    Within a slot, events are sorted by ``(time, priority, seq)`` when the
    slot is opened, and late arrivals for the open slot (or for ticks the
    cursor already passed — possible when the cursor ran ahead through
    empty slots) are bisect-inserted into the unconsumed tail of the ready
    list, so dispatch order is identical to a single global heap.
    """

    __slots__ = (
        "resolution",
        "_inv_resolution",
        "_levels",
        "_counts",
        "_cur_tick",
        "_ready",
        "_ready_pos",
        "live",
    )

    #: Slot counts per level (level 0 is the finest).
    LEVEL_SLOTS = (256, 256, 64)
    #: Tick span covered by one slot of each level.
    _SPAN0 = 256
    _SPAN1 = 256 * 256
    #: Total horizon in ticks; events farther out go to the heap.
    HORIZON_TICKS = 256 * 256 * 64

    def __init__(self, resolution: float) -> None:
        if resolution <= 0:
            raise SimulationError(f"wheel resolution must be positive, got {resolution}")
        self.resolution = resolution
        self._inv_resolution = 1.0 / resolution
        self._levels: List[List[List[EventHandle]]] = [
            [[] for _ in range(slots)] for slots in self.LEVEL_SLOTS
        ]
        self._counts = [0, 0, 0]  # entries per level, including cancelled
        self._cur_tick = 0
        self._ready: List[Optional[EventHandle]] = []
        self._ready_pos = 0
        self.live = 0  # non-cancelled entries anywhere in the wheel

    def tick_for(self, time: float) -> int:
        """Slot tick for an absolute time (monotonic in ``time``)."""
        return int(time * self._inv_resolution)

    def sync_if_empty(self, now_tick: int) -> None:
        """Fast-forward the cursor over a fully-drained wheel.

        Keeps insert deltas small after long heap-only stretches; only
        legal when no live entry remains (stale cancelled entries are
        harmless — every dispatch path checks the cancelled flag).
        """
        if self.live == 0 and now_tick > self._cur_tick:
            self._cur_tick = now_tick
            self._ready = []
            self._ready_pos = 0

    def insert(self, handle: EventHandle, tick: int) -> None:
        """File a handle under its tick; caller guarantees the horizon."""
        delta = tick - self._cur_tick
        if delta <= 0:
            # The cursor already passed (or sits on) this tick: merge into
            # the sorted unconsumed tail of the ready list.
            insort(self._ready, handle, lo=self._ready_pos, key=_sort_key)
        elif delta < self._SPAN0:
            self._levels[0][tick & 255].append(handle)
            self._counts[0] += 1
        elif delta < self._SPAN1:
            self._levels[1][(tick >> 8) & 255].append(handle)
            self._counts[1] += 1
        else:
            self._levels[2][(tick >> 16) & 63].append(handle)
            self._counts[2] += 1
        self.live += 1

    def peek(self) -> Optional[EventHandle]:
        """Earliest live entry, advancing the cursor as needed."""
        ready = self._ready
        pos = self._ready_pos
        size = len(ready)
        while pos < size:
            head = ready[pos]
            if head is not None and not head._cancelled:
                self._ready_pos = pos
                return head
            pos += 1
        self._ready_pos = 0
        ready.clear()
        if self.live == 0:
            return None
        return self._advance()

    def pop(self) -> EventHandle:
        """Remove and return the entry :meth:`peek` just found."""
        pos = self._ready_pos
        handle = self._ready[pos]
        self._ready[pos] = None  # drop the list's reference for recycling
        self._ready_pos = pos + 1
        self.live -= 1
        return handle  # type: ignore[return-value]

    def _advance(self) -> EventHandle:
        """Walk the cursor forward to the next slot with a live entry."""
        counts = self._counts
        level0 = self._levels[0]
        cur = self._cur_tick
        # Safety bound: one full horizon plus one wrap of cascades.
        limit = cur + self.HORIZON_TICKS + self._SPAN1
        while cur < limit:
            if counts[0] == 0:
                # Jump empty fine-grained spans in one step.
                if counts[1] == 0 and counts[2] == 0:
                    cur = (((cur >> 16) + 1) << 16) - 1
                else:
                    cur = (((cur >> 8) + 1) << 8) - 1
            cur += 1
            if cur & 255 == 0:
                self._cur_tick = cur
                if cur & 65535 == 0:
                    self._cascade(2, cur)
                self._cascade(1, cur)
            if counts[0]:
                slot = level0[cur & 255]
                if slot:
                    level0[cur & 255] = []
                    counts[0] -= len(slot)
                    batch: List[Optional[EventHandle]] = [
                        handle for handle in slot if not handle._cancelled
                    ]
                    if batch:
                        batch.sort(key=_sort_key)
                        self._ready = batch
                        self._ready_pos = 0
                        self._cur_tick = cur
                        return batch[0]  # type: ignore[return-value]
        raise SimulationError(
            "timing wheel inconsistency: live counter positive but no entry found"
        )

    def _cascade(self, level: int, cur: int) -> None:
        """Redistribute one coarse slot into the finer levels."""
        if level == 2:
            index = (cur >> 16) & 63
        else:
            index = (cur >> 8) & 255
        slot = self._levels[level][index]
        if not slot:
            return
        self._levels[level][index] = []
        counts = self._counts
        counts[level] -= len(slot)
        levels = self._levels
        for handle in slot:
            if handle._cancelled:
                continue
            tick = handle._tick
            delta = tick - cur
            if delta < self._SPAN0:
                levels[0][tick & 255].append(handle)
                counts[0] += 1
            else:
                levels[1][(tick >> 8) & 255].append(handle)
                counts[1] += 1


class Scheduler:
    """A time-ordered queue of pending callbacks (wheel + heap)."""

    __slots__ = ("_heap", "_wheel", "_now", "_executed", "_heap_live", "_seq", "_free")

    #: Heap compaction floor: below this length, dead entries are cheap
    #: enough to keep regardless of fraction.
    GC_BASE_THRESHOLD = 4096

    #: Default wheel tick in seconds.  100 µs splits the paper's testbed
    #: timescales cleanly: frame times land a handful per slot, while TCP
    #: timers (ms–s) stay well inside the ~7-minute horizon.
    WHEEL_RESOLUTION = 1e-4

    #: Recycled EventHandle pool cap.
    FREE_LIST_MAX = 8192

    def __init__(
        self,
        wheel: Optional[bool] = None,
        wheel_resolution: float = WHEEL_RESOLUTION,
    ) -> None:
        self._heap: List[EventHandle] = []
        if wheel is None:
            wheel = os.environ.get(BACKEND_ENV, "wheel") != "heap"
        self._wheel: Optional[TimingWheel] = (
            TimingWheel(wheel_resolution) if wheel else None
        )
        self._now = 0.0
        self._executed = 0
        self._heap_live = 0
        self._seq = 0
        self._free: List[EventHandle] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed_count(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) entries in the queue — O(1)."""
        wheel = self._wheel
        return self._heap_live + (wheel.live if wheel is not None else 0)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, already at t={self._now:.9f}"
            )
        return self._push(time, callback, args, priority)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Relative-delay fast path: skips the ``time < now`` guard.

        Callers must guarantee ``delay >= 0`` (the :class:`Simulator`
        wrappers either validate it once or hold it by construction).
        """
        return self._push(self._now + delay, callback, args, priority)

    def _push(
        self, time: float, callback: Callable[..., Any], args: tuple, priority: int
    ) -> EventHandle:
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.priority = priority
            handle.callback = callback
            handle.args = args
            handle._cancelled = False
        else:
            handle = EventHandle(time, priority, callback, args)
        handle.seq = self._seq
        self._seq += 1
        handle._sched = self
        wheel = self._wheel
        if wheel is not None:
            if wheel.live == 0:
                wheel.sync_if_empty(wheel.tick_for(self._now))
            tick = wheel.tick_for(time)
            if tick - wheel._cur_tick < TimingWheel.HORIZON_TICKS:
                handle._tick = tick
                wheel.insert(handle, tick)
                return handle
        handle._tick = -1
        heapq.heappush(self._heap, handle)
        self._heap_live += 1
        return handle

    # Cancellation accounting ---------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        """Called by :meth:`EventHandle.cancel` while the handle is queued."""
        if handle._tick >= 0:
            wheel = self._wheel
            if wheel is not None:
                wheel.live -= 1
        else:
            self._heap_live -= 1
            heap_size = len(self._heap)
            # Compact on dead *fraction*: once half the heap is cancelled
            # (and it is big enough to matter), rebuild it live-only.
            if heap_size > self.GC_BASE_THRESHOLD and self._heap_live * 2 <= heap_size:
                live = [entry for entry in self._heap if not entry._cancelled]
                heapq.heapify(live)
                self._heap = live

    def _recycle(self, handle: EventHandle) -> None:
        """Return a fired/dead handle to the free list if nothing else
        holds it (caller owns exactly one reference)."""
        # 3 == caller's local + our parameter + getrefcount's argument.
        if len(self._free) < self.FREE_LIST_MAX and getrefcount(handle) == 3:
            handle.callback = _noop_handle
            handle.args = ()
            handle._sched = None
            self._free.append(handle)

    # Inspection ----------------------------------------------------------
    def _heap_head(self) -> Optional[EventHandle]:
        heap = self._heap
        while heap:
            head = heap[0]
            if not head._cancelled:
                return head
            heapq.heappop(heap)
            self._recycle(head)
        return None

    def _next_handle(self) -> Optional[EventHandle]:
        """Earliest live entry across both backends (no removal)."""
        wheel = self._wheel
        wheel_head = wheel.peek() if wheel is not None else None
        heap_head = self._heap_head()
        if wheel_head is None:
            return heap_head
        if heap_head is None or wheel_head < heap_head:
            return wheel_head
        return heap_head

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        head = self._next_handle()
        return head.time if head is not None else None

    # Execution -----------------------------------------------------------
    def _pop(self, head: EventHandle) -> None:
        """Remove ``head`` (the current :meth:`_next_handle`) from its backend."""
        if head._tick >= 0:
            self._wheel.pop()  # type: ignore[union-attr]
        else:
            heapq.heappop(self._heap)
            self._heap_live -= 1

    def run_next(self) -> bool:
        """Pop and execute the next live event.

        Returns ``False`` when the queue is empty.  Advances the clock to
        the event's timestamp before invoking the callback.
        """
        return self.run_next_before(None)

    def run_next_before(self, until: Optional[float] = None) -> bool:
        """Pop and execute the next live event if it is at or before ``until``.

        Returns ``False`` — without advancing the clock — when the queue
        is empty or the next live event is after ``until``.
        """
        head = self._next_handle()
        if head is None:
            return False
        if until is not None and head.time > until:
            return False
        self._pop(head)
        self._now = head.time
        self._executed += 1
        head._sched = None
        head.callback(*head.args)
        self._recycle(head)
        return True

    def run_until(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the queue, optionally bounded by time and/or event count.

        With ``until`` set, the clock is advanced to exactly ``until`` after
        the last event at or before it, so repeated bounded runs compose.
        """
        remaining = max_events
        while True:
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            if not self.run_next_before(until):
                break
        if until is not None and until > self._now:
            self._now = until


def _noop_handle(*_args: Any) -> None:
    return None

"""The event queue driving the discrete-event simulation.

Two backends cooperate behind one ``schedule_at`` API, selected per call:

* a **hierarchical timing wheel** (Varghese–Lauck) for the short-horizon
  timer band.  TCP workloads are overwhelmingly timer workloads — most
  retransmission timers are cancelled by an ACK long before firing — and a
  wheel makes both insert and cancelled-entry disposal O(1) (a flag check
  when the slot is opened) instead of O(log n) heap percolation per pop;
* a **binary heap** of :class:`~repro.sim.events.EventHandle` objects for
  events beyond the wheel horizon, ordered by ``(time, priority, seq)``.
  Cancelled handles are lazily discarded, and the heap is compacted when
  the *dead fraction* exceeds one half (never based on raw length alone).

Both backends dispatch in exactly the same ``(time, priority, seq)`` order
— the seq tie-break is a per-scheduler counter assigned at schedule time —
so a run is bit-identical whichever backend each event landed in.  The
differential tests in ``tests/sim/test_timing_wheel.py`` and the grid-hash
test in ``tests/harness/test_backend_differential.py`` enforce this.

Handles are recycled through a bounded free list once they have fired (or
were popped cancelled) and no outside reference remains — verified with
``sys.getrefcount`` so a caller-retained handle is never reused under it.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from math import inf
from sys import getrefcount
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.datapath import batch_enabled
from repro.sim.events import PRIORITY_NORMAL, EventHandle, SimEvent

#: Wheel entry: the sort key inlined ahead of the handle, so slot sorting
#: and late-arrival insorts compare plain tuples at C speed instead of
#: extracting attributes per element.  The key fields are copies made at
#: schedule time; ``seq`` is unique, so the handle itself is never
#: compared.
WheelEntry = Tuple[float, int, int, EventHandle]

#: Environment override for the queue backend: ``heap`` disables the
#: timing wheel (everything goes through the binary heap).  Used by the
#: differential tests to prove the two backends order identically.
BACKEND_ENV = "REPRO_SCHED_BACKEND"


class TimingWheel:
    """Hierarchical timing wheel for the near-future event band.

    Three levels of 1024/256/64 slots at ``resolution`` seconds per tick
    give a horizon of ``2**24`` ticks (≈28 minutes at the default 100 µs
    resolution).  The wide level 0 means every timer under ~100 ms — the
    vast majority of TCP timers — is filed directly into its final slot
    and never pays a cascade.  Slot membership is by absolute tick
    (``floor(time / resolution)``, computed once at insert); events
    cascade down a level whenever the cursor crosses that level's slot
    boundary.

    Slots store :data:`WheelEntry` tuples.  When a slot is opened it is
    sorted **in place** (a raw C tuple sort, no key extraction) and
    becomes the ready batch directly — zero copies — unless cancelled
    entries are known to exist (``_dead``), in which case they are
    filtered out first.  Late arrivals for the open slot (or for ticks
    the cursor already passed — possible when the cursor ran ahead
    through empty slots) are bisect-inserted into the unconsumed tail of
    the ready list, so dispatch order is identical to a single global
    heap.  ``_ready_mut`` counts every structural mutation of the ready
    list so the slot drain can detect divergence with one comparison.
    """

    __slots__ = (
        "resolution",
        "_inv_resolution",
        "_levels",
        "_counts",
        "_cur_tick",
        "_ready",
        "_ready_pos",
        "_ready_mut",
        "_dead",
        "_dirty0",
        "live",
    )

    #: Slot counts per level (level 0 is the finest).
    LEVEL_SLOTS = (1024, 256, 64)
    #: Bit widths of the level indices.
    _SHIFT0 = 10
    _SHIFT1 = 10 + 8
    #: Tick span covered by one slot of each level.
    _SPAN0 = 1 << _SHIFT0
    _SPAN1 = 1 << _SHIFT1
    _MASK0 = _SPAN0 - 1
    _MASK01 = _SPAN1 - 1
    #: Total horizon in ticks; events farther out go to the heap.
    HORIZON_TICKS = _SPAN1 * 64

    def __init__(self, resolution: float) -> None:
        if resolution <= 0:
            raise SimulationError(f"wheel resolution must be positive, got {resolution}")
        self.resolution = resolution
        self._inv_resolution = 1.0 / resolution
        self._levels: List[List[List[WheelEntry]]] = [
            [[] for _ in range(slots)] for slots in self.LEVEL_SLOTS
        ]
        self._counts = [0, 0, 0]  # entries per level, including cancelled
        self._cur_tick = 0
        self._ready: List[Optional[WheelEntry]] = []
        self._ready_pos = 0
        self._ready_mut = 0
        self._dead = 0  # cancelled entries still filed somewhere in the wheel
        # Level-0 slots whose entries arrived out of order.  Timer
        # deadlines are mostly scheduled monotonically (now + delay with
        # non-decreasing now), so most slots stay clean and skip the
        # open-time sort entirely.
        self._dirty0 = bytearray(self.LEVEL_SLOTS[0])
        self.live = 0  # non-cancelled entries anywhere in the wheel

    def tick_for(self, time: float) -> int:
        """Slot tick for an absolute time (monotonic in ``time``)."""
        return int(time * self._inv_resolution)

    def sync_if_empty(self, now_tick: int) -> None:
        """Fast-forward the cursor over a fully-drained wheel.

        Keeps insert deltas small after long heap-only stretches; only
        legal when no live entry remains (stale cancelled entries are
        harmless — every dispatch path checks the cancelled flag).
        """
        if self.live == 0 and now_tick > self._cur_tick:
            self._cur_tick = now_tick
            ready = self._ready
            if ready:
                # live == 0, so every unconsumed entry left is cancelled.
                pos = self._ready_pos
                self._dead -= sum(1 for e in ready[pos:] if e is not None)
                self._ready = []
            self._ready_pos = 0
            self._ready_mut += 1

    def insert(self, entry: WheelEntry, tick: int) -> None:
        """File an entry under its tick; caller guarantees the horizon."""
        delta = tick - self._cur_tick
        if delta <= 0:
            # The cursor already passed (or sits on) this tick: merge into
            # the sorted unconsumed tail of the ready list.  Plain tuple
            # comparison — the inlined key decides before the handle.
            insort(self._ready, entry, lo=self._ready_pos)
            self._ready_mut += 1
        elif delta < self._SPAN0:
            index = tick & self._MASK0
            slot = self._levels[0][index]
            if slot and entry < slot[-1]:
                self._dirty0[index] = 1
            slot.append(entry)
            self._counts[0] += 1
        elif delta < self._SPAN1:
            self._levels[1][(tick >> self._SHIFT0) & 255].append(entry)
            self._counts[1] += 1
        else:
            self._levels[2][(tick >> self._SHIFT1) & 63].append(entry)
            self._counts[2] += 1
        self.live += 1

    def peek(self) -> Optional[EventHandle]:
        """Earliest live entry's handle, advancing the cursor as needed."""
        ready = self._ready
        pos = self._ready_pos
        size = len(ready)
        dead = 0
        while pos < size:
            entry = ready[pos]
            if entry is not None:
                if not entry[3]._cancelled:
                    if dead:
                        # Skipping past cancelled entries consumes them;
                        # bump the mutation counter so an in-flight drain
                        # re-snapshots instead of double-accounting.
                        self._dead -= dead
                        self._ready_mut += 1
                    self._ready_pos = pos
                    return entry[3]
                dead += 1
            pos += 1
        if dead:
            self._dead -= dead
        self._ready_pos = 0
        ready.clear()
        self._ready_mut += 1
        if self.live == 0:
            return None
        return self._advance()

    def pop(self) -> EventHandle:
        """Remove and return the entry :meth:`peek` just found."""
        pos = self._ready_pos
        entry = self._ready[pos]
        self._ready[pos] = None  # free the entry tuple for handle recycling
        self._ready_pos = pos + 1
        self._ready_mut += 1
        self.live -= 1
        return entry[3]  # type: ignore[index]

    def _advance(self) -> EventHandle:
        """Walk the cursor forward to the next slot with a live entry."""
        counts = self._counts
        level0 = self._levels[0]
        mask0 = self._MASK0
        cur = self._cur_tick
        # Safety bound: one full horizon plus one wrap of cascades.
        limit = cur + self.HORIZON_TICKS + self._SPAN1
        while cur < limit:
            if counts[0] == 0:
                # Jump empty fine-grained spans in one step.
                if counts[1] == 0 and counts[2] == 0:
                    cur = (((cur >> self._SHIFT1) + 1) << self._SHIFT1) - 1
                else:
                    cur = (((cur >> self._SHIFT0) + 1) << self._SHIFT0) - 1
            cur += 1
            if cur & mask0 == 0:
                self._cur_tick = cur
                if cur & self._MASK01 == 0:
                    self._cascade(2, cur)
                self._cascade(1, cur)
            if counts[0]:
                index = cur & mask0
                slot = level0[index]
                if slot:
                    level0[index] = []
                    counts[0] -= len(slot)
                    if self._dead:
                        # Filtering a sorted slot preserves its order.
                        batch: List[Optional[WheelEntry]] = [
                            e for e in slot if not e[3]._cancelled
                        ]
                        self._dead -= len(slot) - len(batch)
                    else:
                        # No cancelled entry anywhere in the wheel: the
                        # slot list itself becomes the batch, zero-copy.
                        batch = slot  # type: ignore[assignment]
                    if self._dirty0[index]:
                        self._dirty0[index] = 0
                        batch.sort()  # type: ignore[arg-type]
                    if batch:
                        self._ready = batch
                        self._ready_pos = 0
                        self._ready_mut += 1
                        self._cur_tick = cur
                        return batch[0][3]  # type: ignore[index]
        raise SimulationError(
            "timing wheel inconsistency: live counter positive but no entry found"
        )

    def _cascade(self, level: int, cur: int) -> None:
        """Redistribute one coarse slot into the finer levels."""
        if level == 2:
            index = (cur >> self._SHIFT1) & 63
        else:
            index = (cur >> self._SHIFT0) & 255
        slot = self._levels[level][index]
        if not slot:
            return
        self._levels[level][index] = []
        counts = self._counts
        counts[level] -= len(slot)
        levels = self._levels
        dead = 0
        for entry in slot:
            handle = entry[3]
            if handle._cancelled:
                dead += 1
                continue
            tick = handle._tick
            delta = tick - cur
            if delta < self._SPAN0:
                index0 = tick & self._MASK0
                dst = levels[0][index0]
                if dst and entry < dst[-1]:
                    self._dirty0[index0] = 1
                dst.append(entry)
                counts[0] += 1
            else:
                levels[1][(tick >> self._SHIFT0) & 255].append(entry)
                counts[1] += 1
        if dead:
            self._dead -= dead


class Scheduler:
    """A time-ordered queue of pending callbacks (wheel + heap)."""

    __slots__ = (
        "_heap",
        "_wheel",
        "_now",
        "_executed",
        "_heap_live",
        "_seq",
        "_free",
        "_batch",
        "_batch_hooks",
    )

    #: Heap compaction floor: below this length, dead entries are cheap
    #: enough to keep regardless of fraction.
    GC_BASE_THRESHOLD = 4096

    #: Default wheel tick in seconds.  100 µs splits the paper's testbed
    #: timescales cleanly: frame times land a handful per slot, while TCP
    #: timers (ms–s) stay well inside the ~7-minute horizon.
    WHEEL_RESOLUTION = 1e-4

    #: Recycled EventHandle pool cap.
    FREE_LIST_MAX = 8192

    #: Largest ready-batch tail the slot drain will snapshot.  Bigger
    #: batches fall back to the indexed loop so a pathological slot
    #: (thousands of same-tick events, each insorting a zero-delay
    #: arrival) cannot go quadratic in re-snapshot copies.
    READY_SNAPSHOT_MAX = 1024

    def __init__(
        self,
        wheel: Optional[bool] = None,
        wheel_resolution: float = WHEEL_RESOLUTION,
    ) -> None:
        self._heap: List[EventHandle] = []
        if wheel is None:
            wheel = os.environ.get(BACKEND_ENV, "wheel") != "heap"
        self._wheel: Optional[TimingWheel] = (
            TimingWheel(wheel_resolution) if wheel else None
        )
        self._now = 0.0
        self._executed = 0
        self._heap_live = 0
        self._seq = 0
        self._free: List[EventHandle] = []
        # Slot-drain dispatch (REPRO_DATAPATH=batch) needs the wheel: the
        # heap backend *is* the per-event reference arm and keeps the old
        # run_next loop verbatim, as does REPRO_DATAPATH=object.
        self._batch = self._wheel is not None and batch_enabled()
        self._batch_hooks: tuple = ()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed_count(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) entries in the queue — O(1)."""
        wheel = self._wheel
        return self._heap_live + (wheel.live if wheel is not None else 0)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, already at t={self._now:.9f}"
            )
        return self._push(time, callback, args, priority)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Relative-delay fast path: skips the ``time < now`` guard.

        Callers must guarantee ``delay >= 0`` (the :class:`Simulator`
        wrappers either validate it once or hold it by construction).
        """
        return self._push(self._now + delay, callback, args, priority)

    def _push(
        self, time: float, callback: Callable[..., Any], args: tuple, priority: int
    ) -> EventHandle:
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.priority = priority
            handle.callback = callback
            handle.args = args
            handle._cancelled = False
        else:
            handle = EventHandle(time, priority, callback, args)
        seq = self._seq
        handle.seq = seq
        self._seq = seq + 1
        handle._sched = self
        wheel = self._wheel
        if wheel is not None:
            if wheel.live == 0:
                wheel.sync_if_empty(wheel.tick_for(self._now))
            tick = wheel.tick_for(time)
            if tick - wheel._cur_tick < TimingWheel.HORIZON_TICKS:
                handle._tick = tick
                wheel.insert((time, priority, seq, handle), tick)
                return handle
        handle._tick = -1
        heapq.heappush(self._heap, handle)
        self._heap_live += 1
        return handle

    # Cancellation accounting ---------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        """Called by :meth:`EventHandle.cancel` while the handle is queued."""
        if handle._tick >= 0:
            wheel = self._wheel
            if wheel is not None:
                wheel.live -= 1
                wheel._dead += 1
        else:
            self._heap_live -= 1
            heap_size = len(self._heap)
            # Compact on dead *fraction*: once half the heap is cancelled
            # (and it is big enough to matter), rebuild it live-only.
            if heap_size > self.GC_BASE_THRESHOLD and self._heap_live * 2 <= heap_size:
                live = [entry for entry in self._heap if not entry._cancelled]
                heapq.heapify(live)
                self._heap = live

    def _recycle(self, handle: EventHandle) -> None:
        """Return a fired/dead handle to the free list if nothing else
        holds it (caller owns exactly one reference)."""
        # 3 == caller's local + our parameter + getrefcount's argument.
        if len(self._free) < self.FREE_LIST_MAX and getrefcount(handle) == 3:
            handle.callback = _noop_handle
            handle.args = ()
            handle._sched = None
            self._free.append(handle)

    # Inspection ----------------------------------------------------------
    def _heap_head(self) -> Optional[EventHandle]:
        heap = self._heap
        while heap:
            head = heap[0]
            if not head._cancelled:
                return head
            heapq.heappop(heap)
            self._recycle(head)
        return None

    def _next_handle(self) -> Optional[EventHandle]:
        """Earliest live entry across both backends (no removal)."""
        wheel = self._wheel
        wheel_head = wheel.peek() if wheel is not None else None
        heap_head = self._heap_head()
        if wheel_head is None:
            return heap_head
        if heap_head is None or wheel_head < heap_head:
            return wheel_head
        return heap_head

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        head = self._next_handle()
        return head.time if head is not None else None

    # Execution -----------------------------------------------------------
    def _pop(self, head: EventHandle) -> None:
        """Remove ``head`` (the current :meth:`_next_handle`) from its backend."""
        if head._tick >= 0:
            self._wheel.pop()  # type: ignore[union-attr]
        else:
            heapq.heappop(self._heap)
            self._heap_live -= 1

    def run_next(self) -> bool:
        """Pop and execute the next live event.

        Returns ``False`` when the queue is empty.  Advances the clock to
        the event's timestamp before invoking the callback.
        """
        return self.run_next_before(None)

    def run_next_before(self, until: Optional[float] = None) -> bool:
        """Pop and execute the next live event if it is at or before ``until``.

        Returns ``False`` — without advancing the clock — when the queue
        is empty or the next live event is after ``until``.
        """
        head = self._next_handle()
        if head is None:
            return False
        if until is not None and head.time > until:
            return False
        self._pop(head)
        self._now = head.time
        self._executed += 1
        head._sched = None
        head.callback(*head.args)
        self._recycle(head)
        return True

    def run_until(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        watch: Optional[SimEvent] = None,
    ) -> None:
        """Drain the queue, optionally bounded by time and/or event count.

        With ``until`` set, the clock is advanced to exactly ``until`` after
        the last event at or before it, so repeated bounded runs compose.

        With ``watch`` set (a :class:`SimEvent`, typically a process), the
        run stops — without the final clock advance — as soon as an event
        leaves ``watch`` triggered, or leaves ``now >= until``.  This is
        :meth:`Simulator.run_until_complete`'s per-event stop condition,
        folded into the drain loop so the batched arm keeps it bit-exact.
        """
        if self._batch:
            self._run_batched(until, max_events, watch)
            return
        remaining = max_events
        while True:
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            if not self.run_next_before(until):
                break
            if watch is not None:
                if watch._done:
                    return
                if until is not None and self._now >= until:
                    return
        if watch is not None:
            return
        if until is not None and until > self._now:
            self._now = until

    # Slot-drain dispatch (REPRO_DATAPATH=batch) -------------------------
    def add_batch_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook()`` to run at the end of every dispatch batch.

        Hooks are the flush point for consumers that coalesce per-event
        work (the ST-TCP backup's index reconciliation).  They run between
        batches — never between two events of one batch — and must not
        change anything simulation-visible: the object arm never fires
        them, and the differential tests hold both arms byte-identical.
        Register before running; hooks are looked up once per drain.
        """
        self._batch_hooks += (hook,)

    def _run_batched(
        self,
        until: Optional[float],
        max_events: Optional[int],
        watch: Optional[SimEvent],
    ) -> None:
        """Batched counterpart of the :meth:`run_until` loop.

        Alternates between draining the wheel's ready batch in a tight
        loop (the common case) and single-event heap dispatch (events
        beyond the wheel horizon), preserving global ``(time, priority,
        seq)`` order: the heap head bounds each drain, and within a batch
        the ready list is already sorted.
        """
        wheel = self._wheel
        assert wheel is not None  # _batch implies a wheel
        hooks = self._batch_hooks
        remaining = -1 if max_events is None else max_events
        stop = False
        while not stop:
            wheel_head = wheel.peek()
            heap_head = self._heap_head()
            if wheel_head is None and heap_head is None:
                break
            if wheel_head is not None and (heap_head is None or wheel_head < heap_head):
                if until is not None and wheel_head.time > until:
                    break
                # Drop this frame's reference so the drain loop's
                # refcount-gated recycling still sees the batch's first
                # handle as unreferenced once it has fired.
                wheel_head = None
                remaining, stop = self._drain_ready(heap_head, until, remaining, watch)
            else:
                assert heap_head is not None
                if until is not None and heap_head.time > until:
                    break
                remaining, stop = self._run_heap_event(heap_head, until, remaining, watch)
            if hooks:
                for hook in hooks:
                    hook()
        # No final clock advance under ``watch``: the caller
        # (run_until_complete) distinguishes "queue drained" from
        # "deadline reached" by whether the clock moved, exactly like the
        # per-event reference loop.
        if stop or watch is not None:
            return
        if until is not None and until > self._now:
            self._now = until

    def _drain_ready(
        self,
        bound: Optional[EventHandle],
        until: Optional[float],
        remaining: int,
        watch: Optional[SimEvent],
    ) -> "tuple[int, bool]":
        """Dispatch the wheel's ready batch in one tight loop.

        The batch is iterated as a C-level loop over a snapshot slice —
        roughly 3× cheaper per event than index arithmetic — which is
        sound because the ready list cannot change *under* the snapshot
        unnoticed:

        * ``bound`` (the heap head at batch start) is a conservative floor
          for the heap for the whole drain — new heap arrivals are at
          least one full wheel horizon after every ready entry, and
          cancelling the head only *raises* the true heap minimum.  A
          ready entry not strictly below ``bound`` breaks out to the
          caller, which re-resolves both heads.
        * ``wheel._ready_pos`` is synced *before* each callback, so
          zero-delay arrivals insort into the unconsumed (and never
          nulled, hence bisect-safe) tail.  Every structural mutation of
          the ready list — insort, reentrant drain, a peek that skips or
          clears — bumps ``wheel._ready_mut``; one comparison after each
          callback triggers a re-snapshot from the live list.
        * ``wheel.live`` and ``self._executed`` are flushed per batch in
          the ``finally`` (exception-safe); mid-batch the only reader is
          ``_push``'s ``live == 0`` fast path, for which an overestimate
          merely skips an optional cursor resync that is a no-op during a
          drain anyway (``now`` never maps past ``_cur_tick`` here).

        Returns the updated ``max_events`` budget (-1 = unlimited) and
        whether the caller must stop outright (budget exhausted or the
        ``watch`` stop condition fired).
        """
        wheel = self._wheel
        assert wheel is not None
        free = self._free
        free_len = len(free)
        free_cap = self.FREE_LIST_MAX
        getref = getrefcount
        ut = inf if until is None else until
        bt = inf if bound is None else bound.time
        # One compare covers both bounds; the bt tie-break below can only
        # be reached when bt <= ut (otherwise t == bt would exceed limit).
        limit = bt if bt < ut else ut
        # Dispatched-count bookkeeping is deferred: the ``finally`` flush
        # derives it from how far the cursor moved past each snapshot
        # start, minus cancelled entries skipped over (``skips``).
        done = 0
        rpos = rpos0 = skips = 0
        try:
            while True:
                ready = wheel._ready
                rpos = rpos0 = wheel._ready_pos
                skips = 0
                if rpos >= len(ready):
                    return remaining, False
                if len(ready) - rpos > self.READY_SNAPSHOT_MAX:
                    return self._drain_ready_indexed(bound, until, remaining, watch)
                mut = wheel._ready_mut
                resnapshot = False
                for entry in ready[rpos:]:
                    handle = entry[3]
                    if handle._cancelled:
                        rpos += 1
                        skips += 1
                        wheel._dead -= 1
                        continue
                    t = entry[0]
                    if t > limit or (t == bt and not handle < bound):
                        wheel._ready_pos = rpos
                        return remaining, False
                    if remaining >= 0:
                        if remaining == 0:
                            wheel._ready_pos = rpos
                            return 0, True
                        remaining -= 1
                    rpos += 1
                    wheel._ready_pos = rpos
                    self._now = t
                    handle._sched = None
                    callback = handle.callback  # named local: the profiler reads it
                    callback(*handle.args)
                    # Inline _recycle: 3 == the entry tuple + this local +
                    # getrefcount's argument.  The consumed tuple lingers
                    # in the batch until it is cleared but is never
                    # re-read, so reusing its handle under it is safe.
                    # free_len may go stale if a callback pops the free
                    # list (recycle skipped: harmless) or a reentrant
                    # drain appends (soft cap overshoot: harmless).
                    if free_len < free_cap and getref(handle) == 3:
                        handle.callback = _noop_handle
                        handle.args = ()
                        free.append(handle)
                        free_len += 1
                    if watch is not None and (watch._done or t >= ut):
                        return remaining, True
                    if wheel._ready_mut != mut:
                        resnapshot = True
                        break
                if not resnapshot:
                    wheel._ready_pos = rpos
                    return remaining, False
                done += rpos - rpos0 - skips
        finally:
            dispatched = done + (rpos - rpos0 - skips)
            wheel.live -= dispatched
            self._executed += dispatched

    def _drain_ready_indexed(
        self,
        bound: Optional[EventHandle],
        until: Optional[float],
        remaining: int,
        watch: Optional[SimEvent],
    ) -> "tuple[int, bool]":
        """Index-arithmetic fallback drain for oversized ready batches.

        Same contract as :meth:`_drain_ready`, with per-event counter
        updates; used when the batch tail exceeds ``READY_SNAPSHOT_MAX``
        so snapshot copies cannot go quadratic.
        """
        wheel = self._wheel
        assert wheel is not None
        ready = wheel._ready
        pos = wheel._ready_pos
        free = self._free
        free_cap = self.FREE_LIST_MAX
        getref = getrefcount
        while pos < len(ready):
            entry = ready[pos]
            if entry is None:
                pos += 1
                continue
            handle = entry[3]
            if handle._cancelled:
                pos += 1
                wheel._dead -= 1
                continue
            if (until is not None and entry[0] > until) or (
                bound is not None and not handle < bound
            ):
                break
            if remaining >= 0:
                if remaining == 0:
                    wheel._ready_pos = pos
                    return 0, True
                remaining -= 1
            pos += 1
            wheel._ready_pos = pos
            wheel.live -= 1
            self._now = entry[0]
            self._executed += 1
            handle._sched = None
            callback = handle.callback  # named local: the profiler reads it
            callback(*handle.args)
            # Inline _recycle: 3 == the entry tuple + this local +
            # getrefcount's argument (the consumed tuple is never re-read).
            if len(free) < free_cap and getref(handle) == 3:
                handle.callback = _noop_handle
                handle.args = ()
                free.append(handle)
            if wheel._ready is not ready:
                ready = wheel._ready
            pos = wheel._ready_pos
            if watch is not None and (
                watch._done or (until is not None and self._now >= until)
            ):
                return remaining, True
        wheel._ready_pos = pos
        return remaining, False

    def _run_heap_event(
        self,
        head: EventHandle,
        until: Optional[float],
        remaining: int,
        watch: Optional[SimEvent],
    ) -> "tuple[int, bool]":
        """Dispatch one beyond-horizon event from the heap (batch arm)."""
        if remaining >= 0:
            if remaining == 0:
                return 0, True
            remaining -= 1
        heapq.heappop(self._heap)
        self._heap_live -= 1
        self._now = head.time
        self._executed += 1
        head._sched = None
        callback = head.callback  # named local: the profiler reads it
        callback(*head.args)
        # Inline _recycle: 3 == the caller's heap_head + our parameter +
        # getrefcount's argument.
        if getrefcount(head) == 3 and len(self._free) < self.FREE_LIST_MAX:
            head.callback = _noop_handle
            head.args = ()
            self._free.append(head)
        if watch is not None and (
            watch._done or (until is not None and self._now >= until)
        ):
            return remaining, True
        return remaining, False


def _noop_handle(*_args: Any) -> None:
    return None

"""The event heap driving the discrete-event simulation.

The scheduler is intentionally minimal: a binary heap of
:class:`~repro.sim.events.EventHandle` objects ordered by
``(time, priority, seq)``.  Cancelled handles are lazily discarded when they
reach the top of the heap, which keeps cancellation O(1) at the cost of some
heap slack — the right trade for TCP workloads where most retransmission
timers are cancelled by an ACK long before they fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_NORMAL, EventHandle


class Scheduler:
    """A time-ordered queue of pending callbacks."""

    __slots__ = ("_heap", "_now", "_executed", "_gc_threshold")

    #: Compaction trigger floor; the live threshold rises while cancelled
    #: entries are cheap to keep and falls back here after a compaction.
    GC_BASE_THRESHOLD = 4096

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._now = 0.0
        self._executed = 0
        # Compact the heap when cancelled entries dominate; prevents
        # unbounded growth in timer-heavy workloads.
        self._gc_threshold = self.GC_BASE_THRESHOLD

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed_count(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) entries in the queue."""
        return sum(1 for handle in self._heap if not handle.cancelled)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, already at t={self._now:.9f}"
            )
        handle = EventHandle(time, priority, callback, args)
        heapq.heappush(self._heap, handle)
        if len(self._heap) > self._gc_threshold:
            self._maybe_compact()
        return handle

    def _maybe_compact(self) -> None:
        live = [handle for handle in self._heap if not handle.cancelled]
        # Only pay the rebuild cost when at least half the heap is dead.
        if len(live) * 2 <= len(self._heap):
            heapq.heapify(live)
            self._heap = live
            # Shrink back after compacting so one burst of cancelled
            # timers does not pin the threshold high forever.
            self._gc_threshold = max(self.GC_BASE_THRESHOLD, len(live) * 2)
        else:
            self._gc_threshold = max(self._gc_threshold, len(self._heap) * 2)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_next(self) -> bool:
        """Pop and execute the next live event.

        Returns ``False`` when the queue is empty.  Advances the clock to
        the event's timestamp before invoking the callback.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self._executed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run_next_before(self, until: Optional[float] = None) -> bool:
        """Pop and execute the next live event if it is at or before ``until``.

        One heap traversal replaces the ``peek_time()`` + ``run_next()``
        pair, which each skipped the same cancelled prefix.  Returns
        ``False`` — without advancing the clock — when the queue is empty
        or the next live event is after ``until``.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                return False
            heapq.heappop(self._heap)
            self._now = head.time
            self._executed += 1
            head.callback(*head.args)
            return True
        return False

    def run_until(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the queue, optionally bounded by time and/or event count.

        With ``until`` set, the clock is advanced to exactly ``until`` after
        the last event at or before it, so repeated bounded runs compose.
        """
        remaining = max_events
        while True:
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            if not self.run_next_before(until):
                break
        if until is not None and until > self._now:
            self._now = until

"""Coroutine processes layered over the event kernel.

A *process* is a Python generator that ``yield``s
:class:`~repro.sim.events.SimEvent` objects.  Yielding suspends the process
until the event triggers; the event's value is sent back into the generator
(or its failure exception is raised at the yield point).  This mirrors the
SimPy programming model while keeping the kernel a plain callback scheduler.

Example::

    def client(sim, sock):
        yield sock.connect(("10.0.0.1", 80))
        yield sock.send_all(b"hello")
        reply = yield sock.recv_exactly(5)
        sock.close()

    sim.spawn(client(sim, sock))
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import InterruptError, ProcessError
from repro.sim.events import PRIORITY_NORMAL, SimEvent


class Process(SimEvent):
    """A running coroutine; also a :class:`SimEvent` that triggers on exit.

    The process *succeeds* with the generator's return value when the
    generator finishes, and *fails* with the exception if the generator
    raises.  Other processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("generator", "_waiting_on", "_started", "label")

    def __init__(
        self,
        sim: Any,
        generator: Generator[SimEvent, Any, Any],
        label: str = "",
    ) -> None:
        super().__init__(sim, name=label or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise ProcessError(f"spawn() requires a generator, got {generator!r}")
        self.generator = generator
        self.label = self.name
        self._waiting_on: Optional[SimEvent] = None
        self._started = False
        # First resumption happens as a scheduled event so that spawning
        # inside another process does not reenter user code synchronously.
        sim.call_later(0.0, self._resume_with, None, None, priority=PRIORITY_NORMAL)

    # Lifecycle -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`InterruptError` inside the process at its yield.

        No-op if the process already finished.  A process blocked on an
        event is detached from it; the abandoned event may still trigger
        later with no effect on this process.
        """
        if self.triggered:
            return
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._event_done)
            self._waiting_on = None
        self.sim.call_later(
            0.0, self._resume_with, None, InterruptError(cause), priority=PRIORITY_NORMAL
        )

    def kill(self) -> None:
        """Terminate the process without running any of its cleanup code
        beyond ``GeneratorExit`` handling (i.e. ``generator.close()``)."""
        if self.triggered:
            return
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._event_done)
            self._waiting_on = None
        self.generator.close()
        self.succeed(None)

    # Internal stepping ----------------------------------------------------
    def _event_done(self, event: SimEvent) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume_with(event._value, None)
        else:
            self._resume_with(None, event.exception)

    def _resume_with(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._started = True
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as failure:  # noqa: BLE001 - propagate to joiners
            if not self._callbacks:
                # Nobody is joining this process: surface the crash instead
                # of swallowing it, per "errors should never pass silently".
                self.succeed(None)
                raise
            self.fail(failure)
            return
        if not isinstance(target, SimEvent):
            self.generator.close()
            self.succeed(None)
            raise ProcessError(
                f"process {self.label!r} yielded {target!r}; processes must "
                "yield SimEvent instances"
            )
        self._waiting_on = target
        if target.triggered:
            # Resume via the scheduler rather than synchronously: a chain
            # of already-ready events (e.g. reads from a full buffer) must
            # not recurse one Python frame per step.
            self.sim.call_later(0.0, self._event_done, target)
        else:
            target.add_callback(self._event_done)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else ("running" if self._started else "new")
        return f"<Process {self.label!r} {state}>"


class Semaphore:
    """A counting semaphore for coroutine processes.

    ``yield sem.acquire()`` suspends until a unit is available.
    """

    def __init__(self, sim: Any, value: int = 1) -> None:
        if value < 0:
            raise ProcessError(f"semaphore initial value must be >= 0, got {value}")
        self.sim = sim
        self._value = value
        self._waiters: list[SimEvent] = []

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> SimEvent:
        event = SimEvent(self.sim, "sem.acquire")
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._value += 1


class Channel:
    """An unbounded FIFO message channel between processes.

    ``put`` never blocks; ``yield channel.get()`` suspends until an item is
    available.  Used for app-level coordination in tests and examples.
    """

    def __init__(self, sim: Any, name: str = "channel") -> None:
        self.sim = sim
        self.name = name
        self._items: list[Any] = []
        self._getters: list[SimEvent] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        event = SimEvent(self.sim, f"{self.name}.get")
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

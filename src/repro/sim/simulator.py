"""The :class:`Simulator` facade tying clock, scheduler, processes and RNG
together.

A single :class:`Simulator` instance owns all mutable simulation state; all
components (hosts, links, protocols) hold a reference to it.  Time is a
float in seconds.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    EventHandle,
    SimEvent,
    Timeout,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.process import Process
from repro.sim.randomness import RandomStreams
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


class Simulator:
    """Discrete-event simulation kernel.

    Typical use::

        sim = Simulator(seed=1)
        sim.spawn(my_process(sim))
        sim.run(until=60.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self._scheduler = Scheduler()
        self.random = RandomStreams(seed)
        self.trace = Tracer()
        self.metrics = MetricsRegistry()
        self._processes: List[Process] = []

    # Time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._scheduler.now

    @property
    def events_executed(self) -> int:
        return self._scheduler.executed_count

    # Scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._scheduler.schedule_after(delay, callback, args, priority)

    def call_later(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Unchecked fast path for :meth:`schedule`.

        Skips the negative-delay / ``time < now`` guards entirely, for hot
        internal call sites where ``delay >= 0`` holds by construction
        (zero-delay process resumes, validated timeouts, armed timers).
        """
        return self._scheduler.schedule_after(delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        return self._scheduler.schedule_at(time, callback, args, priority)

    @property
    def batch_dispatch(self) -> bool:
        """True when the scheduler runs slot-drain (batched) dispatch."""
        return self._scheduler._batch

    def add_batch_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook()`` to run between dispatch batches.

        Only meaningful under batched dispatch (see
        :meth:`Scheduler.add_batch_hook` for the contract); callers gate
        on :attr:`batch_dispatch` and keep a per-event fallback for the
        object arm.
        """
        self._scheduler.add_batch_hook(hook)

    # Events --------------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create an untriggered waitable event."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` seconds."""
        event = Timeout(self, delay)  # validates delay >= 0
        self.call_later(delay, event.succeed, value)
        return event

    def any_of(self, events: List[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: List[SimEvent]) -> AllOf:
        return AllOf(self, events)

    # Processes -----------------------------------------------------------
    def spawn(
        self, generator: Generator[SimEvent, Any, Any], label: str = ""
    ) -> Process:
        """Start a coroutine process; returns its handle (joinable event)."""
        process = Process(self, generator, label)
        self._processes.append(process)
        return process

    # Execution -----------------------------------------------------------
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` callbacks have executed."""
        self._scheduler.run_until(until=until, max_events=max_events)

    def run_until_complete(
        self, process: Process, deadline: Optional[float] = None
    ) -> Any:
        """Run the simulation until ``process`` finishes; return its value.

        Raises :class:`SimulationError` if the event queue drains or the
        deadline passes while the process is still alive (usually a sign of
        a deadlock in the scenario under test).
        """
        if self._scheduler._batch:
            return self._run_until_complete_batched(process, deadline)
        while not process.triggered:
            if deadline is not None and self.now >= deadline:
                raise SimulationError(
                    f"deadline {deadline}s passed; process {process.label!r} "
                    "still running"
                )
            if self._scheduler.run_next_before(deadline):
                continue
            if self._scheduler.peek_time() is None:
                raise SimulationError(
                    f"event queue empty but process {process.label!r} never "
                    "finished (deadlock?)"
                )
            # The next live event is past the deadline: advance to it and
            # let the check at the top of the loop raise.
            self._scheduler.run_until(until=deadline)
        return process.value

    def _run_until_complete_batched(
        self, process: Process, deadline: Optional[float] = None
    ) -> Any:
        """Slot-drain counterpart of :meth:`run_until_complete`.

        The per-event stop conditions of the reference loop — stop the
        instant ``process`` triggers, and run at most one event that
        leaves ``now >= deadline`` — are enforced inside the scheduler's
        drain via ``watch``, so both arms execute exactly the same event
        sequence before raising or returning.
        """
        scheduler = self._scheduler
        while not process.triggered:
            if deadline is not None and self.now >= deadline:
                raise SimulationError(
                    f"deadline {deadline}s passed; process {process.label!r} "
                    "still running"
                )
            scheduler.run_until(until=deadline, watch=process)
            if process.triggered:
                break
            if deadline is not None and self.now >= deadline:
                continue  # the deadline check at the top of the loop raises
            if scheduler.peek_time() is None:
                raise SimulationError(
                    f"event queue empty but process {process.label!r} never "
                    "finished (deadlock?)"
                )
            # The next live event is past the deadline: advance to it and
            # let the check at the top of the loop raise.
            scheduler.run_until(until=deadline)
        return process.value

    def step(self) -> bool:
        """Execute a single event; returns False when the queue is empty."""
        return self._scheduler.run_next()

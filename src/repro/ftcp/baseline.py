"""An FT-TCP-style baseline for failover comparison (paper §2).

FT-TCP (Alvisi et al., Infocom 2001) wraps the server-side TCP so every
client byte reaches a logger; on a crash a *new* server process starts and
rebuilds its state by replaying the logged byte stream, while the client
is kept alive with zero-window advertisements.  The paper's critique:
"a failover in FT-TCP requires failure detection, time for the backup
server to start, and time to update the backup server state from all the
data saved in the logger (which could be quite large for long running
applications)".

This module models exactly that cost profile on the same substrate: the
takeover is delayed by a process-restart time plus a replay time
proportional to the bytes the connection has processed, and the client
sees periodic zero-window keepalives meanwhile.  Everything else (failure
detection, transparent connection continuation) reuses the ST-TCP
machinery, so the comparison isolates the failover-strategy difference —
active state mirroring versus restart-and-replay.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.sttcp.backup import ROLE_TAKING_OVER, STTCPBackup
from repro.sttcp.config import STTCPConfig
from repro.sttcp.manager import STTCPServerPair
from repro.tcp.constants import FLAG_ACK
from repro.tcp.segment import TCPSegment
from repro.tcp.seqspace import wrap
from repro.tcp.timers import RestartableTimer
from repro.util.units import MB


@dataclasses.dataclass
class FTCPConfig(STTCPConfig):
    """ST-TCP detection parameters plus FT-TCP recovery costs."""

    #: Cold-start time of the replacement server process.
    restart_delay: float = 0.5
    #: Replay throughput while rebuilding state from the log.
    replay_rate: float = 10.0 * MB  # bytes/second
    #: Zero-window keepalive period during recovery (keeps the client's
    #: TCP from aborting on long recoveries).
    keepalive_interval: float = 0.1


class FTCPBackup(STTCPBackup):
    """A backup whose takeover pays FT-TCP's restart + replay costs."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.config, FTCPConfig):
            raise TypeError("FTCPBackup requires an FTCPConfig")
        self._keepalive_timer = RestartableTimer(
            self.sim, self._send_keepalives, "ftcp-keepalive"
        )
        self.replay_bytes = 0
        self.recovery_delay = 0.0

    def _recover_gaps_then_takeover(self) -> None:
        """Delay the takeover by restart + replay, with keepalives."""
        config: FTCPConfig = self.config  # type: ignore[assignment]
        self.replay_bytes = sum(
            state.tcb.recv_buffer.rcv_nxt_offset for state in self._connections.values()
        )
        replay_time = self.replay_bytes / config.replay_rate
        self.recovery_delay = config.restart_delay + replay_time
        if self.sim.trace.enabled_for("ftcp"):
            self.sim.trace.emit(
                self.sim.now,
                "ftcp",
                "recovery_start",
                replay_bytes=self.replay_bytes,
                delay=self.recovery_delay,
            )
        self._keepalive_timer.start(config.keepalive_interval)
        self.sim.schedule(self.recovery_delay, self._finish_recovery)

    def _finish_recovery(self) -> None:
        if self.role is not ROLE_TAKING_OVER or not self.host.is_up:
            return
        self._keepalive_timer.stop()
        super()._recover_gaps_then_takeover()

    def _send_keepalives(self) -> None:
        """Zero-window ACKs so the client's connection stays alive while
        the replacement server replays its log (FT-TCP's SSW behaviour)."""
        if self.role is not ROLE_TAKING_OVER or not self.host.is_up:
            return
        for state in self._connections.values():
            tcb = state.tcb
            if not tcb.is_synchronized:
                continue
            keepalive = TCPSegment(
                tcb.local_port,
                tcb.remote_port,
                wrap(tcb.snd_nxt),
                wrap(tcb.rcv_nxt),
                FLAG_ACK,
                window=0,
            )
            # Bypass shadow suppression deliberately: the wrapper, not the
            # (dead) server, emits these.
            tcb.layer.send_segment(tcb, keepalive)
        config: FTCPConfig = self.config  # type: ignore[assignment]
        self._keepalive_timer.start(config.keepalive_interval)


class FTCPServerPair(STTCPServerPair):
    """A primary/backup pair whose failover follows FT-TCP's cost model."""

    def __init__(self, *args: Any, config: Optional[FTCPConfig] = None, **kwargs: Any) -> None:
        super().__init__(
            *args,
            config=config or FTCPConfig(),
            backup_engine_factory=FTCPBackup,
            **kwargs,
        )

"""FT-TCP-style restart-and-replay failover baseline (paper §2)."""

from repro.ftcp.baseline import FTCPBackup, FTCPConfig, FTCPServerPair

__all__ = ["FTCPBackup", "FTCPConfig", "FTCPServerPair"]

"""``python -m repro`` — the experiment CLI (see repro.harness.cli)."""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

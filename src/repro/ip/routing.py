"""Longest-prefix-match routing table."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import NetworkError
from repro.net.addresses import IPAddress


class Route:
    """One routing table entry.

    ``next_hop`` of ``None`` means the destination is on-link (resolve the
    destination itself via ARP).  ``src_ip`` pins the source address used
    for packets taking this route (needed when a host owns several IPs on
    one interface — e.g. a server that also owns the virtual service IP).
    """

    __slots__ = ("network", "prefix_len", "nic", "next_hop", "src_ip", "metric")

    def __init__(
        self,
        network: IPAddress,
        prefix_len: int,
        nic: Any,
        next_hop: Optional[IPAddress] = None,
        src_ip: Optional[IPAddress] = None,
        metric: int = 0,
    ) -> None:
        if not 0 <= prefix_len <= 32:
            raise NetworkError(f"bad prefix length {prefix_len}")
        self.network = network
        self.prefix_len = prefix_len
        self.nic = nic
        self.next_hop = next_hop
        self.src_ip = src_ip
        self.metric = metric

    def matches(self, dst: IPAddress) -> bool:
        return dst.in_network(self.network, self.prefix_len)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        via = f" via {self.next_hop}" if self.next_hop else ""
        return f"<Route {self.network}/{self.prefix_len}{via} dev {self.nic.name}>"


class RoutingTable:
    """An ordered collection of routes with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, route: Route) -> None:
        self._routes.append(route)
        # Keep sorted by (prefix_len desc, metric asc) so lookup is a scan
        # returning the first match.
        self._routes.sort(key=lambda r: (-r.prefix_len, r.metric))

    def remove_network(self, network: IPAddress, prefix_len: int) -> None:
        self._routes = [
            r
            for r in self._routes
            if not (r.network == network and r.prefix_len == prefix_len)
        ]

    def lookup(self, dst: IPAddress) -> Optional[Route]:
        for route in self._routes:
            if route.matches(dst):
                return route
        return None

    def __iter__(self):
        return iter(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

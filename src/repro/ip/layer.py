"""The per-host IP layer: output path, input demux, forwarding, tapping.

The *tap hook* is the simulator analogue of the backup's promiscuous
reception: handlers registered with :meth:`IPLayer.add_tap` observe every
datagram that reaches the host stack, whether or not it is locally
addressed.  The ST-TCP backup engine uses this to watch the primary→client
byte stream (§3, Figure 1).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.ip.datagram import DEFAULT_TTL, IPDatagram, PROTO_TCP, PROTO_UDP
from repro.ip.routing import Route, RoutingTable
from repro.net.addresses import IPAddress, MACAddress
from repro.net.frame import ETHERTYPE_IPV4, EthernetFrame
from repro.net.nic import NIC

ProtocolHandler = Callable[[IPDatagram, NIC], None]
TapHandler = Callable[[IPDatagram, NIC], None]

#: Delay applied to loopback deliveries (pure scheduling separation).
LOOPBACK_DELAY = 0.0


class IPLayer:
    """IPv4 input/output for one host."""

    def __init__(self, sim: Any, host: Any) -> None:
        self.sim = sim
        self.host = host
        self.routes = RoutingTable()
        self.forwarding = False
        self._protocols: Dict[int, ProtocolHandler] = {}
        self._taps: List[TapHandler] = []
        # Registry-backed counters (scoped <host>.ip.*); the read-only
        # properties below preserve the historical attribute API.
        metrics = sim.metrics.scope(f"{host.name}.ip")
        self._c_sent = metrics.counter("sent")
        self._c_delivered = metrics.counter("delivered")
        self._c_forwarded = metrics.counter("forwarded")
        self._c_dropped_no_route = metrics.counter("dropped_no_route")
        self._c_dropped_no_arp = metrics.counter("dropped_no_arp")
        self._c_dropped_ttl = metrics.counter("dropped_ttl")
        self._c_dropped_not_local = metrics.counter("dropped_not_local")

    @property
    def sent(self) -> int:
        return self._c_sent.value

    @property
    def delivered(self) -> int:
        return self._c_delivered.value

    @property
    def forwarded(self) -> int:
        return self._c_forwarded.value

    @property
    def dropped_no_route(self) -> int:
        return self._c_dropped_no_route.value

    @property
    def dropped_no_arp(self) -> int:
        return self._c_dropped_no_arp.value

    @property
    def dropped_ttl(self) -> int:
        return self._c_dropped_ttl.value

    @property
    def dropped_not_local(self) -> int:
        return self._c_dropped_not_local.value

    # Configuration -------------------------------------------------------------
    def register_protocol(self, protocol: int, handler: ProtocolHandler) -> None:
        self._protocols[protocol] = handler

    def add_tap(self, handler: TapHandler) -> None:
        """Observe every inbound datagram (promiscuous tap analogue)."""
        self._taps.append(handler)

    def remove_tap(self, handler: TapHandler) -> None:
        try:
            self._taps.remove(handler)
        except ValueError:
            pass

    def add_route(
        self,
        network: IPAddress,
        prefix_len: int,
        nic: NIC,
        next_hop: Optional[IPAddress] = None,
        src_ip: Optional[IPAddress] = None,
        metric: int = 0,
    ) -> None:
        self.routes.add(Route(network, prefix_len, nic, next_hop, src_ip, metric))

    def add_default_route(self, nic: NIC, next_hop: IPAddress) -> None:
        self.add_route(IPAddress(0), 0, nic, next_hop=next_hop, metric=100)

    # Output path -----------------------------------------------------------------
    def send(
        self,
        dst: IPAddress,
        protocol: int,
        payload: Any,
        payload_size: int,
        src: Optional[IPAddress] = None,
        ttl: int = DEFAULT_TTL,
    ) -> None:
        """Route and emit one datagram (asynchronously past ARP)."""
        if not self.host.is_up:
            return
        if dst in self.host.local_ips():
            datagram = IPDatagram(src or dst, dst, protocol, payload, payload_size, ttl)
            self.sim.schedule(LOOPBACK_DELAY, self._local_deliver, datagram, None)
            self._c_sent.value += 1
            return
        route = self.routes.lookup(dst)
        if route is None:
            self._c_dropped_no_route.value += 1
            if self.sim.trace.enabled_for("ip"):
                self.sim.trace.emit(
                    self.sim.now, "ip", "no_route", host=self.host.name, dst=str(dst)
                )
            return
        source = src or route.src_ip or self.host.primary_ip_on(route.nic)
        datagram = IPDatagram(source, dst, protocol, payload, payload_size, ttl)
        self._c_sent.value += 1
        self._transmit(datagram, route)

    def _transmit(self, datagram: IPDatagram, route: Route) -> None:
        next_hop = route.next_hop or datagram.dst
        nic = route.nic

        def on_resolved(mac: Optional[MACAddress]) -> None:
            if mac is None:
                self._c_dropped_no_arp.value += 1
                if self.sim.trace.enabled_for("ip"):
                    self.sim.trace.emit(
                        self.sim.now,
                        "ip",
                        "arp_fail",
                        host=self.host.name,
                        next_hop=str(next_hop),
                    )
                return
            src_mac = self.host.source_mac_for(nic, datagram.src)
            frame = EthernetFrame(mac, src_mac, ETHERTYPE_IPV4, datagram, datagram.size)
            nic.transmit(frame)

        self.host.arp.resolve(next_hop, nic, on_resolved)

    # Input path ------------------------------------------------------------------
    def receive(self, datagram: IPDatagram, nic: NIC) -> None:
        """Entry point from the host stack for inbound IPv4 frames."""
        for tap in self._taps:
            tap(datagram, nic)
        if datagram.dst in self.host.local_ips():
            self._local_deliver(datagram, nic)
            return
        if self.forwarding:
            self._forward(datagram, nic)
            return
        self._c_dropped_not_local.value += 1

    def _local_deliver(self, datagram: IPDatagram, nic: Optional[NIC]) -> None:
        handler = self._protocols.get(datagram.protocol)
        if handler is None:
            if self.sim.trace.enabled_for("ip"):
                self.sim.trace.emit(
                    self.sim.now,
                    "ip",
                    "no_protocol",
                    host=self.host.name,
                    protocol=datagram.protocol,
                )
            return
        self._c_delivered.value += 1
        handler(datagram, nic)

    def _forward(self, datagram: IPDatagram, in_nic: NIC) -> None:
        if datagram.ttl <= 1:
            self._c_dropped_ttl.value += 1
            return
        route = self.routes.lookup(datagram.dst)
        if route is None:
            self._c_dropped_no_route.value += 1
            return
        if route.nic is in_nic and route.next_hop is None:
            # Would go straight back out the arrival interface toward the
            # destination itself; a real router would emit an ICMP
            # redirect.  Forward anyway (hosts on the segment ignore the
            # duplicate), but count it.
            pass
        self._c_forwarded.value += 1
        self._transmit(datagram.decremented(), route)


def proto_name(protocol: int) -> str:
    """Human-readable protocol number (for traces and errors)."""
    return {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(protocol, str(protocol))

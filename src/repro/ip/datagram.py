"""IPv4 datagrams.

Payloads are protocol objects (TCP segment, UDP datagram) carrying their
own size accounting; the datagram adds the 20-byte IPv4 header.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.net.addresses import IPAddress

#: IP protocol numbers used by the simulator.
PROTO_TCP = 6
PROTO_UDP = 17

#: IPv4 header size (no options modelled).
IP_HEADER_SIZE = 20

#: Default initial TTL (Linux default).
DEFAULT_TTL = 64

_datagram_ids = itertools.count(1)


class IPDatagram:
    """An IPv4 datagram in flight."""

    __slots__ = ("src", "dst", "protocol", "payload", "payload_size", "ttl", "datagram_id")

    def __init__(
        self,
        src: IPAddress,
        dst: IPAddress,
        protocol: int,
        payload: Any,
        payload_size: int,
        ttl: int = DEFAULT_TTL,
    ) -> None:
        if payload_size < 0:
            raise ValueError(f"negative payload size {payload_size}")
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.payload_size = payload_size
        self.ttl = ttl
        self.datagram_id = next(_datagram_ids)

    @property
    def size(self) -> int:
        """Total datagram size including the IPv4 header."""
        return IP_HEADER_SIZE + self.payload_size

    def decremented(self) -> "IPDatagram":
        """A copy with TTL reduced by one (used when forwarding)."""
        copy = IPDatagram(
            self.src, self.dst, self.protocol, self.payload, self.payload_size,
            ttl=self.ttl - 1,
        )
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.protocol, self.protocol)
        return f"<IP#{self.datagram_id} {self.src}->{self.dst} {proto} {self.size}B ttl={self.ttl}>"

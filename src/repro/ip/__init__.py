"""IPv4: datagrams, routing, per-host layer with forwarding and taps."""

from repro.ip.datagram import (
    DEFAULT_TTL,
    IP_HEADER_SIZE,
    IPDatagram,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.ip.layer import IPLayer, proto_name
from repro.ip.routing import Route, RoutingTable

__all__ = [
    "DEFAULT_TTL",
    "IPDatagram",
    "IPLayer",
    "IP_HEADER_SIZE",
    "PROTO_TCP",
    "PROTO_UDP",
    "Route",
    "RoutingTable",
    "proto_name",
]

"""The cluster fabric: N primaries, a backup pool, clients, one switch.

Scales the switched topology of Figure 2 (see
:meth:`repro.harness.scenario.Scenario._build_switched`) from one
service to N:

* every primary *i* owns a **service identity** — service IP + a
  multicast SME so the switch fans client→server traffic out to whoever
  joined it (RFC 1812 routers may not learn a multicast MAC from an ARP
  reply, so the gateway gets a static entry per service);
* one **GVI/GME** pair on the gateway carries all server→client traffic;
  every pool host joins the GME, so it taps that direction for every
  service and filters in the engines;
* each **pool host** runs one :class:`~repro.sttcp.backup.STTCPBackup`
  engine per shadowed service under a
  :class:`~repro.sttcp.multi.MultiPrimaryShadowManager`; attaching a
  shadow wires the service VNIC, the switch-side SME membership and a
  bound listener, and returns the paired detach hook used at retirement;
* each service gets its **own client host** behind the gateway, so
  per-pair progress timelines stay separable in the trace stream.

Address plan — LAN ``10.1.0.0/24``: primaries ``.1+i``, pool hosts
``.64+j``, services ``.100+i``, gateway ``.254``, GVI ``.253``.
WAN ``192.168.9.0/24``: clients ``.10+i``, gateway ``.1``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.apps.server import request_response_server
from repro.cluster.arbiter import ClusterArbiter
from repro.cluster.scenario import ClusterSpec
from repro.errors import ConfigurationError
from repro.host.host import Host, make_gateway
from repro.net.addresses import IPAddress, fresh_multicast_mac, ip
from repro.net.medium import Cable, Hub
from repro.net.switch import Switch
from repro.sim.simulator import Simulator
from repro.sttcp.multi import MultiPrimaryShadowManager, ShadowedService
from repro.sttcp.primary import STTCPPrimary

SERVICE_PORT = 8000

GATEWAY_LAN_IP = ip("10.1.0.254")
GATEWAY_VIRTUAL_IP = ip("10.1.0.253")  # GVI
GATEWAY_WAN_IP = ip("192.168.9.1")
WAN_NET = ip("192.168.9.0")

#: Fabric size caps — the /24 address plan above, not a simulator limit.
MAX_PRIMARIES = 32
MAX_BACKUPS = 32


class ServiceNode:
    """One service: its primary host, identity, client, and engine."""

    def __init__(
        self,
        index: int,
        name: str,
        primary: Host,
        client: Host,
        service_ip: IPAddress,
        sme: Any,
        config: Any,
    ) -> None:
        self.index = index
        self.name = name
        self.primary = primary
        self.client = client
        self.service_ip = service_ip
        self.sme = sme
        self.config = config
        #: The live primary-side engine (rebound on promotion).
        self.engine: Optional[STTCPPrimary] = None
        #: The host currently acting as this service's primary.
        self.primary_host: Host = primary

    @property
    def channel_ip(self) -> IPAddress:
        return self.primary_host.interfaces[0].ip


class PoolNode:
    """One backup-pool host and its shadow manager."""

    def __init__(self, index: int, name: str, host: Host, nic: Any, port: Any) -> None:
        self.index = index
        self.name = name
        self.host = host
        self.nic = nic
        self.port = port
        self.manager = MultiPrimaryShadowManager(host)

    @property
    def channel_ip(self) -> IPAddress:
        return self.host.interfaces[0].ip


class ClusterFabric:
    """The built fabric: hosts wired, engines not yet assigned."""

    def __init__(self, spec: ClusterSpec, sim: Optional[Simulator] = None) -> None:
        if spec.primaries > MAX_PRIMARIES or spec.backups > MAX_BACKUPS:
            raise ConfigurationError(
                f"the /24 address plan holds {MAX_PRIMARIES} primaries / "
                f"{MAX_BACKUPS} backups; asked for {spec.primaries}/{spec.backups}"
            )
        self.spec = spec
        self.sim = sim or Simulator(seed=spec.seed)
        profile = spec.network_profile()
        self.profile = profile
        tcp_config = profile.tcp_config()
        self.arbiter = ClusterArbiter(self.sim, spec.arbiter_delay)
        self.arbiter.sabotaged = spec.arbiter_sabotaged
        self.switch = Switch(self.sim, forwarding_delay=profile.switch_delay)
        self.gateway = make_gateway(self.sim, "gateway")

        #: host/gateway name → its LAN cable (fault injection hooks here).
        self.lan_cables: Dict[str, Cable] = {}

        def lan_cable(nic: Any, label: str) -> Any:
            port = self.switch.new_port()
            self.lan_cables[label] = Cable(
                self.sim, nic, port, profile.link_rate_bps, delay=profile.hub_delay / 2
            )
            return port

        # Gateway: one LAN port on the switch, one WAN hub for all clients.
        gw_wan = self.gateway.add_nic("wan0")
        gw_lan = self.gateway.add_nic("lan0")
        self.wan = Hub(self.sim, profile.link_rate_bps, delay=profile.hub_delay)
        self.wan.attach(gw_wan)
        gw_port = lan_cable(gw_lan, "gateway")
        self.gateway.configure_ip(gw_wan, GATEWAY_WAN_IP, 24)
        self.gateway.configure_ip(gw_lan, GATEWAY_LAN_IP, 24)

        # GVI/GME: the shared server→client identity (one per fabric).
        self.gme = fresh_multicast_mac()
        self.gateway.add_vnic("gvi", GATEWAY_VIRTUAL_IP, self.gme, gw_lan)
        self.switch.join_multicast(self.gme, gw_port)

        self.services: List[ServiceNode] = []
        for i, name in enumerate(spec.service_names()):
            primary = Host(
                self.sim,
                f"p{i}",
                tcp_config=tcp_config,
                nic_processing_delay=profile.nic_processing_delay,
            )
            nic = primary.add_nic()
            port = lan_cable(nic, f"p{i}")
            primary.configure_ip(nic, ip(f"10.1.0.{1 + i}"), 24)
            service_ip = ip(f"10.1.0.{100 + i}")
            sme = fresh_multicast_mac()
            primary.add_vnic("svi", service_ip, sme, nic)
            self.switch.join_multicast(sme, port)
            self.gateway.arp.add_static(service_ip, sme)
            self._wire_wan_route(primary, nic)

            client = Host(self.sim, f"c{i}", tcp_config=tcp_config)
            client_nic = client.add_nic()
            self.wan.attach(client_nic)
            client.configure_ip(client_nic, ip(f"192.168.9.{10 + i}"), 24)
            client.ip_layer.add_default_route(client_nic, GATEWAY_WAN_IP)

            self.services.append(
                ServiceNode(i, name, primary, client, service_ip, sme, spec.sttcp_config(i))
            )

        self.backups: List[PoolNode] = []
        for j, name in enumerate(spec.backup_names()):
            host = Host(
                self.sim,
                name,
                tcp_config=tcp_config,
                nic_processing_delay=profile.nic_processing_delay,
            )
            nic = host.add_nic()
            port = lan_cable(nic, name)
            host.configure_ip(nic, ip(f"10.1.0.{64 + j}"), 24)
            # Tap the server→client direction of *every* service.
            nic.join_mac(self.gme)
            self.switch.join_multicast(self.gme, port)
            self._wire_wan_route(host, nic)
            self.backups.append(PoolNode(j, name, host, nic, port))

        self.service_by_name: Dict[str, ServiceNode] = {
            node.name: node for node in self.services
        }
        self.backup_by_name: Dict[str, PoolNode] = {
            node.name: node for node in self.backups
        }

    def _wire_wan_route(self, host: Host, nic: Any) -> None:
        """Server-side hosts reach the clients through the GVI/GME."""
        host.arp.add_static(GATEWAY_VIRTUAL_IP, self.gme)
        host.ip_layer.add_route(WAN_NET, 24, nic, next_hop=GATEWAY_VIRTUAL_IP)

    # Shadow wiring -----------------------------------------------------------------
    def attach_shadow(self, backup: PoolNode, service: ServiceNode) -> ShadowedService:
        """Wire ``backup`` to shadow ``service`` and create its engine.

        Wires the service VNIC (ARP-suppressed), the switch-side SME
        membership, and a listener bound to the service IP; registers the
        engine with the pool host's shadow manager, handing it the
        matching detach hook for retirement.
        """
        vnic = backup.host.add_vnic(
            f"svi-{service.name}", service.service_ip, service.sme, backup.nic,
            suppress_arp=True,
        )
        self.switch.join_multicast(service.sme, backup.port)
        listener_box: list = []
        backup.host.spawn(
            request_response_server(
                backup.host,
                SERVICE_PORT,
                service.service_ip,
                service_time=self.spec.service_time,
                listener_box=listener_box,
            ),
            f"{backup.name}.server:{service.name}",
        )

        def detach(_record: ShadowedService) -> None:
            for listener in listener_box:
                listener.close()
            backup.host.remove_vnic(vnic)
            self.switch.leave_multicast(service.sme, backup.port)
            backup.host.arp.unsuppress_ip(service.service_ip)

        return backup.manager.add_service(
            service.name,
            service.service_ip,
            SERVICE_PORT,
            service.channel_ip,
            service.config,
            primary_host=service.primary_host,
            power_switch=self.arbiter,
            on_retire=detach,
        )

    def create_primary_engine(
        self, service: ServiceNode, backup: PoolNode, channel: Any = None
    ) -> STTCPPrimary:
        """(Re)create the primary-side engine of ``service`` on its
        current primary host, heartbeating to ``backup``."""
        engine = STTCPPrimary(
            service.primary_host,
            service.service_ip,
            SERVICE_PORT,
            [backup.channel_ip],
            config=service.config,
            channel=channel,
            backup_hosts={backup.channel_ip.value: backup.host},
        )
        service.engine = engine
        return engine

    # Deployment --------------------------------------------------------------------
    def start_services(self) -> None:
        """Launch every primary's listener process and engine, and every
        pool host's shadow manager."""
        for service in self.services:
            request = request_response_server(
                service.primary,
                SERVICE_PORT,
                service.service_ip,
                service_time=self.spec.service_time,
            )
            service.primary.spawn(request, f"{service.primary.name}.server")
            if service.engine is not None:
                service.engine.start()
        for backup in self.backups:
            backup.manager.start()

    @property
    def server_hosts(self) -> List[Host]:
        """Every host that may legitimately own a service identity."""
        return [node.primary for node in self.services] + [
            node.host for node in self.backups
        ]

"""Replacement-backup election: refill the pool after a takeover.

A takeover *consumes* a pool host: the instant one of its shadow engines
goes active, that host is a primary and can no longer shadow anyone
(its TCP layer now answers unmatched segments, its service VNIC answers
ARP).  The coordinator runs synchronously inside the takeover event —
hooked through :attr:`MultiPrimaryShadowManager.on_takeover` — so no
simulation event can ever observe a consumed host still acting as a
backup:

1. the consumed host's **sibling engines retire** (their shadows abort
   locally, their VNICs/SME memberships/listeners detach), orphaning the
   primaries they shadowed;
2. the **taken-over service** gets a fresh primary-side engine on the
   consumed host (adopting the ex-shadow connections, reusing the
   engine's channel socket) plus a newly elected pool backup, which
   joins mid-stream through the snapshot handoff
   (:meth:`STTCPBackup.request_sync`);
3. every **orphaned primary** gets a newly elected backup too:
   :meth:`STTCPPrimary.replace_backup` swaps the monitors before the
   orphaned primary can even suspect its old backup, and the new engine
   requests a snapshot sync.

Elections are deterministic (least-loaded, name tie-break — see
:class:`~repro.cluster.pool.BackupPool`).  When the pool is exhausted
the affected primary simply runs non-fault-tolerant; the failure is
recorded, never raised mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.pool import BackupPool
from repro.cluster.topology import ClusterFabric, PoolNode, ServiceNode
from repro.sttcp.multi import ShadowedService


@dataclass
class ElectionRecord:
    """One service's backup replacement, for the run report."""

    service: str
    consumed_backup: str
    new_backup: Optional[str]  # None: pool exhausted, election failed
    at: float
    #: "takeover": the service whose backup went active; "orphan": a
    #: sibling service that lost its (consumed) backup.
    kind: str = "orphan"
    sync_done_at: Optional[float] = None

    @property
    def sync_latency(self) -> Optional[float]:
        if self.sync_done_at is None:
            return None
        return self.sync_done_at - self.at


@dataclass
class ElectionReport:
    records: List[ElectionRecord] = field(default_factory=list)
    retired_services: int = 0

    def for_service(self, name: str) -> Optional[ElectionRecord]:
        for record in self.records:
            if record.service == name:
                return record
        return None

    @property
    def failed(self) -> List[ElectionRecord]:
        return [r for r in self.records if r.new_backup is None]

    @property
    def all_synced(self) -> bool:
        return all(
            r.sync_done_at is not None for r in self.records if r.new_backup is not None
        )


class ElectionCoordinator:
    """Watches every pool host; rebuilds shadowing after a takeover."""

    def __init__(self, fabric: ClusterFabric, pool: BackupPool) -> None:
        self.fabric = fabric
        self.pool = pool
        self.sim = fabric.sim
        self.report = ElectionReport()
        #: service name → the (ex-backup) engine that took it over.
        self.takeover_engines: dict = {}
        #: Snapshot-sync latencies, for fleet percentile queries (TSDB /
        #: SLO).  One registry-wide histogram: elections are fabric
        #: events, not per-host ones.
        self._h_election_sync = self.sim.metrics.histogram("cluster.election_sync")
        for node in fabric.backups:
            node.manager.on_takeover = (
                lambda service, record, n=node: self._backup_consumed(n, service, record)
            )

    # The takeover path ---------------------------------------------------------------
    def _backup_consumed(
        self, consumed: PoolNode, service_name: str, record: ShadowedService
    ) -> None:
        # Release the taken-over service *before* consuming the host, so
        # the orphan list holds only the siblings that lost their shadow.
        self.pool.release(service_name)
        orphaned = self.pool.consume(consumed.name)
        consumed.manager.release_service(service_name)
        if self.sim.trace.enabled_for("cluster"):
            fields = {
                "consumed": consumed.name,
                "service": service_name,
                "orphaned": len(orphaned),
            }
            # The hook runs synchronously inside the takeover event, so
            # the backup's dynamic flow context is still set: the
            # election joins the failover's causal chain.
            if self.sim.trace.current_flow is not None:
                fields["flow"] = self.sim.trace.current_flow
            self.sim.trace.emit(
                self.sim.now, "cluster", "election_begin", **fields
            )
        # 1. Retire the siblings first: the consumed host must stop
        #    tapping/acking the orphaned primaries in this same instant.
        for name in consumed.manager.shadowed_names():
            consumed.manager.retire_service(name)
            self.report.retired_services += 1

        # 2. The taken-over service: the consumed host is its primary now.
        service = self.fabric.service_by_name[service_name]
        service.primary_host = consumed.host
        self.takeover_engines[service_name] = record.engine
        self._replace_backup_for(service, consumed, record, kind="takeover")

        # 3. Each orphaned primary gets a replacement backup.
        for name in orphaned:
            self._replace_backup_for(
                self.fabric.service_by_name[name], consumed, None, kind="orphan"
            )

    def _replace_backup_for(
        self,
        service: ServiceNode,
        consumed: PoolNode,
        takeover_record: Optional[ShadowedService],
        kind: str,
    ) -> None:
        winner_name = self.pool.elect(service.name, exclude=[consumed.name])
        record = ElectionRecord(
            service=service.name,
            consumed_backup=consumed.name,
            new_backup=winner_name,
            at=self.sim.now,
            kind=kind,
        )
        self.report.records.append(record)
        if winner_name is None:
            # Pool exhausted: the primary runs on without a backup.  For
            # an orphan that means its monitor will suspect the consumed
            # host and drop to non-fault-tolerant mode on its own.
            if self.sim.trace.enabled_for("cluster"):
                self.sim.trace.emit(
                    self.sim.now, "cluster", "election_exhausted", service=service.name
                )
            return
        winner = self.fabric.backup_by_name[winner_name]

        if kind == "takeover":
            # New primary-side engine on the consumed host, adopting the
            # ex-shadow connections and reusing the engine's channel
            # socket (same per-service port).
            old_engine = takeover_record.engine
            engine = self.fabric.create_primary_engine(
                service, winner, channel=old_engine.channel
            )
            for tcb in old_engine.shadow_connections:
                engine.adopt_connection(tcb)
            engine.start()
            old_engine.promoted_primary = engine
        else:
            # The orphaned primary is alive: swap its monitors before it
            # can suspect the consumed backup.
            service.engine.replace_backup(
                consumed.channel_ip, winner.channel_ip, new_host=winner.host
            )

        shadow = self.fabric.attach_shadow(winner, service)
        # The snapshot handoff spans from the sync request to the
        # converged callback; its span carries the failover's flow id so
        # the resync hop shows up in the causal chain.
        resync_sid: Optional[int] = None
        if self.sim.trace.enabled_for("cluster"):
            fields = {"service": service.name, "backup": winner_name, "kind": kind}
            if self.sim.trace.current_flow is not None:
                fields["flow"] = self.sim.trace.current_flow
            resync_sid = self.sim.trace.begin_span(
                self.sim.now, "cluster", "resync", **fields
            )
        shadow.engine.on_sync_done = (
            lambda _engine, r=record, sid=resync_sid: self._sync_finished(r, sid)
        )
        shadow.engine.request_sync()
        if self.sim.trace.enabled_for("cluster"):
            self.sim.trace.emit(
                self.sim.now,
                "cluster",
                "elected",
                service=service.name,
                backup=winner_name,
                kind=kind,
            )

    def _sync_finished(
        self, record: ElectionRecord, resync_sid: Optional[int] = None
    ) -> None:
        record.sync_done_at = self.sim.now
        latency = record.sync_latency
        if latency is not None:
            self._h_election_sync.observe(latency)
        if resync_sid is not None:
            self.sim.trace.end_span(
                self.sim.now, "cluster", "resync", resync_sid, latency=latency
            )
        if self.sim.trace.enabled_for("cluster"):
            self.sim.trace.emit(
                self.sim.now,
                "cluster",
                "shadow_converged",
                service=record.service,
                backup=record.new_backup,
                latency=record.sync_latency,
            )

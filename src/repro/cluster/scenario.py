"""Declarative cluster scenarios: JSON in, validated spec out.

A scenario file under ``configs/cluster/`` describes one reproducible
fabric run — how many primaries, the backup pool and its per-host
shadow capacity, the ST-TCP tunables, the per-pair client workload, and
the mid-run crash — in the style of the districting repo's
``config-tableN.json`` grids: the file *is* the experiment's identity.
The harness content-hashes the parsed spec (not the file path), so the
same JSON always lands on the same result-store cell.

Schema (all keys optional unless noted)::

    {
      "name": "smoke",                # required
      "primaries": 2,                 # required, >= 1
      "backups": 2,                   # required, >= 1
      "capacity": 2,                  # shadows per pool host, default 1
      "assignment": {"pool0": ["s0"]} # optional explicit plan (else least-loaded)
      "profile": "fast_lan",          # or "paper_testbed"
      "sttcp": {"hb_interval": 0.05, ...},   # STTCPConfig field subset
      "workload": {"exchanges": 30, "response_size": 0, "service_time": 0.0},
      "crash": {"primary": 0, "at": 0.6},    # which primary, absolute sim time
      "arbiter": {"actuation_delay": 0.01, "sabotaged": false},
      "deadline": 60.0,
      "seed": 7
    }

Unknown keys anywhere are rejected — a typo must fail loudly, not run a
subtly different scenario.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.harness.calibrate import FAST_LAN, PAPER_TESTBED, NetworkProfile
from repro.sttcp.config import STTCPConfig

PROFILES: Dict[str, NetworkProfile] = {
    "fast_lan": FAST_LAN,
    "paper_testbed": PAPER_TESTBED,
}

#: First UDP channel port; service *i* uses ``CHANNEL_PORT_BASE + i`` so
#: one pool host can run one engine (one socket) per shadowed primary.
CHANNEL_PORT_BASE = 39000

_TOP_KEYS = {
    "name",
    "primaries",
    "backups",
    "capacity",
    "assignment",
    "profile",
    "sttcp",
    "workload",
    "crash",
    "arbiter",
    "deadline",
    "seed",
}
_WORKLOAD_KEYS = {"exchanges", "response_size", "service_time"}
_CRASH_KEYS = {"primary", "at"}
_ARBITER_KEYS = {"actuation_delay", "sabotaged"}
_STTCP_KEYS = {field.name for field in dataclasses.fields(STTCPConfig)} - {
    "channel_port",  # per-service, owned by the spec — not scriptable
    "stonith_delay",  # the arbiter section owns the actuation delay
}


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """One validated cluster scenario (pure data, JSON-able)."""

    name: str
    primaries: int
    backups: int
    capacity: int = 1
    assignment: Optional[Dict[str, List[str]]] = None
    profile: str = "fast_lan"
    sttcp: Dict[str, Any] = dataclasses.field(default_factory=dict)
    exchanges: int = 30
    #: 0 → the Echo application; > 0 → Interactive-style sized responses.
    response_size: int = 0
    service_time: float = 0.0
    crash_primary: int = 0
    crash_at: float = 0.6
    arbiter_delay: float = 0.010
    arbiter_sabotaged: bool = False
    deadline: float = 60.0
    seed: int = 7

    # Derived naming ----------------------------------------------------------------
    def service_names(self) -> List[str]:
        return [f"s{i}" for i in range(self.primaries)]

    def backup_names(self) -> List[str]:
        return [f"pool{j}" for j in range(self.backups)]

    def network_profile(self) -> NetworkProfile:
        return PROFILES[self.profile]

    def workload(self) -> Any:
        """The per-pair client application (Echo, or sized responses)."""
        from repro.apps.workload import AppWorkload, echo_workload

        if self.response_size <= 0:
            return echo_workload(self.exchanges)
        return AppWorkload(
            "interactive",
            exchanges=self.exchanges,
            response_size=self.response_size,
            service_time=self.service_time,
        )

    def sttcp_config(self, service_index: int) -> STTCPConfig:
        """The per-service config: shared tunables, private channel port."""
        return STTCPConfig(
            channel_port=CHANNEL_PORT_BASE + service_index,
            stonith_delay=self.arbiter_delay,
            **self.sttcp,
        )

    def params(self) -> Dict[str, Any]:
        """JSON-able identity for the result store's content hash."""
        return dataclasses.asdict(self)


def _require_keys(section: Dict[str, Any], allowed: set, where: str) -> None:
    unknown = set(section) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown {where} key(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def spec_from_dict(raw: Dict[str, Any]) -> ClusterSpec:
    """Validate a parsed scenario document into a :class:`ClusterSpec`."""
    if not isinstance(raw, dict):
        raise ConfigurationError(f"scenario must be a JSON object, got {type(raw).__name__}")
    _require_keys(raw, _TOP_KEYS, "scenario")
    for key in ("name", "primaries", "backups"):
        if key not in raw:
            raise ConfigurationError(f"scenario is missing required key {key!r}")
    primaries = int(raw["primaries"])
    backups = int(raw["backups"])
    capacity = int(raw.get("capacity", 1))
    if primaries < 1:
        raise ConfigurationError(f"primaries must be >= 1, got {primaries}")
    if backups < 1:
        raise ConfigurationError(f"backups must be >= 1, got {backups}")
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if primaries > backups * capacity:
        raise ConfigurationError(
            f"{primaries} primaries do not fit {backups} backups x capacity {capacity}"
        )
    profile = raw.get("profile", "fast_lan")
    if profile not in PROFILES:
        raise ConfigurationError(
            f"unknown profile {profile!r}; known: {sorted(PROFILES)}"
        )
    sttcp = dict(raw.get("sttcp", {}))
    _require_keys(sttcp, _STTCP_KEYS, "sttcp")
    workload = dict(raw.get("workload", {}))
    _require_keys(workload, _WORKLOAD_KEYS, "workload")
    crash = dict(raw.get("crash", {}))
    _require_keys(crash, _CRASH_KEYS, "crash")
    arbiter = dict(raw.get("arbiter", {}))
    _require_keys(arbiter, _ARBITER_KEYS, "arbiter")
    crash_primary = int(crash.get("primary", 0))
    if not 0 <= crash_primary < primaries:
        raise ConfigurationError(
            f"crash.primary must name a primary in [0, {primaries}), got {crash_primary}"
        )
    assignment = raw.get("assignment")
    if assignment is not None:
        assignment = {k: list(v) for k, v in assignment.items()}
        _validate_assignment(assignment, primaries, backups, capacity)
    spec = ClusterSpec(
        name=str(raw["name"]),
        primaries=primaries,
        backups=backups,
        capacity=capacity,
        assignment=assignment,
        profile=profile,
        sttcp=sttcp,
        exchanges=int(workload.get("exchanges", 30)),
        response_size=int(workload.get("response_size", 0)),
        service_time=float(workload.get("service_time", 0.0)),
        crash_primary=crash_primary,
        crash_at=float(crash.get("at", 0.6)),
        arbiter_delay=float(arbiter.get("actuation_delay", 0.010)),
        arbiter_sabotaged=bool(arbiter.get("sabotaged", False)),
        deadline=float(raw.get("deadline", 60.0)),
        seed=int(raw.get("seed", 7)),
    )
    # Fail at load time, not mid-run, if the tunables are inconsistent.
    spec.sttcp_config(0).validate()
    return spec


def _validate_assignment(
    assignment: Dict[str, List[str]], primaries: int, backups: int, capacity: int
) -> None:
    services = {f"s{i}" for i in range(primaries)}
    pool = {f"pool{j}" for j in range(backups)}
    unknown_backups = set(assignment) - pool
    if unknown_backups:
        raise ConfigurationError(f"assignment names unknown backup(s) {sorted(unknown_backups)}")
    seen: set = set()
    for backup, assigned in assignment.items():
        if len(assigned) > capacity:
            raise ConfigurationError(
                f"assignment overloads {backup!r}: {len(assigned)} services, capacity {capacity}"
            )
        for service in assigned:
            if service not in services:
                raise ConfigurationError(f"assignment names unknown service {service!r}")
            if service in seen:
                raise ConfigurationError(f"service {service!r} assigned twice")
            seen.add(service)
    missing = services - seen
    if missing:
        raise ConfigurationError(f"assignment leaves service(s) {sorted(missing)} unshadowed")


def spec_from_params(params: Dict[str, Any]) -> ClusterSpec:
    """Rebuild a spec from :meth:`ClusterSpec.params` output (grid cells)."""
    return ClusterSpec(**params)


def load_scenario(path: Any) -> ClusterSpec:
    """Load and validate one scenario JSON file."""
    text = Path(path).read_text()
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}") from None
    try:
        return spec_from_dict(raw)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from None

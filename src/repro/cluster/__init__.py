"""repro.cluster — backup pools, N:K shadowing, and a failover fabric.

Scales the paper's one-primary/one-backup pair to a cluster: N primaries
share a pool of M backup hosts (each shadowing up to K services), a
fabric-level arbiter serializes STONITH, and an election coordinator
re-establishes shadowing after a takeover consumes a pool host.  See
``docs/CLUSTER.md``.
"""

from repro.cluster.arbiter import ClusterArbiter
from repro.cluster.election import ElectionCoordinator, ElectionRecord, ElectionReport
from repro.cluster.invariants import (
    DualPrimaryMonitor,
    DualPrimaryViolation,
    InvariantReport,
    election_budget,
    takeover_budget,
)
from repro.cluster.pool import BackupPool, plan_assignment
from repro.cluster.run import ClusterRun, run_cluster
from repro.cluster.scenario import (
    ClusterSpec,
    load_scenario,
    spec_from_dict,
    spec_from_params,
)
from repro.cluster.topology import SERVICE_PORT, ClusterFabric, PoolNode, ServiceNode

__all__ = [
    "BackupPool",
    "ClusterArbiter",
    "ClusterFabric",
    "ClusterRun",
    "ClusterSpec",
    "DualPrimaryMonitor",
    "DualPrimaryViolation",
    "ElectionCoordinator",
    "ElectionRecord",
    "ElectionReport",
    "InvariantReport",
    "PoolNode",
    "SERVICE_PORT",
    "ServiceNode",
    "election_budget",
    "load_scenario",
    "plan_assignment",
    "run_cluster",
    "spec_from_dict",
    "spec_from_params",
    "takeover_budget",
]

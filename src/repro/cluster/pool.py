"""Backup-pool assignment: which pool host shadows which primary.

The paper dedicates one backup to one primary; a cluster instead keeps a
pool of M backup hosts, each shadowing up to ``capacity`` primaries
(N:K shadowing — every shadowed primary gets its own
:class:`~repro.sttcp.backup.STTCPBackup` engine on the pool host, see
:mod:`repro.sttcp.multi`).  This module is pure bookkeeping: it plans the
initial assignment and tracks the pool through takeovers (a backup that
takes over is *consumed* — it is a primary now and leaves the pool) and
elections (an orphaned primary is reassigned to the least-loaded
remaining pool host).

Everything is deterministic: ties break on the pool host's name, so the
same scenario file always produces the same assignment and the same
election outcomes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError


def plan_assignment(
    services: Sequence[str],
    backups: Sequence[str],
    capacity: int,
) -> Dict[str, List[str]]:
    """Least-loaded round-robin: map each service onto one pool backup.

    Deterministic (ties break on backup name); raises
    :class:`ConfigurationError` when the pool cannot hold all services.
    """
    if capacity < 1:
        raise ConfigurationError(f"backup capacity must be >= 1, got {capacity}")
    if len(services) > len(backups) * capacity:
        raise ConfigurationError(
            f"{len(services)} services do not fit a pool of {len(backups)} "
            f"backups with capacity {capacity}"
        )
    assignment: Dict[str, List[str]] = {name: [] for name in backups}
    for service in services:
        target = min(sorted(assignment), key=lambda name: len(assignment[name]))
        assignment[target].append(service)
    return assignment


class BackupPool:
    """Live pool state: assignments, capacity, consumed hosts, elections."""

    def __init__(self, backups: Iterable[str], capacity: int) -> None:
        self.capacity = capacity
        self.assignments: Dict[str, List[str]] = {name: [] for name in backups}
        #: Hosts consumed by a takeover (now primaries, out of the pool).
        self.consumed: List[str] = []
        self.elections_held = 0
        self.elections_failed = 0

    # Queries ----------------------------------------------------------------------
    def backup_of(self, service: str) -> Optional[str]:
        for name, services in self.assignments.items():
            if service in services:
                return name
        return None

    def load(self, backup: str) -> int:
        return len(self.assignments[backup])

    def free_slots(self) -> int:
        return sum(
            self.capacity - len(services)
            for name, services in self.assignments.items()
            if name not in self.consumed
        )

    # Mutations --------------------------------------------------------------------
    def assign(self, service: str, backup: str) -> None:
        if backup in self.consumed:
            raise ConfigurationError(f"backup {backup!r} was consumed by a takeover")
        if self.load(backup) >= self.capacity:
            raise ConfigurationError(f"backup {backup!r} is at capacity")
        if self.backup_of(service) is not None:
            raise ConfigurationError(f"service {service!r} is already assigned")
        self.assignments[backup].append(service)

    def release(self, service: str) -> Optional[str]:
        """Drop a service from whoever shadows it; returns the ex-backup."""
        backup = self.backup_of(service)
        if backup is not None:
            self.assignments[backup].remove(service)
        return backup

    def consume(self, backup: str) -> List[str]:
        """A takeover consumed ``backup``: remove it from the pool and
        return the services it leaves orphaned (its other assignments)."""
        if backup not in self.assignments:
            raise ConfigurationError(f"unknown backup {backup!r}")
        if backup in self.consumed:
            return []
        self.consumed.append(backup)
        orphaned = list(self.assignments[backup])
        self.assignments[backup] = []
        return orphaned

    def elect(self, service: str, exclude: Sequence[str] = ()) -> Optional[str]:
        """Pick the least-loaded live pool host with a free slot.

        Returns None when the pool is exhausted (the caller records an
        election failure; the affected primary runs non-fault-tolerant).
        """
        self.elections_held += 1
        candidates = [
            name
            for name in sorted(self.assignments)
            if name not in self.consumed
            and name not in exclude
            and self.load(name) < self.capacity
        ]
        if not candidates:
            self.elections_failed += 1
            return None
        winner = min(candidates, key=lambda name: self.load(name))
        self.assignments[winner].append(service)
        return winner

    def summary(self) -> Dict[str, object]:
        return {
            "assignments": {k: list(v) for k, v in sorted(self.assignments.items())},
            "consumed": list(self.consumed),
            "elections_held": self.elections_held,
            "elections_failed": self.elections_failed,
        }

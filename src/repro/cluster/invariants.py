"""Machine-checked cluster invariants.

A cluster run is only evidence if its safety claims are checked by the
machine, not eyeballed from a log:

* **no dual-primary, ever** — at no simulated instant do two live hosts
  both own a service identity in the active stance (IP configured and
  ARP for it unsuppressed).  Polled by :class:`DualPrimaryMonitor` at a
  granularity well below the failure detector's, so any fencing hole at
  least ``poll_interval`` wide is caught.  The arbiter-sabotage mutation
  test (``tests/cluster/test_mutation.py``) proves the monitor actually
  fires when fencing is disabled.
* **exactly-once byte streams** — every client verifies every echoed
  byte at its expected stream offset (duplication and loss both corrupt
  the verification); checked per pair by the run loop.
* **bounded takeover + election** — detection, fencing, takeover, and
  replacement-backup shadow sync must all complete within budgets
  derived from the scenario's own tunables; computed here from the run
  artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.cluster.topology import ClusterFabric


@dataclass
class DualPrimaryViolation:
    time: float
    service: str
    owners: List[str]


class DualPrimaryMonitor:
    """Polls every service identity for multiple active owners.

    A host "actively owns" a service IP when it is up, the IP is local
    (VNIC present), and its ARP service would answer for it — exactly
    the stance a takeover switches on and fencing must make exclusive.
    """

    def __init__(self, fabric: ClusterFabric, poll_interval: float = 0.005) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.poll_interval = poll_interval
        self.violations: List[DualPrimaryViolation] = []
        self.polls = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self.sim.schedule(self.poll_interval, self._poll)

    def stop(self) -> None:
        self._running = False

    def owners_of(self, service: Any) -> List[str]:
        return [
            host.name
            for host in self.fabric.server_hosts
            if host.is_up
            and service.service_ip in host.local_ips()
            and service.service_ip not in host.arp.suppressed_ips
        ]

    def _poll(self) -> None:
        if not self._running:
            return
        self.polls += 1
        for service in self.fabric.services:
            owners = self.owners_of(service)
            if len(owners) > 1:
                self.violations.append(
                    DualPrimaryViolation(self.sim.now, service.name, owners)
                )
                if self.sim.trace.enabled_for("cluster"):
                    self.sim.trace.emit(
                        self.sim.now,
                        "cluster",
                        "dual_primary",
                        service=service.name,
                        owners=",".join(owners),
                    )
        self.sim.schedule(self.poll_interval, self._poll)

    def summary(self) -> Dict[str, Any]:
        return {
            "polls": self.polls,
            "violations": [
                {"time": v.time, "service": v.service, "owners": v.owners}
                for v in self.violations[:16]
            ],
            "violation_count": len(self.violations),
        }


@dataclass
class InvariantReport:
    """The verdict of one cluster run, invariant by invariant."""

    no_dual_primary: bool
    exactly_once_streams: bool
    bounded_takeover: bool
    bounded_election: bool
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        return (
            self.no_dual_primary
            and self.exactly_once_streams
            and self.bounded_takeover
            and self.bounded_election
        )

    def to_record(self) -> Dict[str, Any]:
        return {
            "no_dual_primary": self.no_dual_primary,
            "exactly_once_streams": self.exactly_once_streams,
            "bounded_takeover": self.bounded_takeover,
            "bounded_election": self.bounded_election,
            "all_hold": self.all_hold,
            **self.details,
        }


def takeover_budget(config: Any) -> float:
    """The scenario-derived bound on crash → takeover: full detection
    window (3–4 heartbeats, plus jitter), fencing actuation (which the
    arbiter may serialize behind one other fence), and scheduling slack."""
    detection = (config.hb_miss_threshold + 1) * config.hb_interval
    detection *= 1.0 + config.hb_jitter
    return detection + 2 * config.stonith_delay + 0.050


def election_budget(config: Any) -> float:
    """Bound on takeover → replacement shadows synced: the handoff only
    needs quiescence retries plus channel round-trips."""
    return 10 * config.retx_request_timeout + 0.100

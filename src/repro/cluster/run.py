"""Run one cluster scenario end to end and report the evidence.

The run loop is deliberately thin: everything interesting lives in the
fabric (:mod:`repro.cluster.topology`), the election coordinator
(:mod:`repro.cluster.election`), and the invariant monitors
(:mod:`repro.cluster.invariants`).  This module assembles them, drives
one client per pair through the scenario's workload across the scripted
mid-run primary crash, and folds the artefacts into a single JSON-able
record for the result store:

* per-pair client verification (the exactly-once-streams invariant),
* crash → detection → takeover latencies on the crashed pair,
* the election report (who replaced whom, snapshot-sync latency),
* the dual-primary monitor's verdict,
* per-pair failover timelines (phase decomposition via ``repro.obs``
  for the crashed pair, progress gaps for the healthy ones).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.apps.client import client_session
from repro.cluster.election import ElectionCoordinator
from repro.cluster.invariants import (
    DualPrimaryMonitor,
    InvariantReport,
    election_budget,
    takeover_budget,
)
from repro.cluster.pool import BackupPool, plan_assignment
from repro.cluster.scenario import ClusterSpec
from repro.cluster.topology import SERVICE_PORT, ClusterFabric
from repro.faults.injection import CrashInjector
from repro.metrics import perf
from repro.obs.spans import causal_chains
from repro.obs.timeline import (
    TimelineCollector,
    reconstruct_cluster_phases,
    reconstruct_failover,
)
from repro.obs.timeseries import TimeSeriesDB

#: Clients start this long after the service fabric comes up.
CLIENT_START = 0.1

#: TSDB sampling cadence for cluster runs — fine enough to catch the
#: sub-100ms failover phases, cold enough to stay off every hot path.
TSDB_INTERVAL = 0.025

#: Histogram series whose percentile digests are embedded into the run
#: record (the SLO engine reads records, possibly from the store's
#: cache, so the digests must travel with them).
TSDB_DIGEST_SERIES = ("cluster.election_sync",)

#: Per-client spawn stagger, so N identical workloads don't run in
#: artificial lockstep on the shared WAN hub.
CLIENT_STAGGER = 0.003


class ClusterRun:
    """An assembled, not-yet-driven cluster scenario."""

    def __init__(self, spec: ClusterSpec, sim: Optional[Any] = None) -> None:
        self.spec = spec
        self.fabric = ClusterFabric(spec, sim=sim)
        self.sim = self.fabric.sim
        plan = spec.assignment or plan_assignment(
            spec.service_names(), spec.backup_names(), spec.capacity
        )
        self.pool = BackupPool(spec.backup_names(), spec.capacity)
        for backup_name in sorted(plan):
            backup = self.fabric.backup_by_name[backup_name]
            for service_name in plan[backup_name]:
                service = self.fabric.service_by_name[service_name]
                self.pool.assign(service_name, backup_name)
                self.fabric.attach_shadow(backup, service)
                self.fabric.create_primary_engine(service, backup)
        self.coordinator = ElectionCoordinator(self.fabric, self.pool)
        self.monitor = DualPrimaryMonitor(self.fabric)
        self.collector = TimelineCollector().attach(self.sim.trace)
        self.tsdb = TimeSeriesDB(self.sim, interval=TSDB_INTERVAL)
        self.crash_injector = CrashInjector(self.sim)
        self.results: Dict[str, Any] = {}

    # Drive -------------------------------------------------------------------------
    def _pair_process(self, service: Any) -> Generator:
        result = yield from client_session(
            service.client, (service.service_ip, SERVICE_PORT), self.spec.workload()
        )
        self.results[service.name] = result

    def begin(self, schedule_crash: bool = True) -> Any:
        """Deploy the fabric: engines, monitor, clients (at
        ``CLIENT_START``), and — unless a caller injects its own faults,
        as the cluster drills do — the scripted crash.  Returns the
        :class:`ServiceNode` the scenario's crash targets."""
        self.fabric.start_services()
        self.monitor.start()
        self.tsdb.start()
        crashed = self.fabric.services[self.spec.crash_primary]
        if schedule_crash:
            self.crash_injector.crash_at(crashed.primary, self.spec.crash_at)
        for service in self.fabric.services:
            self.sim.schedule_at(
                CLIENT_START + service.index * CLIENT_STAGGER,
                service.client.spawn,
                self._pair_process(service),
                f"{service.client.name}.session",
            )
        return crashed

    def execute(self) -> Dict[str, Any]:
        spec = self.spec
        sim = self.sim
        crashed = self.begin()
        deadline = spec.deadline

        def done() -> bool:
            return (
                len(self.results) == len(self.fabric.services)
                and self.coordinator.report.all_synced
            )

        while not done() and sim.now < deadline:
            sim.run(until=sim.now + 0.050)
        self.monitor.stop()
        self.tsdb.stop()
        perf.note_simulation(sim)
        return self._assemble(crashed)

    # Reporting ---------------------------------------------------------------------
    def pair_timeline(self, service_name: str) -> Optional[Any]:
        """Public per-service timeline (``repro timeline --scenario``)."""
        service = self.fabric.service_by_name[service_name]
        return self._pair_timeline(service.client.name)

    def _pair_timeline(self, client_name: str) -> Optional[Any]:
        """Reconstruct the failover phases from this pair's viewpoint:
        its own client's progress checkpoints, everyone's cold markers
        (only the crashed pair has suspicion/takeover events)."""
        filtered = [
            r
            for r in self.collector.records
            if r.category != "app" or r.fields.get("host") == client_name
        ]
        return reconstruct_failover(filtered)

    def _assemble(self, crashed: Any) -> Dict[str, Any]:
        spec = self.spec
        takeover_engine = self.coordinator.takeover_engines.get(crashed.name)
        detection = takeover = float("nan")
        if takeover_engine is not None:
            if takeover_engine.detection_time is not None:
                detection = takeover_engine.detection_time - spec.crash_at
            if takeover_engine.takeover_time is not None:
                takeover = takeover_engine.takeover_time - spec.crash_at

        pairs: List[Dict[str, Any]] = []
        failures: List[str] = []
        for service in self.fabric.services:
            result = self.results.get(service.name)
            if result is None:
                pairs.append({"service": service.name, "completed": False})
                failures.append(f"{service.name}: client never finished")
                continue
            ok = result.verified and result.error is None
            if not ok:
                failures.append(f"{service.name}: {result.error or 'corrupt stream'}")
            pairs.append(
                {
                    "service": service.name,
                    "completed": True,
                    "verified": ok,
                    "exchanges": result.exchanges_done,
                    "total_time": result.total_time,
                    "max_gap": result.max_gap,
                }
            )

        timelines: Dict[str, Any] = {}
        for service in self.fabric.services:
            if service.name == crashed.name:
                timeline = self._pair_timeline(service.client.name)
                timelines[service.name] = (
                    timeline.summary() if timeline is not None else None
                )
            else:
                result = self.results.get(service.name)
                timelines[service.name] = {
                    "max_gap": result.max_gap if result is not None else None
                }

        config = crashed.config
        elections = self.coordinator.report
        degraded = (
            len(takeover_engine.degraded_connections)
            if takeover_engine is not None
            else 0
        )
        sync_latencies = [
            r.sync_latency
            for r in elections.records
            if r.sync_latency is not None
        ]
        invariants = InvariantReport(
            no_dual_primary=not self.monitor.violations,
            exactly_once_streams=not failures and degraded == 0,
            bounded_takeover=takeover == takeover and takeover <= takeover_budget(config),
            bounded_election=bool(elections.records)
            and not elections.failed
            and elections.all_synced
            and all(lat <= election_budget(config) for lat in sync_latencies),
            details={
                "takeover_budget": takeover_budget(config),
                "election_budget": election_budget(config),
                "dual_primary": self.monitor.summary(),
            },
        )
        # Fabric-level phase decomposition + the takeover's causal chain
        # (detection → fence → election → resync → resume), both from
        # the collector's cold-path records.
        cluster_phases = reconstruct_cluster_phases(self.collector.records)
        chains = causal_chains(self.collector.records)
        main_chain: List[Dict[str, Any]] = []
        if chains:
            main_flow = max(chains, key=lambda flow: (len(chains[flow]), -flow))
            main_chain = chains[main_flow]

        # Percentile digests travel inside the record: the SLO engine may
        # be fed a cached record from the store, long after this TSDB
        # object is gone.
        digests = {
            name: self.tsdb.digest(name)
            for name in TSDB_DIGEST_SERIES
            if self.tsdb.series(name) is not None
        }

        arbiter = self.fabric.arbiter
        return {
            "scenario": spec.name,
            "primaries": spec.primaries,
            "backups": spec.backups,
            "capacity": spec.capacity,
            "crashed_service": crashed.name,
            "crash_at": spec.crash_at,
            "detection_latency": detection,
            "takeover_latency": takeover,
            "degraded": degraded,
            "clients_verified": not failures,
            "client_failures": failures[:10],
            "elections": [
                {
                    "service": r.service,
                    "consumed_backup": r.consumed_backup,
                    "new_backup": r.new_backup,
                    "kind": r.kind,
                    "at": r.at,
                    "sync_latency": r.sync_latency,
                }
                for r in elections.records
            ],
            "retired_services": elections.retired_services,
            "pool": self.pool.summary(),
            "arbiter": {
                "fence_requests": arbiter.fence_requests,
                "cuts_performed": arbiter.cuts_performed,
                "requests_coalesced": arbiter.requests_coalesced,
                "max_queue_depth": arbiter.max_queue_depth,
                "sabotaged": arbiter.sabotaged,
            },
            "invariants": invariants.to_record(),
            "timelines": timelines,
            "cluster_phases": (
                cluster_phases.summary() if cluster_phases is not None else None
            ),
            "causal": {"flows": len(chains), "chain": main_chain},
            "tsdb": {"summary": self.tsdb.summary(), "digests": digests},
            "pairs": pairs,
            "sim_seconds": self.sim.now,
            "sim_events": self.sim.events_executed,
            "ok": invariants.all_hold,
        }


def run_cluster(spec: ClusterSpec) -> Dict[str, Any]:
    """Build and drive one scenario; returns the run record."""
    return ClusterRun(spec).execute()

"""Fabric-level STONITH: one arbiter, many possible victims.

:class:`~repro.sttcp.power_switch.PowerSwitch` models the paper's
per-pair controllable relay.  A cluster has many pairs but (realistic
for a rack) one fencing actuator, so concurrent fence requests — a
heartbeat storm making several backups suspect several primaries at
once — must be *serialized*: the relay actuates one cut at a time, and
duplicate requests for a host already being fenced coalesce onto the
in-flight cut instead of queueing a second one.

The arbiter duck-types the power switch (``cut_power(host, done)``), so
every :class:`~repro.sttcp.backup.STTCPBackup` engine in the fabric can
be handed the same arbiter where a pair scenario would pass its private
switch.  ``sabotaged`` disables the actuator while still acknowledging
requests — the mutation hook that lets a drill prove the dual-primary
invariant actually depends on fencing (see
``tests/cluster/test_mutation.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

Done = Callable[[], None]


class ClusterArbiter:
    """Serialized, coalescing STONITH for a whole fabric."""

    def __init__(self, sim: Any, actuation_delay: float = 0.010) -> None:
        self.sim = sim
        self.actuation_delay = actuation_delay
        #: Mutation hook: acknowledge fence requests without cutting power.
        self.sabotaged = False
        self._queue: Deque[Tuple[Any, List[Done], Optional[int]]] = deque()
        #: host id → pending done-callback list (for coalescing).
        self._pending: Dict[int, List[Done]] = {}
        self._busy = False
        self.fence_requests = 0
        self.cuts_performed = 0
        self.requests_coalesced = 0
        self.max_queue_depth = 0

    def cut_power(self, host: Any, done: Optional[Done] = None) -> None:
        """Request a fence of ``host``; ``done`` fires once the relay has
        actuated that host's cut (or the coalesced one already in line)."""
        self.fence_requests += 1
        trace = self.sim.trace
        if trace.enabled_for("cluster"):
            trace.emit(self.sim.now, "cluster", "fence_requested", host=host.name)
        waiters = self._pending.get(id(host))
        if waiters is not None:
            # Storm coalescing: this host is already queued or in flight.
            self.requests_coalesced += 1
            if done is not None:
                waiters.append(done)
            return
        waiters = [] if done is None else [done]
        self._pending[id(host)] = waiters
        # The requester's causal chain is captured *now* — the actuation
        # lands in a later event, long after the requester's dynamic flow
        # context is gone — so the fence span joins the right chain.
        sid: Optional[int] = None
        if trace.enabled_for("cluster"):
            fields: Dict[str, Any] = {"host": host.name}
            if trace.current_flow is not None:
                fields["flow"] = trace.current_flow
            sid = trace.begin_span(self.sim.now, "cluster", "fence", **fields)
        self._queue.append((host, waiters, sid))
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        if not self._busy:
            self._actuate_next()

    def _actuate_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        host, waiters, sid = self._queue.popleft()
        self.sim.schedule(self.actuation_delay, self._actuated, host, waiters, sid)

    def _actuated(self, host: Any, waiters: List[Done], sid: Optional[int]) -> None:
        self._pending.pop(id(host), None)
        if self.sabotaged:
            outcome = "sabotaged"
            if self.sim.trace.enabled_for("cluster"):
                self.sim.trace.emit(
                    self.sim.now, "cluster", "fence_sabotaged", host=host.name
                )
        else:
            outcome = "fenced"
            if host.is_up:
                host.crash()
            self.cuts_performed += 1
            if self.sim.trace.enabled_for("cluster"):
                self.sim.trace.emit(self.sim.now, "cluster", "fenced", host=host.name)
        if sid is not None:
            self.sim.trace.end_span(
                self.sim.now, "cluster", "fence", sid, outcome=outcome
            )
        for done in waiters:
            done()
        self._actuate_next()

"""A full TCP implementation over the simulator.

Public surface: :class:`TCPLayer` (per host), :class:`TCPSocket`,
:class:`TCPListener`, :class:`TCPConfig`, the :class:`TCPExtension` hook
protocol for protocol variants, plus the building blocks
(:class:`TCPConnection` and its engines, buffers, Reno congestion
control, RTT/RTO estimation, sequence-space arithmetic) for tests and
the ST-TCP engines.
"""

from repro.tcp.buffers import BufferManager
from repro.tcp.config import TCPConfig
from repro.tcp.congestion import DUPACK_THRESHOLD, RenoCongestionControl
from repro.tcp.constants import (
    DEFAULT_MSS,
    DEFAULT_RCV_BUFFER,
    DEFAULT_SND_BUFFER,
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    RTO_MAX,
    RTO_MIN,
    TCPState,
)
from repro.tcp.extension import HOOK_NAMES, TCPExtension, overridden_hooks
from repro.tcp.input import InputEngine
from repro.tcp.layer import TCPLayer
from repro.tcp.listener import TCPListener
from repro.tcp.output import OutputEngine
from repro.tcp.recv_buffer import ReceiveBuffer, RetentionPolicy
from repro.tcp.retransmit import RetransmitEngine
from repro.tcp.rtt import RTTEstimator
from repro.tcp.segment import TCPSegment, make_rst
from repro.tcp.send_buffer import SendBuffer
from repro.tcp.seqspace import seq_ge, seq_gt, seq_le, seq_lt, unwrap, wrap
from repro.tcp.socket import TCPSocket
from repro.tcp.tcb import TCPConnection

__all__ = [
    "BufferManager",
    "DEFAULT_MSS",
    "DEFAULT_RCV_BUFFER",
    "DEFAULT_SND_BUFFER",
    "DUPACK_THRESHOLD",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "HOOK_NAMES",
    "InputEngine",
    "OutputEngine",
    "RTO_MAX",
    "RTO_MIN",
    "ReceiveBuffer",
    "RenoCongestionControl",
    "RetentionPolicy",
    "RetransmitEngine",
    "RTTEstimator",
    "SendBuffer",
    "TCPConfig",
    "TCPConnection",
    "TCPExtension",
    "TCPLayer",
    "TCPListener",
    "TCPSegment",
    "TCPSocket",
    "TCPState",
    "make_rst",
    "overridden_hooks",
    "seq_ge",
    "seq_gt",
    "seq_le",
    "seq_lt",
    "unwrap",
    "wrap",
]

"""The TCP send buffer: app data awaiting transmission or acknowledgment.

Offsets are *stream offsets*: byte 0 is the first application byte on the
connection (sequence number ISS+1).  The TCB owns the seq↔offset mapping.

Under ``REPRO_DATAPATH=batch`` real payload bytes are ingested into the
shared :class:`~repro.net.segment_pool.SegmentPool` — copied once into a
slab, then carried as ``memoryview`` spans through segmentation,
retransmission and delivery with no further copies.  The object arm
keeps the fresh-:class:`~repro.util.bytespan.RealBytes` path as the
bit-exact reference (content-equal spans, so nothing observable moves).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.net.segment_pool import SegmentPool, default_pool
from repro.sim.datapath import batch_enabled
from repro.util.bytespan import ByteSpan, CatBytes, RealBytes, as_span
from repro.util.spanbuffer import SpanBuffer


class SendBuffer:
    """Bytes between ``snd_una`` (head) and the last byte the app wrote."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"send buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data = SpanBuffer()
        # Datapath arm, read at construction (see repro.sim.datapath).
        self._pool: Optional[SegmentPool] = default_pool() if batch_enabled() else None

    # Occupancy -----------------------------------------------------------------
    @property
    def una_offset(self) -> int:
        """Offset of the oldest unacknowledged byte."""
        return self._data.head_offset

    @property
    def tail_offset(self) -> int:
        """Offset one past the last byte the application has written."""
        return self._data.tail_offset

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # Mutation -------------------------------------------------------------------
    def append(self, data: Union[ByteSpan, bytes]) -> int:
        """Append as much of ``data`` as fits; returns bytes accepted."""
        span = as_span(data)
        accepted = min(len(span), self.free_space)
        if accepted <= 0:
            return 0
        if accepted != len(span):
            span = span.slice(0, accepted)
        # Concatenations (the app protocol's RealBytes header + synthetic
        # padding) are split into their leaves on BOTH arms so the buffer
        # layout — and with it ``bytes_per_tcb`` — stays arm-invariant.
        parts = span.parts if isinstance(span, CatBytes) else (span,)
        pool = self._pool
        for part in parts:
            if pool is not None and isinstance(part, RealBytes):
                # Batch arm: real bytes go through the pool (one copy
                # into a slab; every later slice is a zero-copy
                # memoryview).  Synthetic spans are already O(1) and
                # pass through unchanged on both arms.
                part = pool.ingest(part.data)
            self._data.append(part)
        return accepted

    def ack_to(self, offset: int) -> int:
        """Release bytes below ``offset``; returns bytes freed."""
        freed = offset - self._data.head_offset
        if freed <= 0:
            return 0
        self._data.discard_front(freed)
        return freed

    def data_range(self, start: int, stop: int) -> ByteSpan:
        """Zero-copy view of [start, stop) for (re)transmission."""
        return self._data.peek_absolute(start, stop)

    def fast_forward(self, offset: int) -> None:
        """Adopt ``offset`` as the stream position of an *empty* buffer.

        Snapshot handoff: bytes below ``offset`` were sent and acked by
        the previous endpoint; this one never carries them.
        """
        self._data.seek(offset)

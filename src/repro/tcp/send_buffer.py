"""The TCP send buffer: app data awaiting transmission or acknowledgment.

Offsets are *stream offsets*: byte 0 is the first application byte on the
connection (sequence number ISS+1).  The TCB owns the seq↔offset mapping.
"""

from __future__ import annotations

from typing import Union

from repro.util.bytespan import ByteSpan, as_span
from repro.util.spanbuffer import SpanBuffer


class SendBuffer:
    """Bytes between ``snd_una`` (head) and the last byte the app wrote."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"send buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data = SpanBuffer()

    # Occupancy -----------------------------------------------------------------
    @property
    def una_offset(self) -> int:
        """Offset of the oldest unacknowledged byte."""
        return self._data.head_offset

    @property
    def tail_offset(self) -> int:
        """Offset one past the last byte the application has written."""
        return self._data.tail_offset

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # Mutation -------------------------------------------------------------------
    def append(self, data: Union[ByteSpan, bytes]) -> int:
        """Append as much of ``data`` as fits; returns bytes accepted."""
        span = as_span(data)
        accepted = min(len(span), self.free_space)
        if accepted > 0:
            self._data.append(span.slice(0, accepted))
        return accepted

    def ack_to(self, offset: int) -> int:
        """Release bytes below ``offset``; returns bytes freed."""
        freed = offset - self._data.head_offset
        if freed <= 0:
            return 0
        self._data.discard_front(freed)
        return freed

    def data_range(self, start: int, stop: int) -> ByteSpan:
        """Zero-copy view of [start, stop) for (re)transmission."""
        return self._data.peek_absolute(start, stop)

    def fast_forward(self, offset: int) -> None:
        """Adopt ``offset`` as the stream position of an *empty* buffer.

        Snapshot handoff: bytes below ``offset`` were sent and acked by
        the previous endpoint; this one never carries them.
        """
        self._data.seek(offset)

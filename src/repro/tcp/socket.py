"""The application-facing TCP socket.

Wraps a :class:`~repro.tcp.tcb.TCPConnection` with waitable operations for
coroutine processes::

    sock = host.tcp.connect((server_ip, 80))
    yield sock.wait_connected()
    yield sock.send(b"GET /")
    reply = yield sock.recv_exactly(1024)
    sock.close()
    yield sock.wait_closed()

``send`` completes when *all* bytes have been accepted into the send
buffer (not when acknowledged); ``recv`` completes with at least one byte
or EOF (an empty span); ``recv_exactly`` accumulates and fails if the peer
closes early.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Union

from repro.errors import ConnectionClosed
from repro.sim.events import SimEvent
from repro.tcp.constants import TCPState
from repro.tcp.tcb import TCPConnection
from repro.util.bytespan import EMPTY, ByteSpan, as_span, concat


class TCPSocket:
    """A connection handle for application processes."""

    def __init__(self, tcb: TCPConnection) -> None:
        self._tcb = tcb
        self.sim = tcb.sim
        self._connect_event: Optional[SimEvent] = None
        self._closed_event: Optional[SimEvent] = None
        self._writers: Deque[Dict[str, Any]] = deque()
        self._readers: Deque[Dict[str, Any]] = deque()
        self._error: Optional[BaseException] = None
        self._pumping_writers = False
        tcb.on_established = self._on_established
        tcb.on_readable = self._on_readable
        tcb.on_writable = self._on_writable
        tcb.on_closed = self._on_closed
        tcb.on_error = self._on_error

    # Introspection ------------------------------------------------------------
    @property
    def tcb(self) -> TCPConnection:
        """The underlying connection (read-mostly; ST-TCP engines use it)."""
        return self._tcb

    @property
    def state(self) -> TCPState:
        return self._tcb.state

    @property
    def local_address(self) -> tuple:
        return (self._tcb.local_ip, self._tcb.local_port)

    @property
    def remote_address(self) -> tuple:
        return (self._tcb.remote_ip, self._tcb.remote_port)

    @property
    def connected(self) -> bool:
        return self._tcb.state is TCPState.ESTABLISHED

    @property
    def at_eof(self) -> bool:
        return self._tcb.eof

    # Waitables ------------------------------------------------------------------
    def wait_connected(self) -> SimEvent:
        """Succeeds (with this socket) once ESTABLISHED; fails on error."""
        if self._connect_event is None:
            self._connect_event = SimEvent(self.sim, "tcp.connect")
            if self.connected or self._tcb.is_synchronized:
                self._connect_event.succeed(self)
            elif self._error is not None:
                self._connect_event.fail(self._error)
            elif self._tcb.state is TCPState.CLOSED and self._tcb.error is not None:
                self._connect_event.fail(self._tcb.error)
        return self._connect_event

    def wait_closed(self) -> SimEvent:
        """Succeeds when the connection reaches CLOSED."""
        if self._closed_event is None:
            self._closed_event = SimEvent(self.sim, "tcp.closed")
            if self._tcb.state is TCPState.CLOSED:
                self._closed_event.succeed(self)
        return self._closed_event

    def send(self, data: Union[bytes, ByteSpan]) -> SimEvent:
        """Queue ``data``; the event succeeds when all bytes are buffered."""
        event = SimEvent(self.sim, "tcp.send")
        span = as_span(data)
        if self._error is not None:
            event.fail(self._error)
            return event
        if self._tcb.state is TCPState.CLOSED:
            event.fail(ConnectionClosed("send on closed socket"))
            return event
        self._writers.append({"span": span, "done": 0, "event": event})
        self._pump_writers()
        return event

    def recv(self, max_bytes: int = 65536) -> SimEvent:
        """Succeeds with 1..max_bytes of data, or an empty span at EOF."""
        event = SimEvent(self.sim, "tcp.recv")
        if max_bytes <= 0:
            event.succeed(EMPTY)
            return event
        self._readers.append({"kind": "some", "n": max_bytes, "acc": [], "event": event})
        self._pump_readers()
        return event

    def recv_exactly(self, n: int) -> SimEvent:
        """Succeeds with exactly ``n`` bytes; fails on early EOF/error."""
        event = SimEvent(self.sim, "tcp.recv_exactly")
        if n <= 0:
            event.succeed(EMPTY)
            return event
        self._readers.append({"kind": "exact", "n": n, "acc": [], "event": event})
        self._pump_readers()
        return event

    # Closing ---------------------------------------------------------------------
    def close(self) -> None:
        """Orderly shutdown (FIN after pending data)."""
        self._tcb.app_close()

    def abort(self) -> None:
        """Abortive shutdown (RST)."""
        self._tcb.app_abort()

    # Pumps -------------------------------------------------------------------------
    def _pump_writers(self) -> None:
        if self._pumping_writers:
            # app_write can synchronously free buffer space (an extension
            # applying deferred acks) and call back into on_writable; re-entering
            # here would append with a stale "done" and corrupt the
            # stream.  The outer pump loop picks the space up instead.
            return
        self._pumping_writers = True
        try:
            while self._writers:
                writer = self._writers[0]
                span, done = writer["span"], writer["done"]
                if done < len(span):
                    accepted = self._tcb.app_write(span.slice(done, len(span)))
                    writer["done"] = done + accepted
                    if accepted and writer["done"] < len(span):
                        continue  # space may have been freed while writing
                    if writer["done"] < len(span):
                        return  # buffer full; wait for on_writable
                self._writers.popleft()
                writer["event"].succeed(len(span))
        finally:
            self._pumping_writers = False

    def _pump_readers(self) -> None:
        while self._readers:
            reader = self._readers[0]
            needed = reader["n"] - sum(len(piece) for piece in reader["acc"])
            if needed > 0 and self._tcb.readable_bytes > 0:
                piece = self._tcb.app_read(needed)
                reader["acc"].append(piece)
                needed -= len(piece)
            if reader["kind"] == "some":
                if reader["acc"] and len(reader["acc"][0]) > 0 or needed == 0:
                    self._finish_reader(reader)
                    continue
                if self._tcb.eof:
                    self._finish_reader(reader)  # EOF → empty span
                    continue
                return
            # exact
            if needed == 0:
                self._finish_reader(reader)
                continue
            if self._tcb.eof:
                self._readers.popleft()
                reader["event"].fail(
                    ConnectionClosed(
                        f"peer closed with {needed} of {reader['n']} bytes missing"
                    )
                )
                continue
            return

    def _finish_reader(self, reader: Dict[str, Any]) -> None:
        self._readers.popleft()
        reader["event"].succeed(concat(reader["acc"]) if reader["acc"] else EMPTY)

    # TCB callbacks -------------------------------------------------------------------
    def _on_established(self) -> None:
        if self._connect_event is not None and not self._connect_event.triggered:
            self._connect_event.succeed(self)

    def _on_readable(self) -> None:
        self._pump_readers()

    def _on_writable(self) -> None:
        self._pump_writers()

    def _on_error(self, error: BaseException) -> None:
        self._error = error
        if self._connect_event is not None and not self._connect_event.triggered:
            self._connect_event.fail(error)
        while self._writers:
            self._writers.popleft()["event"].fail(error)
        while self._readers:
            reader = self._readers.popleft()
            if reader["kind"] == "some" and reader["acc"]:
                reader["event"].succeed(concat(reader["acc"]))
            else:
                reader["event"].fail(error)

    def _on_closed(self) -> None:
        if self._closed_event is not None and not self._closed_event.triggered:
            self._closed_event.succeed(self)
        if self._error is None:
            # Orderly close: wake readers with EOF.
            while self._readers:
                reader = self._readers.popleft()
                if reader["kind"] == "exact":
                    needed = reader["n"] - sum(len(p) for p in reader["acc"])
                    if needed:
                        reader["event"].fail(
                            ConnectionClosed("connection closed during recv_exactly")
                        )
                        continue
                reader["event"].succeed(
                    concat(reader["acc"]) if reader["acc"] else EMPTY
                )
            while self._writers:
                self._writers.popleft()["event"].fail(
                    ConnectionClosed("connection closed during send")
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TCPSocket {self._tcb!r}>"

"""TCP segments and options.

Payloads are :class:`~repro.util.bytespan.ByteSpan` objects; size
accounting includes the 20-byte base header plus any options carried.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    SEQ_MASK,
    TCP_HEADER_SIZE,
)
from repro.util.bytespan import EMPTY, ByteSpan

#: Option wire sizes (including padding to 32-bit boundaries as on Linux).
MSS_OPTION_SIZE = 4
TIMESTAMP_OPTION_SIZE = 12

_segment_ids = itertools.count(1)


def _relative(value: int, base: int) -> int:
    """Sequence number relative to ``base``, folded to a signed window."""
    if not base:
        return value
    delta = (value - base) & SEQ_MASK
    return delta - (1 << 32) if delta > (1 << 31) else delta


class TCPSegment:
    """One TCP segment in flight."""

    __slots__ = (
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "payload",
        "mss_option",
        "ts_val",
        "ts_ecr",
        "segment_id",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        payload: ByteSpan = EMPTY,
        mss_option: Optional[int] = None,
        ts_val: Optional[float] = None,
        ts_ecr: Optional[float] = None,
    ) -> None:
        if not 0 <= seq <= SEQ_MASK:
            raise ValueError(f"seq {seq} outside 32-bit space")
        if not 0 <= ack <= SEQ_MASK:
            raise ValueError(f"ack {ack} outside 32-bit space")
        if window < 0:
            raise ValueError(f"negative window {window}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = min(window, 0xFFFF)
        self.payload = payload
        self.mss_option = mss_option
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.segment_id = next(_segment_ids)

    # Flag accessors ------------------------------------------------------------
    @property
    def is_syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def is_psh(self) -> bool:
        return bool(self.flags & FLAG_PSH)

    # Sizing ----------------------------------------------------------------------
    @property
    def header_size(self) -> int:
        size = TCP_HEADER_SIZE
        if self.mss_option is not None:
            size += MSS_OPTION_SIZE
        if self.ts_val is not None:
            size += TIMESTAMP_OPTION_SIZE
        return size

    @property
    def payload_length(self) -> int:
        return len(self.payload)

    @property
    def size(self) -> int:
        return self.header_size + self.payload_length

    @property
    def sequence_space_length(self) -> int:
        """Bytes of sequence space consumed: payload plus SYN/FIN flags."""
        length = self.payload_length
        if self.is_syn:
            length += 1
        if self.is_fin:
            length += 1
        return length

    def flag_string(self) -> str:
        """Compact flag rendering, e.g. ``"SA"`` for SYN/ACK."""
        parts = []
        if self.is_syn:
            parts.append("S")
        if self.is_fin:
            parts.append("F")
        if self.is_rst:
            parts.append("R")
        if self.is_psh:
            parts.append("P")
        if self.is_ack:
            parts.append("A")
        return "".join(parts) or "."

    def summary(self, seq_base: int = 0, ack_base: int = 0) -> str:
        """Canonical one-line rendering: ``flags seq:end(len) ack win``.

        This is *the* segment format — tcpdump output, drill mismatch
        diagnostics and TCB traces all route through it so a segment reads
        the same everywhere.  ``seq_base``/``ack_base`` rebase the absolute
        sequence numbers (e.g. onto an ISN) for relative display.
        """
        seq = _relative(self.seq, seq_base)
        length = self.payload_length
        text = f"{self.flag_string()} {seq}:{seq + length}({length})"
        if self.is_ack:
            text += f" ack {_relative(self.ack, ack_base)}"
        text += f" win {self.window}"
        if self.mss_option is not None:
            text += f" mss {self.mss_option}"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TCP {self.src_port}->{self.dst_port} {self.summary()}>"


class SegmentTemplate:
    """Per-connection invariant header fields, precomputed once.

    The ports (and the timestamp-option decision) never change over a
    connection's lifetime, and the output engine produces every variant
    field already validated — ``wrap`` folds seq/ack into 32-bit space
    and the advertised window is clamped at the source — so
    :meth:`build` constructs segments with direct slot assignment,
    skipping ``TCPSegment.__init__``'s range checks.  The object arm
    keeps the checked constructor as the reference; both produce
    field-identical segments (same ``segment_id`` counter, same wire
    rendering).
    """

    __slots__ = ("src_port", "dst_port")

    def __init__(self, src_port: int, dst_port: int) -> None:
        self.src_port = src_port
        self.dst_port = dst_port

    def build(
        self,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        payload: ByteSpan = EMPTY,
        mss_option: Optional[int] = None,
        ts_val: Optional[float] = None,
        ts_ecr: Optional[float] = None,
    ) -> TCPSegment:
        segment = TCPSegment.__new__(TCPSegment)
        segment.src_port = self.src_port
        segment.dst_port = self.dst_port
        segment.seq = seq
        segment.ack = ack
        segment.flags = flags
        segment.window = window
        segment.payload = payload
        segment.mss_option = mss_option
        segment.ts_val = ts_val
        segment.ts_ecr = ts_ecr
        segment.segment_id = next(_segment_ids)
        return segment


def make_rst(src_port: int, dst_port: int, seq: int, ack: int, with_ack: bool) -> TCPSegment:
    """Build the RST answering an unmatched segment (RFC 793 §3.4)."""
    flags = FLAG_RST | (FLAG_ACK if with_ack else 0)
    return TCPSegment(src_port, dst_port, seq, ack, flags, window=0)


__all__ = [
    "MSS_OPTION_SIZE",
    "SegmentTemplate",
    "TCPSegment",
    "TIMESTAMP_OPTION_SIZE",
    "make_rst",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
]

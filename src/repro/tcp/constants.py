"""TCP protocol constants and tunables.

Defaults mirror Linux 2.2-era behaviour where the paper depends on it —
most importantly the retransmission-timeout bounds (200 ms lower, 120 s
upper) and the ×2 RTO backoff, which together determine ST-TCP's failover
latency once the primary goes silent (§6.2).
"""

from __future__ import annotations

import enum


class TCPState(enum.Enum):
    """RFC 793 connection states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


#: States in which the connection carries data.
SYNCHRONIZED_STATES = frozenset(
    {
        TCPState.ESTABLISHED,
        TCPState.FIN_WAIT_1,
        TCPState.FIN_WAIT_2,
        TCPState.CLOSE_WAIT,
        TCPState.CLOSING,
        TCPState.LAST_ACK,
        TCPState.TIME_WAIT,
    }
)

# Header flags --------------------------------------------------------------
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

#: Base TCP header size (no options).
TCP_HEADER_SIZE = 20

#: Ethernet-standard maximum segment size (1500 MTU − 40 bytes of headers).
DEFAULT_MSS = 1460

#: Default socket buffer sizes.  16 KiB matches the Linux 2.2-era default
#: receive window and, through window-limited throughput, calibrates the
#: paper's ≈12.5 Mb/s bulk transfer rate (Table 1).
DEFAULT_RCV_BUFFER = 16 * 1024
DEFAULT_SND_BUFFER = 16 * 1024

# Retransmission timing (Linux values quoted in §6.2) -----------------------
RTO_MIN = 0.2
RTO_MAX = 120.0
RTO_INITIAL = 1.0
RTO_BACKOFF_FACTOR = 2.0

#: Give up on a connection after this many consecutive RTO expirations
#: (Linux tcp_retries2 ≈ 15; keeps failover experiments from aborting).
MAX_RETRANSMITS = 15

#: Retries for the initial SYN before ``connect`` fails.
MAX_SYN_RETRANSMITS = 6

# Delayed acknowledgments ----------------------------------------------------
#: Maximum time an ACK may be delayed (Linux delack is 40–200 ms).
DELACK_TIMEOUT = 0.040
#: ACK at least every this many full-sized segments.
DELACK_SEGMENT_THRESHOLD = 2

# Zero-window probing ---------------------------------------------------------
PERSIST_TIMEOUT_MIN = 0.5
PERSIST_TIMEOUT_MAX = 60.0

#: 2·MSL for TIME_WAIT.  Linux uses 60 s; the simulator defaults to 1 s so
#: back-to-back experiment runs do not serialise on port reuse — the value
#: never affects measured application time.
TIME_WAIT_DURATION = 1.0

#: Sequence-space modulus.
SEQ_SPACE = 1 << 32
SEQ_MASK = SEQ_SPACE - 1

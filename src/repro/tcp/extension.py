"""The TCP extension API: per-connection hooks at fixed pipeline points.

The paper's thesis — and this repo's architecture after the engine
decomposition — is that protocol variants should be *layered on* a stock
TCP stack, not interleaved through it.  An extension is an object
registered on one :class:`~repro.tcp.tcb.TCPConnection`; the core engines
invoke its hooks at well-defined points:

``on_segment_in(conn, segment)``
    Every inbound segment, after the receive trace/counters and the
    timestamp echo update, before state-machine dispatch.  Return ``True``
    to *consume* the segment (core processing is skipped).  Every
    registered extension sees the segment even when an earlier one
    consumed it.

``on_ack(conn, segment, ack_abs)``
    At the top of cumulative-ACK processing.  Receives the unwrapped
    (absolute) acknowledgment number and returns it, possibly adjusted;
    extensions run in registration order, each seeing the previous
    one's result.  This is where an extension may re-anchor sequence
    state (via :meth:`TCPConnection.adopt_send_isn`) or clamp an ACK
    that runs ahead of locally produced data.

``filter_transmit(conn, segment)``
    Immediately before a built segment is handed to the IP layer.
    Return ``False`` to drop it; the first veto stops the chain (the
    segment is gone — later extensions are not consulted).

``on_state_change(conn, old, new)``
    After every TCP state transition.

``on_isn_learned(conn, kind, isn_abs)``
    When a sequence-space anchor is established: ``kind`` is ``"local"``
    (our ISN chosen), ``"peer"`` (the peer's ISN learned from a SYN), or
    ``"rebase"`` (the send anchors re-pointed via ``adopt_send_isn``).

``after_output(conn)``
    After each :meth:`TCPConnection.try_output` pass, once the windows
    have been serviced.  Extensions that defer work until the
    application produces data apply it here.

Hooks are dispatched *only when at least one registered extension
overrides them*: a vanilla connection carries empty per-hook chains and
pays a single falsy check, nothing more.  The chain order is the
registration order (``add_extension``); ordering is part of the
contract — e.g. an output-suppressing extension must precede any
extension that observes transmissions, or the observer will see (and
possibly leak) segments the suppressor should have vetoed first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.segment import TCPSegment
    from repro.tcp.tcb import TCPConnection


#: Anchor kinds reported through ``on_isn_learned``.
ISN_LOCAL = "local"
ISN_PEER = "peer"
ISN_REBASE = "rebase"

#: The hook names a connection builds per-hook dispatch chains for.
HOOK_NAMES = (
    "on_segment_in",
    "on_ack",
    "filter_transmit",
    "on_state_change",
    "on_isn_learned",
    "after_output",
)


class TCPExtension:
    """Base class for per-connection TCP extensions.

    Subclasses override only the hooks they need; un-overridden hooks are
    detected at registration time and never dispatched, so an extension
    pays only for the pipeline points it actually taps.
    """

    #: Stable identifier, ``<subsystem>.<role>`` by convention.
    name: str = "extension"

    # -- lifecycle ----------------------------------------------------------
    def on_attach(self, conn: "TCPConnection") -> None:
        """Called when the extension is registered on ``conn``."""

    def on_detach(self, conn: "TCPConnection") -> None:
        """Called when the extension is removed from ``conn``."""

    # -- pipeline hooks -----------------------------------------------------
    def on_segment_in(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        """Inspect an inbound segment; return True to consume it."""
        return False

    def on_ack(
        self, conn: "TCPConnection", segment: "TCPSegment", ack_abs: int
    ) -> int:
        """Adjust (or pass through) the absolute cumulative ACK."""
        return ack_abs

    def filter_transmit(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        """Return False to veto transmission of ``segment``."""
        return True

    def on_state_change(self, conn: "TCPConnection", old: Any, new: Any) -> None:
        """Observe a TCP state transition."""

    def on_isn_learned(self, conn: "TCPConnection", kind: str, isn_abs: int) -> None:
        """Observe a sequence-space anchor being established."""

    def after_output(self, conn: "TCPConnection") -> None:
        """Run deferred work after an output pass."""


def overridden_hooks(extension: TCPExtension) -> tuple:
    """The hook names ``extension`` actually overrides (dispatch set)."""
    cls = type(extension)
    return tuple(
        hook
        for hook in HOOK_NAMES
        if getattr(cls, hook, None) is not getattr(TCPExtension, hook)
    )

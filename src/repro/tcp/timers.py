"""Restartable one-shot timers over the simulation kernel.

Each TCP connection owns a handful of these (retransmit, delayed-ACK,
persist, TIME_WAIT).  A timer's callback never fires after :meth:`stop`,
and restarting implicitly cancels the previous arming.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import EventHandle


class RestartableTimer:
    """A named one-shot timer; ``start`` re-arms, ``stop`` cancels."""

    __slots__ = ("sim", "callback", "name", "_handle", "fired_count")

    def __init__(self, sim: Any, callback: Callable[[], None], name: str = "timer") -> None:
        self.sim = sim
        self.callback = callback
        self.name = name
        self._handle: Optional[EventHandle] = None
        self.fired_count = 0

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def deadline(self) -> Optional[float]:
        """Absolute fire time while armed, else None."""
        if self.running:
            return self._handle.time  # type: ignore[union-attr]
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now.

        Uses the scheduler's relative fast path: every retransmit,
        delayed-ACK and persist arming goes through here, and the delays
        are non-negative by construction (RTO and interval clamps).
        """
        self.stop()
        self._handle = self.sim.call_later(delay, self._fire)

    def start_if_idle(self, delay: float) -> None:
        """Arm only when not already running (retransmit-timer semantics)."""
        if not self.running:
            self.start(delay)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.fired_count += 1
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"armed@{self.deadline:.6f}" if self.running else "idle"
        return f"<Timer {self.name} {state}>"

"""Per-connection TCP tuning knobs.

A :class:`TCPConfig` is attached to a layer as its default and can be
overridden per listener or per active open.  The ST-TCP server pair tweaks
two things relative to a standard host: the receive buffer doubling on the
primary (handled in :mod:`repro.sttcp.primary`) and output suppression on
the backup (a TCB runtime flag, not config).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.tcp.constants import (
    DEFAULT_MSS,
    DEFAULT_RCV_BUFFER,
    DEFAULT_SND_BUFFER,
    DELACK_SEGMENT_THRESHOLD,
    DELACK_TIMEOUT,
    MAX_RETRANSMITS,
    MAX_SYN_RETRANSMITS,
    RTO_INITIAL,
    RTO_MAX,
    RTO_MIN,
    TIME_WAIT_DURATION,
)


@dataclasses.dataclass
class TCPConfig:
    """Tunables for one TCP connection (or a layer's defaults)."""

    mss: int = DEFAULT_MSS
    snd_buffer: int = DEFAULT_SND_BUFFER
    rcv_buffer: int = DEFAULT_RCV_BUFFER
    nagle: bool = False
    delayed_ack: bool = True
    delack_timeout: float = DELACK_TIMEOUT
    delack_segments: int = DELACK_SEGMENT_THRESHOLD
    #: TCP timestamp option; the paper disabled it for all experiments (§6),
    #: so the simulator defaults it off as well.
    timestamps: bool = False
    rto_min: float = RTO_MIN
    rto_max: float = RTO_MAX
    rto_initial: float = RTO_INITIAL
    max_retransmits: int = MAX_RETRANSMITS
    max_syn_retransmits: int = MAX_SYN_RETRANSMITS
    time_wait: float = TIME_WAIT_DURATION
    #: Fixed ISN (tests only); None → per-host random ISN.
    isn: Optional[int] = None

    def copy(self, **overrides: object) -> "TCPConfig":
        """A copy with selected fields replaced."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def validate(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.snd_buffer < self.mss or self.rcv_buffer < self.mss:
            raise ValueError("socket buffers must hold at least one segment")
        if self.rto_min <= 0 or self.rto_max < self.rto_min:
            raise ValueError(
                f"bad RTO bounds [{self.rto_min}, {self.rto_max}]"
            )
        if self.delack_segments < 1:
            raise ValueError("delack_segments must be >= 1")

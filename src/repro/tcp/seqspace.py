"""32-bit sequence-number arithmetic.

Segments carry 32-bit (wrapped) sequence numbers on the wire, as real TCP
does; connection state is kept in *unwrapped* absolute integers.  The
bridge is :func:`unwrap`, which maps a wire value to the absolute value
closest to a reference point — correct as long as the true value lies
within ±2³¹ of the reference, which TCP's window rules guarantee.
"""

from __future__ import annotations

from repro.tcp.constants import SEQ_MASK, SEQ_SPACE

HALF_SPACE = SEQ_SPACE // 2


def wrap(seq_abs: int) -> int:
    """Absolute sequence value → 32-bit wire value."""
    return seq_abs & SEQ_MASK


def unwrap(seq32: int, reference_abs: int) -> int:
    """Wire value → the absolute value nearest ``reference_abs``.

    ``reference_abs`` may be any non-negative absolute sequence position
    (typically ``rcv_nxt`` for sequence fields and ``snd_una`` for ack
    fields).
    """
    if not 0 <= seq32 < SEQ_SPACE:
        raise ValueError(f"wire sequence {seq32} out of 32-bit range")
    base = reference_abs - (reference_abs & SEQ_MASK)
    candidate = base + seq32
    # Shift by one epoch in whichever direction lands closer.
    if candidate - reference_abs > HALF_SPACE and candidate >= SEQ_SPACE:
        candidate -= SEQ_SPACE
    elif reference_abs - candidate > HALF_SPACE:
        candidate += SEQ_SPACE
    return candidate


def seq_lt(a: int, b: int) -> bool:
    """``a < b`` in wrapped 32-bit sequence space."""
    return ((a - b) & SEQ_MASK) > HALF_SPACE


def seq_le(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


def seq_gt(a: int, b: int) -> bool:
    return seq_lt(b, a)


def seq_ge(a: int, b: int) -> bool:
    return a == b or seq_lt(b, a)

"""Buffer management engine: byte streams and sequence-space translation.

Owns the send and receive buffers of one connection and the mapping
between *absolute* (unwrapped) sequence numbers and *stream offsets*
(SYN = seq 0, first payload byte = offset 0).  The other engines never
do that arithmetic themselves — they ask this one, so a re-anchoring of
the sequence space (:meth:`~repro.tcp.tcb.TCPConnection.adopt_send_isn`)
is a single-point change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.tcp.config import TCPConfig
from repro.tcp.constants import TCPState
from repro.tcp.recv_buffer import ReceiveBuffer
from repro.tcp.send_buffer import SendBuffer
from repro.util.bytespan import ByteSpan, concat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.tcb import TCPConnection


class BufferManager:
    """Send/receive byte streams plus seq-number ↔ offset translation."""

    __slots__ = ("conn", "send_buffer", "recv_buffer")

    def __init__(self, conn: "TCPConnection", config: TCPConfig) -> None:
        self.conn = conn
        self.send_buffer = SendBuffer(config.snd_buffer)
        self.recv_buffer = ReceiveBuffer(config.rcv_buffer)

    # -- sequence-space translation -----------------------------------------
    def snd_offset(self, seq_abs: int) -> int:
        """Send-stream offset of an absolute sequence number."""
        return seq_abs - self.conn.iss - 1

    def snd_seq(self, offset: int) -> int:
        return self.conn.iss + 1 + offset

    def rcv_offset(self, seq_abs: int) -> int:
        return seq_abs - self.conn.irs - 1

    # -- out-of-band receive-stream repair ----------------------------------
    def inject_receive_data(self, seq_abs: int, payload: ByteSpan) -> int:
        """Insert recovered client bytes into the receive stream.

        Used by the ST-TCP backup for bytes recovered over the UDP
        channel or from the packet logger (§4.2, §3.2).  Touches *only*
        the receive stream — crucially not the ACK machinery, because a
        synthetic ACK arriving while a replica is still in SYN_RCVD
        would anchor its send sequence space against the wrong ISN and
        skew the whole mapping.  Returns how far ``rcv_nxt`` advanced.
        """
        conn = self.conn
        if not (conn.is_synchronized or conn.state is TCPState.SYN_RCVD):
            return 0
        offset = self.rcv_offset(seq_abs)
        advanced = self.recv_buffer.insert(offset, payload)
        conn.bytes_received += len(payload)
        if advanced > 0:
            conn.rcv_nxt += advanced
            if conn.on_rcv_advance is not None:
                conn.on_rcv_advance(conn.rcv_nxt)
            if conn.on_readable is not None:
                conn.on_readable()
        return advanced

    def fast_forward(self, rcv_offset: int, snd_offset: int) -> None:
        """Jump both empty streams to mid-connection offsets.

        Snapshot handoff (cluster election): a replacement backup adopts
        a connection at the primary's quiescent position instead of
        replaying its history.  Both buffers must be empty — the caller
        guarantees quiescence.
        """
        self.recv_buffer.fast_forward(rcv_offset)
        self.send_buffer.fast_forward(snd_offset)

    def fetch_received_range(self, start_offset: int, stop_offset: int) -> ByteSpan:
        """Serve receive-stream bytes [start, stop) for backup recovery.

        Bytes may live in the retention (second) buffer, the unread part
        of the receive buffer, or both.
        """
        pieces: List[ByteSpan] = []
        retention = self.recv_buffer.retention
        if retention is not None:
            fetch = getattr(retention, "fetch", None)
            if fetch is not None:
                pieces.append(fetch(start_offset, stop_offset))
        pieces.append(self.recv_buffer.peek_unread(start_offset, stop_offset))
        return concat([p for p in pieces if len(p)])

"""Passive TCP opens: the listening socket.

A listener owns a (local-IP, port) endpoint; inbound SYNs create
connections that are delivered to ``accept()`` once established.  On an
ST-TCP backup the very same listener code opens replica connections from
tapped SYNs, so the unmodified server application runs identically on
primary and backup (§4.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import ConnectionClosed
from repro.net.addresses import IPAddress
from repro.sim.events import SimEvent
from repro.tcp.socket import TCPSocket
from repro.tcp.tcb import TCPConnection


class TCPListener:
    """A listening endpoint producing accepted sockets."""

    def __init__(
        self,
        layer: Any,
        port: int,
        bind_ip: Optional[IPAddress],
        backlog: int = 128,
    ) -> None:
        self.layer = layer
        self.sim = layer.sim
        self.port = port
        self.bind_ip = bind_ip  # None = any local IP
        self.backlog = backlog
        self.closed = False
        self._ready: Deque[TCPSocket] = deque()
        self._waiters: Deque[SimEvent] = deque()
        self._pending = 0  # handshakes in progress
        self.accepted_total = 0

    def accept(self) -> SimEvent:
        """Waitable: succeeds with the next established :class:`TCPSocket`."""
        event = SimEvent(self.sim, f"tcp.accept:{self.port}")
        if self.closed:
            event.fail(ConnectionClosed(f"listener :{self.port} is closed"))
            return event
        if self._ready:
            event.succeed(self._ready.popleft())
        else:
            self._waiters.append(event)
        return event

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.layer.remove_listener(self)
        while self._waiters:
            self._waiters.popleft().fail(
                ConnectionClosed(f"listener :{self.port} closed while accepting")
            )

    # Layer-side hooks --------------------------------------------------------
    def may_accept_syn(self) -> bool:
        return not self.closed and (self._pending + len(self._ready)) < self.backlog

    def track_handshake(self, tcb: TCPConnection) -> None:
        """Register callbacks delivering the connection once established."""
        self._pending += 1
        socket = TCPSocket(tcb)
        original_established = tcb.on_established
        handshake_done = [False]

        def established() -> None:
            if not handshake_done[0]:
                handshake_done[0] = True
                self._pending -= 1
            self.accepted_total += 1
            if self._waiters:
                self._waiters.popleft().succeed(socket)
            else:
                self._ready.append(socket)
            if original_established is not None:
                original_established()

        tcb.on_established = established
        # Socket already claimed on_error; chain a pending-count fixup for
        # handshakes that die before establishing.
        socket_error = tcb.on_error

        def error_chain(exc: BaseException) -> None:
            if not handshake_done[0]:
                handshake_done[0] = True
                self._pending -= 1
            if socket_error is not None:
                socket_error(exc)

        tcb.on_error = error_chain

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bind = self.bind_ip or "*"
        return f"<TCPListener {bind}:{self.port} ready={len(self._ready)}>"

"""The TCP receive buffer: in-order data plus out-of-order reassembly.

The buffer also hosts the ST-TCP *retention* hook (§4.2, Figure 4): a
standard TCP discards a byte once the application has read it, but an
ST-TCP primary must keep it until the backup acknowledges it over the UDP
channel.  A :class:`RetentionPolicy` captures read bytes into the "second
receive buffer"; bytes that do not fit there keep occupying advertised
window (``overflow_bytes``), reproducing the paper's behaviour when the
backup falls behind.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.util.bytespan import EMPTY, ByteSpan
from repro.util.spanbuffer import SpanBuffer


class RetentionPolicy:
    """Interface the primary's ST-TCP engine plugs into the receive path."""

    def on_read(self, start_offset: int, span: ByteSpan) -> None:
        """Bytes [start_offset, start_offset+len) were read by the app."""
        raise NotImplementedError

    def overflow_bytes(self) -> int:
        """Read-but-unreleased bytes that exceed the second buffer and must
        keep occupying the first buffer's advertised window."""
        raise NotImplementedError


class ReceiveBuffer:
    """Reassembly buffer for one direction of a connection.

    Offsets are stream offsets (byte 0 ⇔ sequence IRS+1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"recv buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ready = SpanBuffer()  # head = read pointer, tail = rcv_nxt
        self._out_of_order: List[Tuple[int, ByteSpan]] = []  # sorted, disjoint
        self.retention: Optional[RetentionPolicy] = None
        self.bytes_duplicated = 0  # duplicate payload discarded

    # Pointers ---------------------------------------------------------------
    @property
    def read_offset(self) -> int:
        """Offset of the next byte the application will read."""
        return self._ready.head_offset

    @property
    def rcv_nxt_offset(self) -> int:
        """Offset of the next in-order byte expected from the network."""
        return self._ready.tail_offset

    @property
    def available(self) -> int:
        """In-order bytes ready for the application."""
        return len(self._ready)

    @property
    def out_of_order_bytes(self) -> int:
        return sum(len(span) for _, span in self._out_of_order)

    def window(self) -> int:
        """Advertised window: free space in the (first) receive buffer.

        Retained-but-overflowing bytes (ST-TCP second buffer full) continue
        to consume window, per §4.2.
        """
        used = len(self._ready) + self.out_of_order_bytes
        if self.retention is not None:
            used += self.retention.overflow_bytes()
        return max(self.capacity - used, 0)

    # Network side --------------------------------------------------------------
    def insert(self, start_offset: int, span: ByteSpan) -> int:
        """Insert payload at ``start_offset``; returns rcv_nxt advancement.

        Overlaps with already-received data are discarded.  The caller is
        responsible for having trimmed the segment to the advertised
        window; anything beyond ``rcv_nxt + window`` here is clipped as a
        safety net.
        """
        length = len(span)
        if length == 0:
            return 0
        rcv_nxt = self.rcv_nxt_offset
        limit = rcv_nxt + self.window()
        stop_offset = start_offset + length
        # Clip below rcv_nxt (already received) and above the window.
        if stop_offset <= rcv_nxt:
            self.bytes_duplicated += length
            return 0
        if start_offset < rcv_nxt:
            self.bytes_duplicated += rcv_nxt - start_offset
            span = span.slice(rcv_nxt - start_offset, length)
            start_offset = rcv_nxt
        if start_offset + len(span) > limit:
            overflow = start_offset + len(span) - limit
            if overflow >= len(span):
                return 0
            span = span.slice(0, len(span) - overflow)
        if start_offset > rcv_nxt:
            self._stash_out_of_order(start_offset, span)
            return 0
        # In-order: append, then drain any out-of-order runs now contiguous.
        self._ready.append(span)
        advanced = len(span)
        advanced += self._drain_out_of_order()
        return advanced

    def _stash_out_of_order(self, start: int, span: ByteSpan) -> None:
        """Insert into the sorted, disjoint out-of-order list, clipping any
        bytes already held."""
        stop = start + len(span)
        pieces: List[Tuple[int, ByteSpan]] = []
        cursor = start
        for held_start, held_span in self._out_of_order:
            held_stop = held_start + len(held_span)
            if held_stop <= cursor:
                continue
            if held_start >= stop:
                break
            if held_start > cursor:
                pieces.append((cursor, span.slice(cursor - start, held_start - start)))
            overlap_stop = min(held_stop, stop)
            if overlap_stop > cursor:
                self.bytes_duplicated += overlap_stop - max(cursor, held_start)
            cursor = max(cursor, held_stop)
        if cursor < stop:
            pieces.append((cursor, span.slice(cursor - start, stop - start)))
        if not pieces:
            return
        merged = self._out_of_order + pieces
        merged.sort(key=lambda item: item[0])
        self._out_of_order = merged

    def _drain_out_of_order(self) -> int:
        advanced = 0
        while self._out_of_order:
            start, span = self._out_of_order[0]
            rcv_nxt = self.rcv_nxt_offset
            stop = start + len(span)
            if start > rcv_nxt:
                break
            self._out_of_order.pop(0)
            if stop <= rcv_nxt:
                self.bytes_duplicated += len(span)
                continue
            if start < rcv_nxt:
                self.bytes_duplicated += rcv_nxt - start
                span = span.slice(rcv_nxt - start, len(span))
            self._ready.append(span)
            advanced += len(span)
        return advanced

    def first_gap(self) -> Optional[Tuple[int, int]]:
        """The first missing range [rcv_nxt, start-of-next-ooo-run), if any
        out-of-order data is waiting behind a hole."""
        if not self._out_of_order:
            return None
        return (self.rcv_nxt_offset, self._out_of_order[0][0])

    # Application side ---------------------------------------------------------
    def read(self, max_bytes: int) -> ByteSpan:
        """Pop up to ``max_bytes`` of in-order data for the application.

        Read bytes are offered to the retention policy (ST-TCP primary)
        before leaving the buffer.
        """
        count = min(max_bytes, len(self._ready))
        if count <= 0:
            return EMPTY
        start = self._ready.head_offset
        span = self._ready.pop_front(count)
        if self.retention is not None:
            self.retention.on_read(start, span)
        return span

    def fast_forward(self, offset: int) -> None:
        """Adopt ``offset`` as read pointer *and* ``rcv_nxt`` of an empty
        buffer (snapshot handoff: bytes below it were received and read
        by the previous endpoint)."""
        if self._out_of_order:
            raise ValueError("fast_forward with out-of-order data held")
        self._ready.seek(offset)

    def peek_unread(self, start: int, stop: int) -> ByteSpan:
        """Zero-copy view of not-yet-read in-order bytes (for ST-TCP
        recovery service)."""
        lo = max(start, self._ready.head_offset)
        hi = min(stop, self._ready.tail_offset)
        if lo >= hi:
            return EMPTY
        return self._ready.peek_absolute(lo, hi)

"""Input engine: sequence validation, the state machine, ACK processing.

Owns the inbound half of the connection — segment dispatch per TCP
state, RFC 793 acceptability checks, cumulative-ACK processing with fast
retransmit/recovery (NewReno partial ACKs), send-window updates, payload
reassembly hand-off, and FIN processing.  Registered extensions hook in
at two points: ``on_segment_in`` (may consume a segment before dispatch)
and ``on_ack`` (may adjust the unwrapped cumulative ACK before standard
processing sees it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConnectionRefused, ConnectionReset
from repro.tcp.congestion import DUPACK_THRESHOLD
from repro.tcp.constants import FLAG_ACK, FLAG_RST, PERSIST_TIMEOUT_MIN, TCPState
from repro.tcp.segment import TCPSegment
from repro.tcp.seqspace import unwrap
from repro.util.bytespan import EMPTY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.tcb import TCPConnection

#: Challenge-ACK budget (RFC 5961): at most this many per window.
CHALLENGE_LIMIT = 5
CHALLENGE_WINDOW = 0.1


class InputEngine:
    """Inbound segment processing for one connection."""

    __slots__ = (
        "conn",
        "dupacks",
        "fast_recovery_point",
        "_challenge_window_start",
        "_challenge_count",
    )

    def __init__(self, conn: "TCPConnection") -> None:
        self.conn = conn
        self.dupacks = 0
        self.fast_recovery_point: int | None = None
        # RFC 5961-style challenge-ACK rate limiting: without it, two
        # endpoints with momentarily inconsistent state can ping-pong
        # pure ACKs forever.
        self._challenge_window_start = 0.0
        self._challenge_count = 0

    # -- entry point ---------------------------------------------------------
    def on_segment(self, segment: TCPSegment) -> None:
        """Process one inbound (or tapped/injected) segment."""
        conn = self.conn
        conn.segments_received += 1
        conn.trace_event("recv", seg=segment)
        if segment.ts_val is not None and conn.use_timestamps:
            conn.last_ts_recv = segment.ts_val
        hooks = conn._ext_on_segment_in
        if hooks:
            consumed = False
            for ext in hooks:
                if ext.on_segment_in(conn, segment):
                    consumed = True
            if consumed:
                return
        if conn.state is TCPState.SYN_SENT:
            self._segment_in_syn_sent(segment)
        elif conn.state is TCPState.CLOSED:
            pass  # late segment after close; the layer answers with RST
        else:
            self._segment_in_general(segment)

    # -- SYN_SENT ------------------------------------------------------------
    def _segment_in_syn_sent(self, segment: TCPSegment) -> None:
        conn = self.conn
        ack_abs = unwrap(segment.ack, conn.snd_nxt) if segment.is_ack else None
        ack_acceptable = ack_abs is not None and conn.snd_una < ack_abs <= conn.snd_nxt
        if segment.is_ack and not ack_acceptable:
            if not segment.is_rst:
                conn.output.send_rst_for(segment)
            return
        if segment.is_rst:
            if ack_acceptable:
                conn._enter_closed(ConnectionRefused("connection refused"))
            return
        if not segment.is_syn:
            return
        conn.irs = segment.seq
        conn.rcv_nxt = conn.irs + 1
        conn.note_isn_learned("peer", conn.irs)
        if segment.mss_option is not None:
            conn.mss = min(conn.mss, segment.mss_option)
            conn.cc.mss = conn.mss
        if segment.ts_val is not None and conn.config.timestamps:
            conn.use_timestamps = True
            conn.last_ts_recv = segment.ts_val
        if ack_acceptable:
            assert ack_abs is not None
            conn.snd_una = ack_abs  # our SYN is acked
            conn.retransmit.retransmit_count = 0
            conn.retransmit.rto_timer.stop()
            self._update_send_window(segment, conn.irs, ack_abs)
            conn.set_state(TCPState.ESTABLISHED)
            conn.trace_event("established")
            conn.end_span("handshake", conn._handshake_sid)
            conn._handshake_sid = None
            conn.ack_now()
            if conn.on_established is not None:
                conn.on_established()
            conn.try_output()
        else:
            # Simultaneous open.
            conn.set_state(TCPState.SYN_RCVD)
            conn.output.send_syn(with_ack=True)
            conn.retransmit.arm_rto()

    # -- everything else -----------------------------------------------------
    def _segment_in_general(self, segment: TCPSegment) -> None:
        conn = self.conn
        seq_abs = unwrap(segment.seq, conn.rcv_nxt)
        seg_len = segment.sequence_space_length
        if not self._sequence_acceptable(seq_abs, seg_len):
            if not segment.is_rst:
                # Duplicate or out-of-window: re-ACK our current state
                # (rate-limited so two confused peers cannot loop).
                self.challenge_ack()
            return
        if segment.is_rst:
            conn._enter_closed(ConnectionReset("connection reset by peer"))
            return
        if segment.is_syn and conn.state is TCPState.SYN_RCVD and seq_abs == conn.irs:
            # Retransmitted SYN: re-send our SYN/ACK.
            conn.output.send_syn(with_ack=True)
            return
        if segment.is_syn and seq_abs >= conn.rcv_nxt:
            # SYN inside the window is a protocol violation.
            conn.output.emit(FLAG_RST | FLAG_ACK, conn.snd_nxt, EMPTY)
            conn._enter_closed(ConnectionReset("SYN received mid-connection"))
            return
        if not segment.is_ack:
            return
        if not self._process_ack(segment, seq_abs):
            return
        if segment.payload_length > 0:
            self._process_payload(segment, seq_abs)
        if segment.is_fin:
            self._process_fin(segment, seq_abs)

    def _sequence_acceptable(self, seq_abs: int, seg_len: int) -> bool:
        conn = self.conn
        window = conn.recv_buffer.window()
        if seg_len == 0:
            if window == 0:
                return seq_abs == conn.rcv_nxt
            return conn.rcv_nxt <= seq_abs < conn.rcv_nxt + window
        if window == 0:
            return False
        return seq_abs < conn.rcv_nxt + window and seq_abs + seg_len > conn.rcv_nxt

    # -- ACK processing ------------------------------------------------------
    def _process_ack(self, segment: TCPSegment, seq_abs: int) -> bool:
        """Returns False when processing must stop (segment dropped)."""
        conn = self.conn
        ack_abs = unwrap(segment.ack, conn.snd_una)
        hooks = conn._ext_on_ack
        if hooks:
            for ext in hooks:
                ack_abs = ext.on_ack(conn, segment, ack_abs)
        if conn.state is TCPState.SYN_RCVD:
            if conn.snd_una <= ack_abs <= conn.snd_max:
                conn.retransmit.retransmit_count = 0
                conn.retransmit.rto_timer.stop()
                conn.set_state(
                    TCPState.FIN_WAIT_1 if conn._fin_pending else TCPState.ESTABLISHED
                )
                self._update_send_window(segment, seq_abs, ack_abs, force=True)
                conn.trace_event("established")
                conn.end_span("handshake", conn._handshake_sid)
                conn._handshake_sid = None
                if ack_abs > conn.snd_una:
                    conn.snd_una = ack_abs
                if conn.on_established is not None:
                    conn.on_established()
            else:
                conn.output.send_rst_for(segment)
                return False
        if ack_abs > conn.snd_max:
            self.challenge_ack()
            return False
        # Window update comes first (RFC 793 ACK processing order): the
        # try_output triggered by a new ACK must see the window this very
        # segment advertises, or a sender can overshoot into a window the
        # peer just closed.
        self._update_send_window(segment, seq_abs, ack_abs)
        if ack_abs > conn.snd_una:
            self.apply_cumulative_ack(ack_abs)
        elif (
            ack_abs == conn.snd_una
            and segment.payload_length == 0
            and not segment.is_syn
            and not segment.is_fin
            and conn.flight_size > 0
        ):
            self._handle_duplicate_ack()
        # State transitions driven by our FIN being acknowledged.
        if conn._fin_sent and conn._fin_seq is not None and conn.snd_una > conn._fin_seq:
            conn._fin_acked = True
            if conn.state is TCPState.FIN_WAIT_1:
                conn.set_state(TCPState.FIN_WAIT_2)
            elif conn.state is TCPState.CLOSING:
                conn._enter_time_wait()
            elif conn.state is TCPState.LAST_ACK:
                conn._enter_closed(None)
                return False
        return True

    def apply_cumulative_ack(self, ack_abs: int) -> None:
        """Advance ``snd_una`` to ``ack_abs`` with all side effects: buffer
        release, RTT sampling, congestion control, recovery continuation,
        RTO management, and a follow-up output pass."""
        conn = self.conn
        retransmit = conn.retransmit
        bytes_acked = ack_abs - conn.snd_una
        previous_una = conn.snd_una
        conn.snd_una = ack_abs
        self.dupacks = 0
        retransmit.retransmit_count = 0
        retransmit.rtt.reset_backoff()
        # Release acknowledged payload bytes (exclude SYN/FIN seq space).
        data_ack_offset = conn.buffers.snd_offset(ack_abs)
        if conn._fin_seq is not None and ack_abs > conn._fin_seq:
            data_ack_offset = conn.buffers.snd_offset(conn._fin_seq)
        if data_ack_offset > conn.send_buffer.una_offset:
            conn.send_buffer.ack_to(data_ack_offset)
            if conn.on_writable is not None:
                conn.on_writable()
        # RTT sample (Karn-protected: timing is cleared on retransmission).
        if retransmit.timing is not None and ack_abs >= retransmit.timing[0]:
            sample = conn.sim.now - retransmit.timing[1]
            retransmit.rtt.on_measurement(sample)
            conn.layer.rtt_samples.observe(sample)
            retransmit.timing = None
        # Congestion control.
        if conn.cc.in_fast_recovery:
            if (
                self.fast_recovery_point is not None
                and ack_abs >= self.fast_recovery_point
            ):
                conn.cc.exit_fast_recovery()
                self.fast_recovery_point = None
            else:
                # NewReno partial ACK: retransmit the next hole at once.
                conn.cc.on_partial_ack(bytes_acked)
                retransmit.retransmit_head()
        else:
            conn.cc.on_ack_new(bytes_acked)
        # Go-back-N continuation after an RTO (Linux-style slow-start
        # retransmission driven by returning ACKs).
        if retransmit.recovery_point is not None:
            if ack_abs >= retransmit.recovery_point:
                retransmit.recovery_point = None
            elif ack_abs > previous_una and ack_abs < conn.snd_max:
                retransmit.retransmit_head()
        # Retransmission timer: restart while data remains outstanding.
        if conn.snd_una < conn.snd_max:
            retransmit.arm_rto()
        else:
            retransmit.rto_timer.stop()
            retransmit.recovery_point = None
        if (
            conn._retx_sid is not None
            and retransmit.recovery_point is None
            and not conn.cc.in_fast_recovery
        ):
            conn.end_span("retx_burst", conn._retx_sid, retransmissions=conn.retransmissions)
            conn._retx_sid = None
        conn.try_output()

    def _handle_duplicate_ack(self) -> None:
        conn = self.conn
        conn.dupacks_received += 1
        self.dupacks += 1
        if conn.cc.in_fast_recovery:
            conn.cc.on_dupack_in_recovery()
            conn.try_output()
            return
        if self.dupacks == DUPACK_THRESHOLD:
            self.fast_recovery_point = conn.snd_max
            conn.cc.enter_fast_recovery(conn.flight_size)
            conn.retransmit.timing = None
            if conn._retx_sid is None:
                conn._retx_sid = conn.begin_span(
                    "retx_burst", cause="dupacks", flight=conn.flight_size
                )
            conn.retransmit.retransmit_head()
            conn.retransmit.arm_rto()

    def _update_send_window(
        self, segment: TCPSegment, seq_abs: int, ack_abs: int, force: bool = False
    ) -> None:
        conn = self.conn
        if (
            force
            or seq_abs > conn._snd_wl1
            or (seq_abs == conn._snd_wl1 and ack_abs >= conn._snd_wl2)
        ):
            old_window = conn.snd_wnd
            conn.snd_wnd = segment.window
            conn._snd_wl1 = seq_abs
            conn._snd_wl2 = ack_abs
            if conn.snd_wnd > 0:
                conn.retransmit.persist_timer.stop()
                conn.retransmit.persist_interval = PERSIST_TIMEOUT_MIN
                if old_window == 0:
                    conn.try_output()

    def challenge_ack(self) -> None:
        """Rate-limited ACK answering an unacceptable segment (RFC 5961)."""
        conn = self.conn
        now = conn.sim.now
        if now - self._challenge_window_start > CHALLENGE_WINDOW:
            self._challenge_window_start = now
            self._challenge_count = 0
        if self._challenge_count >= CHALLENGE_LIMIT:
            return
        self._challenge_count += 1
        conn.ack_now()

    # -- payload -------------------------------------------------------------
    def _process_payload(self, segment: TCPSegment, seq_abs: int) -> None:
        conn = self.conn
        offset = conn.buffers.rcv_offset(seq_abs)
        before = conn.rcv_nxt
        advanced = conn.recv_buffer.insert(offset, segment.payload)
        conn.bytes_received += segment.payload_length
        if advanced > 0:
            conn.rcv_nxt += advanced
            full_segments = max(1, advanced // conn.mss)
            conn.output.schedule_ack(full_segments)
            if conn.on_rcv_advance is not None:
                conn.on_rcv_advance(conn.rcv_nxt)
            if conn.on_readable is not None:
                conn.on_readable()
        else:
            # Out-of-order or duplicate: immediate ACK to feed the sender's
            # fast-retransmit machinery.
            conn.ack_now()
            return
        if conn.recv_buffer.out_of_order_bytes > 0 and conn.rcv_nxt > before:
            # Filled part of a hole but more reordering remains: ACK now.
            conn.ack_now()

    # -- FIN -----------------------------------------------------------------
    def _process_fin(self, segment: TCPSegment, seq_abs: int) -> None:
        conn = self.conn
        fin_seq = seq_abs + segment.payload_length
        if fin_seq != conn.rcv_nxt:
            return  # FIN beyond a hole; wait for retransmission
        if conn._fin_received:
            conn.ack_now()
            return
        conn._fin_received = True
        conn.rcv_nxt += 1
        conn.ack_now()
        if conn.on_readable is not None:
            conn.on_readable()  # wake readers so they observe EOF
        if conn.state is TCPState.ESTABLISHED:
            conn.set_state(TCPState.CLOSE_WAIT)
        elif conn.state is TCPState.FIN_WAIT_1:
            if conn._fin_acked:
                conn._enter_time_wait()
            else:
                conn.set_state(TCPState.CLOSING)
        elif conn.state is TCPState.FIN_WAIT_2:
            conn._enter_time_wait()
        elif conn.state is TCPState.TIME_WAIT:
            conn.retransmit.time_wait_timer.start(conn.config.time_wait)

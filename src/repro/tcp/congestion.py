"""TCP Reno congestion control (RFC 5681 + NewReno-style recovery point).

The controller owns ``cwnd``/``ssthresh`` and the fast-recovery inflation
bookkeeping; the TCB decides *when* the events happen (new ACK, duplicate
ACK, RTO) and asks the controller how much it may have in flight.
"""

from __future__ import annotations

from repro.tcp.constants import DEFAULT_MSS

#: RFC 3390 initial window: min(4·MSS, max(2·MSS, 4380 B)) — 3 segments
#: at the Ethernet MSS of 1460.
INITIAL_WINDOW_CAP = 4380

#: Duplicate ACKs that trigger fast retransmit.
DUPACK_THRESHOLD = 3


def initial_window(mss: int) -> int:
    """RFC 3390 initial congestion window in bytes."""
    return min(4 * mss, max(2 * mss, INITIAL_WINDOW_CAP))


class RenoCongestionControl:
    """Slow start, congestion avoidance, fast retransmit/recovery."""

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        if mss <= 0:
            raise ValueError(f"MSS must be positive, got {mss}")
        self.mss = mss
        self.cwnd = initial_window(mss)
        self.ssthresh = float("inf")
        self.in_fast_recovery = False
        self._avoidance_acc = 0  # byte counter for congestion avoidance
        # Counters for metrics/ablations.
        self.fast_retransmits = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def window(self) -> int:
        """Current congestion window in bytes."""
        return int(self.cwnd)

    # Event handlers ---------------------------------------------------------
    def on_ack_new(self, bytes_acked: int) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``bytes_acked``."""
        if self.in_fast_recovery:
            # Handled by exit_fast_recovery; partial-ACK logic lives in the
            # TCB which decides whether recovery is over.
            return
        if self.in_slow_start:
            self.cwnd += min(bytes_acked, self.mss)
        else:
            # Congestion avoidance: one MSS per cwnd of data acked.
            self._avoidance_acc += bytes_acked
            if self._avoidance_acc >= self.cwnd:
                self._avoidance_acc = 0
                self.cwnd += self.mss

    def enter_fast_recovery(self, flight_size: int) -> None:
        """Third duplicate ACK: halve and inflate (RFC 5681 §3.2)."""
        self.fast_retransmits += 1
        self.ssthresh = max(flight_size / 2.0, 2 * self.mss)
        self.cwnd = self.ssthresh + DUPACK_THRESHOLD * self.mss
        self.in_fast_recovery = True
        self._avoidance_acc = 0

    def on_dupack_in_recovery(self) -> None:
        """Each further dupack inflates cwnd by one MSS."""
        if self.in_fast_recovery:
            self.cwnd += self.mss

    def on_partial_ack(self, bytes_acked: int) -> None:
        """NewReno partial ACK: deflate by the amount acked, re-inflate one
        MSS (approximation of RFC 6582 §3.2 step 5)."""
        if self.in_fast_recovery:
            self.cwnd = max(self.cwnd - bytes_acked + self.mss, self.mss)

    def exit_fast_recovery(self) -> None:
        """Recovery point fully acked: deflate to ssthresh."""
        if self.in_fast_recovery:
            self.in_fast_recovery = False
            self.cwnd = max(self.ssthresh, 2 * self.mss)
            self._avoidance_acc = 0

    def on_retransmission_timeout(self, flight_size: int) -> None:
        """RTO: collapse to one segment (RFC 5681 §3.1)."""
        self.timeouts += 1
        self.ssthresh = max(flight_size / 2.0, 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self._avoidance_acc = 0

    def restart_after_idle(self) -> None:
        """RFC 2861: after an idle period of at least one RTO, restart
        from the initial window (ssthresh is preserved)."""
        if not self.in_fast_recovery:
            self.cwnd = min(self.cwnd, initial_window(self.mss))
            self._avoidance_acc = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        phase = (
            "fast-recovery"
            if self.in_fast_recovery
            else ("slow-start" if self.in_slow_start else "avoidance")
        )
        return f"<Reno cwnd={int(self.cwnd)} ssthresh={self.ssthresh} {phase}>"

"""Retransmission engine: loss timers, head retransmit, backoff.

Owns everything that re-sends already-committed sequence space — the
RFC 6298 retransmission timer with Linux bounds, the zero-window persist
timer, TIME_WAIT expiry, Karn-protected RTT timing, and the go-back-N
recovery point used after a timeout (or a failover, via
:meth:`force_go_back_n`).

The engine never *builds* segments itself beyond choosing what range to
resend; emission goes through the connection's output engine so window
advertisement, delayed-ACK housekeeping, and transmit filters apply
uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConnectionTimeout
from repro.tcp.config import TCPConfig
from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_FIN,
    PERSIST_TIMEOUT_MAX,
    PERSIST_TIMEOUT_MIN,
    TCPState,
)
from repro.tcp.rtt import RTTEstimator
from repro.tcp.timers import RestartableTimer
from repro.util.bytespan import EMPTY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.tcb import TCPConnection


class RetransmitEngine:
    """Loss recovery and the timers that can cause (re)transmissions."""

    __slots__ = (
        "conn",
        "rtt",
        "rto_timer",
        "persist_timer",
        "time_wait_timer",
        "retransmit_count",
        "recovery_point",
        "timing",
        "persist_interval",
    )

    def __init__(self, conn: "TCPConnection", config: TCPConfig) -> None:
        self.conn = conn
        self.rtt = RTTEstimator(config.rto_min, config.rto_max, config.rto_initial)
        sim = conn.sim
        self.rto_timer = RestartableTimer(sim, self._on_rto, "rto")
        self.persist_timer = RestartableTimer(sim, self._on_persist, "persist")
        self.time_wait_timer = RestartableTimer(sim, self._on_time_wait, "time_wait")
        #: Consecutive retransmissions of the current head (give-up limit).
        self.retransmit_count = 0
        #: Go-back-N target after an RTO (None outside recovery).
        self.recovery_point: Optional[int] = None
        #: (end_seq, sent_at) of the segment currently being RTT-timed;
        #: cleared on retransmission (Karn's algorithm).
        self.timing: Optional[Tuple[int, float]] = None
        self.persist_interval: float = PERSIST_TIMEOUT_MIN

    # -- timer arming --------------------------------------------------------
    def arm_rto(self) -> None:
        if self.conn.output_inhibited:
            return
        self.rto_timer.start(self.rtt.rto)

    def arm_rto_if_idle(self) -> None:
        if self.conn.output_inhibited:
            return
        self.rto_timer.start_if_idle(self.rtt.rto)

    def arm_persist(self) -> None:
        if self.conn.output_inhibited or self.persist_timer.running:
            return
        self.persist_timer.start(self.persist_interval)

    def stop_loss_timers(self) -> None:
        """Stop every timer this engine owns (connection teardown)."""
        self.rto_timer.stop()
        self.persist_timer.stop()
        self.time_wait_timer.stop()

    # -- RTO -----------------------------------------------------------------
    def _on_rto(self) -> None:
        conn = self.conn
        if not conn.layer.host.is_up or conn.state is TCPState.CLOSED:
            return
        self.retransmit_count += 1
        limit = (
            conn.config.max_syn_retransmits
            if conn.state in (TCPState.SYN_SENT, TCPState.SYN_RCVD)
            else conn.config.max_retransmits
        )
        if self.retransmit_count > limit:
            conn.trace_event("give_up", retransmits=self.retransmit_count)
            error: BaseException
            if conn.state is TCPState.SYN_SENT:
                error = ConnectionTimeout("connect timed out")
            else:
                error = ConnectionTimeout("too many retransmissions")
            conn._enter_closed(error)
            return
        self.rtt.on_timeout()
        self.timing = None  # Karn: never sample a retransmitted range
        if conn.is_synchronized:
            conn.cc.on_retransmission_timeout(conn.flight_size)
            conn.input.fast_recovery_point = None
            conn.input.dupacks = 0
            if conn.snd_una < conn.snd_max:
                self.recovery_point = conn.snd_max
        if conn._retx_sid is None:
            conn._retx_sid = conn.begin_span(
                "retx_burst", cause="rto", flight=conn.flight_size
            )
        self.retransmit_head()
        self.arm_rto()

    def retransmit_head(self) -> None:
        """Retransmit the oldest unacknowledged segment."""
        conn = self.conn
        conn.retransmissions += 1
        if conn.state is TCPState.SYN_SENT:
            conn.output.send_syn(with_ack=False)
            return
        if conn.state is TCPState.SYN_RCVD:
            conn.output.send_syn(with_ack=True)
            return
        if conn._fin_sent and conn._fin_seq is not None and conn.snd_una == conn._fin_seq:
            conn.output.emit(FLAG_ACK | FLAG_FIN, conn._fin_seq, EMPTY)
            return
        if conn.snd_una >= conn.snd_max:
            return
        start = conn.buffers.snd_offset(conn.snd_una)
        end_limit = conn._fin_seq if conn._fin_seq is not None else conn.snd_max
        chunk = min(conn.mss, conn.buffers.snd_offset(end_limit) - start)
        if chunk <= 0:
            return
        payload = conn.send_buffer.data_range(start, start + chunk)
        flags = FLAG_ACK
        if (
            conn._fin_sent
            and conn._fin_seq is not None
            and conn.snd_una + chunk == conn._fin_seq
        ):
            flags |= FLAG_FIN
            conn.output.emit(flags, conn.snd_una, payload)
            return
        conn.output.emit(flags, conn.snd_una, payload)

    def force_go_back_n(self) -> None:
        """Failover recovery: retransmit the head immediately and walk the
        rest of the outstanding window as returning ACKs permit."""
        conn = self.conn
        self.recovery_point = conn.snd_max
        self.retransmit_head()
        self.arm_rto()

    # -- persist (zero-window probing) ---------------------------------------
    def _on_persist(self) -> None:
        conn = self.conn
        if not conn.layer.host.is_up or not conn.is_synchronized:
            return
        if conn.snd_wnd > 0:
            self.persist_interval = PERSIST_TIMEOUT_MIN
            conn.try_output()
            return
        # Send a one-byte window probe if data is waiting.  The probe is
        # a real data byte and consumes sequence space: if the receiver's
        # window opened meanwhile it will ACK the byte, and that ACK must
        # be coherent with our send state.
        next_offset = conn.buffers.snd_offset(conn.snd_nxt)
        if conn.send_buffer.tail_offset > next_offset and conn.snd_nxt == conn.snd_max:
            payload = conn.send_buffer.data_range(next_offset, next_offset + 1)
            conn.output.emit(FLAG_ACK, conn.snd_nxt, payload)
            conn.snd_nxt += 1
            conn.snd_max = conn.snd_nxt
        self.persist_interval = min(self.persist_interval * 2, PERSIST_TIMEOUT_MAX)
        self.persist_timer.start(self.persist_interval)

    # -- TIME_WAIT -----------------------------------------------------------
    def _on_time_wait(self) -> None:
        conn = self.conn
        if conn.state is TCPState.TIME_WAIT:
            conn._enter_closed(None)

"""The TCP connection: a slim facade over four composable engines.

This is a full, wire-faithful TCP endpoint: three-way handshake, sliding
window with flow and Reno congestion control, RFC 6298 retransmission
timing with Linux bounds, delayed ACKs, zero-window probing, orderly and
abortive teardown, and TIME_WAIT.

The behaviour lives in four engines with explicit interfaces:

* :class:`repro.tcp.input.InputEngine` — sequence validation, the state
  machine, ACK processing;
* :class:`repro.tcp.output.OutputEngine` — segmentization, window /
  Nagle / delayed-ACK decisions, emission;
* :class:`repro.tcp.retransmit.RetransmitEngine` — RTO/persist/TIME_WAIT
  timers, head retransmit, backoff;
* :class:`repro.tcp.buffers.BufferManager` — send/receive buffers and
  sequence-space ↔ stream-offset translation.

:class:`TCPConnection` coordinates them, holds the shared connection
state (addresses, TCP state, sequence variables, FIN bookkeeping,
callbacks, counters), and hosts the extension chain: protocol variants
(ST-TCP replication, observability probes) register
:class:`repro.tcp.extension.TCPExtension` objects per connection and the
engines call their hooks at fixed pipeline points.  A connection with no
extensions pays one falsy check per hook site — nothing else.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.errors import ConnectionClosed, ConnectionReset
from repro.net.addresses import IPAddress
from repro.tcp.buffers import BufferManager
from repro.tcp.config import TCPConfig
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_RST,
    SYNCHRONIZED_STATES,
    TCPState,
)
from repro.tcp.extension import TCPExtension, overridden_hooks
from repro.tcp.input import InputEngine
from repro.tcp.output import OutputEngine
from repro.tcp.retransmit import RetransmitEngine
from repro.tcp.segment import TCPSegment
from repro.util.bytespan import EMPTY, ByteSpan


class TCPConnection:
    """One endpoint of one TCP connection (facade over the engines)."""

    def __init__(
        self,
        layer: Any,
        local_ip: IPAddress,
        local_port: int,
        remote_ip: IPAddress,
        remote_port: int,
        config: TCPConfig,
    ) -> None:
        config.validate()
        self.layer = layer
        self.sim = layer.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config
        self.state = TCPState.CLOSED

        # Sequence state (absolute/unwrapped; see repro.tcp.seqspace).
        self.iss = 0
        self.irs = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0
        self.snd_wnd = 0
        self._snd_wl1 = -1
        self._snd_wl2 = -1
        self.rcv_nxt = 0

        # Algorithms shared across engines.
        self.mss = config.mss  # effective MSS after option exchange
        self.cc = RenoCongestionControl(config.mss)

        # Extension chain: per-hook dispatch tuples stay empty (and the
        # hook sites a single falsy check) until an extension registers.
        self.output_inhibited = False
        self._extensions: Tuple[TCPExtension, ...] = ()
        self._ext_on_segment_in: Tuple[TCPExtension, ...] = ()
        self._ext_on_ack: Tuple[TCPExtension, ...] = ()
        self._ext_filter_transmit: Tuple[TCPExtension, ...] = ()
        self._ext_on_state_change: Tuple[TCPExtension, ...] = ()
        self._ext_on_isn_learned: Tuple[TCPExtension, ...] = ()
        self._ext_after_output: Tuple[TCPExtension, ...] = ()

        # FIN bookkeeping (read by input, output and retransmit engines).
        self._fin_pending = False  # app asked to close; FIN not yet sent
        self._fin_sent = False
        self._fin_seq: Optional[int] = None
        self._fin_acked = False
        self._fin_received = False

        # Timestamp option state.
        self.use_timestamps = False
        self.last_ts_recv: Optional[float] = None

        # App-facing callbacks (wired by TCPSocket / listener / ST-TCP).
        self.on_established: Optional[Callable[[], None]] = None
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[BaseException], None]] = None
        #: Called with the new rcv_nxt whenever the in-order receive
        #: stream advances (distinct from on_readable, which the socket
        #: consumes); used by the ST-TCP engines.
        self.on_rcv_advance: Optional[Callable[[int], None]] = None

        # Counters.
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.dupacks_received = 0
        self.error: Optional[BaseException] = None

        # Span bookkeeping (None while no episode is open).
        self._handshake_sid: Optional[int] = None
        self._retx_sid: Optional[int] = None

        # Engines.
        self.buffers = BufferManager(self, config)
        self.retransmit = RetransmitEngine(self, config)
        self.output = OutputEngine(self, config)
        self.input = InputEngine(self)

        # Aliases kept for the historical flat API (tests, ST-TCP, tools).
        self.send_buffer = self.buffers.send_buffer
        self.recv_buffer = self.buffers.recv_buffer
        self.rtt = self.retransmit.rtt
        self.rto_timer = self.retransmit.rto_timer
        self.persist_timer = self.retransmit.persist_timer
        self.time_wait_timer = self.retransmit.time_wait_timer
        self.delack_timer = self.output.delack_timer

    # ------------------------------------------------------------------ utils
    @property
    def key(self) -> tuple:
        return (self.local_ip.value, self.local_port, self.remote_ip.value, self.remote_port)

    def _snd_offset(self, seq_abs: int) -> int:
        """Send-stream offset of an absolute sequence number."""
        return self.buffers.snd_offset(seq_abs)

    def _snd_seq(self, offset: int) -> int:
        return self.buffers.snd_seq(offset)

    def _rcv_offset(self, seq_abs: int) -> int:
        return self.buffers.rcv_offset(seq_abs)

    @property
    def flight_size(self) -> int:
        """Unacknowledged sequence space outstanding."""
        return self.snd_max - self.snd_una

    @property
    def is_synchronized(self) -> bool:
        return self.state in SYNCHRONIZED_STATES

    @property
    def eof(self) -> bool:
        """True when the peer's FIN has arrived and all data was read."""
        return self._fin_received and self.recv_buffer.available == 0

    @property
    def readable_bytes(self) -> int:
        return self.recv_buffer.available

    # -------------------------------------------------------------- tracing
    def trace_event(self, event: str, **fields: Any) -> None:
        if self.sim.trace.enabled_for("tcp"):
            self.sim.trace.emit(
                self.sim.now,
                "tcp",
                event,
                host=self.layer.host.name,
                local=f"{self.local_ip}:{self.local_port}",
                remote=f"{self.remote_ip}:{self.remote_port}",
                state=self.state.value,
                **fields,
            )

    def begin_span(self, name: str, **fields: Any) -> Optional[int]:
        trace = self.sim.trace
        if not trace.enabled_for("tcp"):
            return None
        return trace.begin_span(
            self.sim.now,
            "tcp",
            name,
            host=self.layer.host.name,
            remote=f"{self.remote_ip}:{self.remote_port}",
            **fields,
        )

    def end_span(self, name: str, sid: Optional[int], **fields: Any) -> None:
        if sid is not None:
            self.sim.trace.end_span(self.sim.now, "tcp", name, sid, **fields)

    # ----------------------------------------------------------- extensions
    @property
    def extensions(self) -> Tuple[TCPExtension, ...]:
        """The registered extension chain, in dispatch order."""
        return self._extensions

    def add_extension(self, extension: TCPExtension, index: Optional[int] = None) -> None:
        """Register ``extension``; hooks run in registration order."""
        chain = list(self._extensions)
        if index is None:
            chain.append(extension)
        else:
            chain.insert(index, extension)
        self._extensions = tuple(chain)
        self._rebuild_extension_chains()
        extension.on_attach(self)

    def remove_extension(self, extension: TCPExtension) -> None:
        """Unregister ``extension`` (no-op when absent)."""
        if extension not in self._extensions:
            return
        self._extensions = tuple(e for e in self._extensions if e is not extension)
        self._rebuild_extension_chains()
        extension.on_detach(self)

    def extension(self, name: str) -> Optional[TCPExtension]:
        """The first registered extension with ``name``, if any."""
        for ext in self._extensions:
            if ext.name == name:
                return ext
        return None

    def _rebuild_extension_chains(self) -> None:
        overrides = {ext: frozenset(overridden_hooks(ext)) for ext in self._extensions}

        def chain(hook: str) -> Tuple[TCPExtension, ...]:
            return tuple(e for e in self._extensions if hook in overrides[e])

        self._ext_on_segment_in = chain("on_segment_in")
        self._ext_on_ack = chain("on_ack")
        self._ext_filter_transmit = chain("filter_transmit")
        self._ext_on_state_change = chain("on_state_change")
        self._ext_on_isn_learned = chain("on_isn_learned")
        self._ext_after_output = chain("after_output")

    def set_state(self, new_state: TCPState) -> None:
        """Transition the TCP state, notifying state-change hooks."""
        old = self.state
        self.state = new_state
        if old is not new_state:
            hooks = self._ext_on_state_change
            if hooks:
                for ext in hooks:
                    ext.on_state_change(self, old, new_state)

    def note_isn_learned(self, kind: str, isn_abs: int) -> None:
        hooks = self._ext_on_isn_learned
        if hooks:
            for ext in hooks:
                ext.on_isn_learned(self, kind, isn_abs)

    def adopt_send_isn(self, isn_abs: int) -> None:
        """Re-anchor the send sequence space on a different ISN (§4.1).

        Used by replication extensions when the ISN this endpoint chose
        locally must be replaced by the one the peer actually handshook
        with: every send-side anchor moves so that ``iss == isn_abs``
        with the SYN consumed and nothing in flight.
        """
        self.iss = isn_abs
        self.snd_una = isn_abs
        self.snd_nxt = isn_abs + 1
        self.snd_max = isn_abs + 1
        self.note_isn_learned("rebase", isn_abs)

    # ------------------------------------------------------------- opening
    def open_active(self) -> None:
        """Client-side connect: send SYN, enter SYN_SENT."""
        if self.state is not TCPState.CLOSED:
            raise ConnectionClosed(f"open_active in state {self.state}")
        self._choose_isn()
        self.set_state(TCPState.SYN_SENT)
        self._handshake_sid = self.begin_span("handshake", kind="active")
        self.output.send_syn(with_ack=False)
        self.retransmit.arm_rto()
        self.trace_event("active_open")

    def open_passive(self, syn: TCPSegment) -> None:
        """Server-side: a listener accepted this SYN; answer SYN/ACK."""
        if self.state is not TCPState.CLOSED:
            raise ConnectionClosed(f"open_passive in state {self.state}")
        self._choose_isn()
        self.irs = syn.seq  # adopt the wire value as the absolute origin
        self.rcv_nxt = self.irs + 1
        self.note_isn_learned("peer", self.irs)
        if syn.mss_option is not None:
            self.mss = min(self.mss, syn.mss_option)
            self.cc.mss = self.mss
        if syn.ts_val is not None and self.config.timestamps:
            self.use_timestamps = True
            self.last_ts_recv = syn.ts_val
        self.set_state(TCPState.SYN_RCVD)
        self._handshake_sid = self.begin_span("handshake", kind="passive")
        self.output.send_syn(with_ack=True)
        self.retransmit.arm_rto()
        self.trace_event("passive_open")

    def _choose_isn(self) -> None:
        if self.config.isn is not None:
            isn = self.config.isn
        else:
            isn = self.layer.generate_isn()
        self.iss = isn
        self.snd_una = isn
        self.snd_nxt = isn + 1  # SYN consumes one sequence number
        self.snd_max = isn + 1
        self.note_isn_learned("local", isn)

    # --------------------------------------------------------- application API
    def app_write(self, data: ByteSpan) -> int:
        """Accept bytes from the application; returns how many fit."""
        if self.state in (TCPState.CLOSED, TCPState.LISTEN):
            raise ConnectionClosed("write on unconnected socket")
        if self._fin_pending or self._fin_sent:
            raise ConnectionClosed("write after close")
        accepted = self.send_buffer.append(data)
        if accepted and self.is_synchronized:
            self.try_output()
        return accepted

    def app_read(self, max_bytes: int) -> ByteSpan:
        """Pop up to ``max_bytes`` of received in-order data."""
        before = self.recv_buffer.window()
        span = self.recv_buffer.read(max_bytes)
        if len(span) and self.is_synchronized:
            self.output.maybe_send_window_update(before)
        return span

    def app_close(self) -> None:
        """Orderly close: flush pending data then send FIN."""
        if self.state in (TCPState.CLOSED, TCPState.LISTEN):
            self._enter_closed(None)
            return
        if self._fin_pending or self._fin_sent:
            return
        self._fin_pending = True
        if self.state is TCPState.SYN_SENT:
            # Nothing on the wire that matters; just drop the connection.
            self._enter_closed(None)
            return
        if self.state is TCPState.ESTABLISHED or self.state is TCPState.SYN_RCVD:
            self.set_state(TCPState.FIN_WAIT_1)
        elif self.state is TCPState.CLOSE_WAIT:
            self.set_state(TCPState.LAST_ACK)
        self.try_output()

    def app_abort(self) -> None:
        """Abortive close: emit RST and discard state."""
        if self.is_synchronized or self.state is TCPState.SYN_RCVD:
            self.output.emit(FLAG_RST | FLAG_ACK, self.snd_nxt, EMPTY)
        self._enter_closed(ConnectionReset("connection aborted locally"))

    # ---------------------------------------------------------- engine facade
    def try_output(self) -> None:
        """Send whatever the windows currently allow."""
        self.output.try_output()

    def ack_now(self) -> None:
        """Send an immediate pure ACK."""
        self.output.ack_now()

    def on_segment(self, segment: TCPSegment) -> None:
        """Process one inbound (or tapped/injected) segment."""
        self.input.on_segment(segment)

    def _maybe_send_window_update(self, window_before: int) -> None:
        self.output.maybe_send_window_update(window_before)

    # ------------------------------------------------------------ state exits
    def _enter_time_wait(self) -> None:
        self.set_state(TCPState.TIME_WAIT)
        self.retransmit.rto_timer.stop()
        self.retransmit.persist_timer.stop()
        self.retransmit.time_wait_timer.start(self.config.time_wait)
        self.trace_event("time_wait")

    def _enter_closed(self, error: Optional[BaseException]) -> None:
        previous = self.state
        self.set_state(TCPState.CLOSED)
        self.error = error
        self.retransmit.stop_loss_timers()
        self.output.delack_timer.stop()
        self.layer.connection_closed(self)
        # Crash mid-span: close any open episode so the trace stays paired.
        self.end_span("handshake", self._handshake_sid, outcome="closed")
        self._handshake_sid = None
        self.end_span("retx_burst", self._retx_sid, outcome="closed")
        self._retx_sid = None
        self.trace_event("closed", previous=previous.value, error=repr(error))
        if error is not None and self.on_error is not None:
            self.on_error(error)
        if self.on_closed is not None:
            self.on_closed()

    # -------------------------------------------------------- failover surface
    def takeover(self) -> None:
        """Failover entry point (§5): ask every registered extension that
        models a standby replica to go live on this connection.

        Dispatches to each extension exposing a ``takeover(conn)``
        method, in registration order; a connection with no such
        extension ignores the call.
        """
        for ext in self._extensions:
            action = getattr(ext, "takeover", None)
            if action is not None:
                action(self)

    def fast_forward(self, rcv_offset: int, snd_offset: int) -> None:
        """Adopt mid-connection stream positions without replaying bytes.

        Snapshot handoff: a replacement shadow joins at the primary's
        quiescent offsets (cluster election).  Only legal on a
        synchronized connection with empty buffers and nothing in
        flight — quiescence is the caller's contract; any straggler
        bytes around the snapshot instant are recovered by the normal
        ST-TCP gap machinery afterwards.
        """
        if not self.is_synchronized:
            raise ConnectionClosed(f"fast_forward in state {self.state}")
        if self.flight_size != 0:
            raise ValueError(f"fast_forward with {self.flight_size} bytes in flight")
        if self.recv_buffer.available or len(self.send_buffer):
            raise ValueError("fast_forward with buffered data")
        self.buffers.fast_forward(rcv_offset, snd_offset)
        self.snd_una = self.iss + 1 + snd_offset
        self.snd_nxt = self.snd_una
        self.snd_max = self.snd_una
        self.rcv_nxt = self.irs + 1 + rcv_offset
        self.trace_event("fast_forward", rcv_offset=rcv_offset, snd_offset=snd_offset)

    def inject_receive_data(self, seq_abs: int, payload: ByteSpan) -> int:
        """Insert recovered client bytes into the receive stream (§4.2,
        §3.2); see :meth:`BufferManager.inject_receive_data`."""
        return self.buffers.inject_receive_data(seq_abs, payload)

    def fetch_received_range(self, start_offset: int, stop_offset: int) -> ByteSpan:
        """Serve receive-stream bytes [start, stop) for backup recovery."""
        return self.buffers.fetch_received_range(start_offset, stop_offset)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        suffix = ""
        if self._extensions:
            suffix = " +" + ",".join(ext.name for ext in self._extensions)
        return (
            f"<TCPConnection {self.local_ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} {self.state.value}{suffix}>"
        )

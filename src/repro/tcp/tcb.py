"""The TCP connection state machine (transmission control block).

This is a full, wire-faithful TCP endpoint: three-way handshake, sliding
window with flow and Reno congestion control, RFC 6298 retransmission
timing with Linux bounds, delayed ACKs, zero-window probing, orderly and
abortive teardown, and TIME_WAIT.

Two hooks exist specifically for ST-TCP (both inert by default):

* **Output suppression / shadow mode** — a backup's connection processes
  every tapped segment and advances all state exactly like the primary,
  but :meth:`_transmit` drops its segments instead of handing them to IP,
  and no timers that would cause transmissions are armed.  During the
  handshake the shadow adopts the *primary's* ISN from the client's
  handshake ACK (§4.1 step 3).  :meth:`takeover` flips the connection
  live during failover.
* **Retention** — the primary's receive buffer keeps application-read
  bytes until the backup acknowledges them over the UDP channel (§4.2);
  see :class:`repro.tcp.recv_buffer.RetentionPolicy`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.errors import (
    ConnectionClosed,
    ConnectionRefused,
    ConnectionReset,
    ConnectionTimeout,
)
from repro.net.addresses import IPAddress
from repro.tcp.config import TCPConfig
from repro.tcp.congestion import DUPACK_THRESHOLD, RenoCongestionControl
from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    PERSIST_TIMEOUT_MAX,
    PERSIST_TIMEOUT_MIN,
    SYNCHRONIZED_STATES,
    TCPState,
)
from repro.tcp.recv_buffer import ReceiveBuffer
from repro.tcp.rtt import RTTEstimator
from repro.tcp.segment import TCPSegment
from repro.tcp.send_buffer import SendBuffer
from repro.tcp.seqspace import unwrap, wrap
from repro.tcp.timers import RestartableTimer
from repro.util.bytespan import EMPTY, ByteSpan


class TCPConnection:
    """One endpoint of one TCP connection."""

    def __init__(
        self,
        layer: Any,
        local_ip: IPAddress,
        local_port: int,
        remote_ip: IPAddress,
        remote_port: int,
        config: TCPConfig,
        shadow_mode: bool = False,
    ) -> None:
        config.validate()
        self.layer = layer
        self.sim = layer.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config
        self.state = TCPState.CLOSED

        # Shadow/suppression (ST-TCP backup).
        self.shadow_mode = shadow_mode
        self.suppress_output = shadow_mode
        self._shadow_pending_ack: Optional[int] = None
        self._applying_shadow_ack = False
        self.isn_rebased = False

        # Sequence state (absolute/unwrapped; see repro.tcp.seqspace).
        self.iss = 0
        self.irs = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0
        self.snd_wnd = 0
        self._snd_wl1 = -1
        self._snd_wl2 = -1
        self.rcv_nxt = 0

        # Buffers.
        self.send_buffer = SendBuffer(config.snd_buffer)
        self.recv_buffer = ReceiveBuffer(config.rcv_buffer)

        # Algorithms.
        self.mss = config.mss  # effective MSS after option exchange
        self.cc = RenoCongestionControl(config.mss)
        self.rtt = RTTEstimator(config.rto_min, config.rto_max, config.rto_initial)

        # Timers.
        self.rto_timer = RestartableTimer(self.sim, self._on_rto, "rto")
        self.delack_timer = RestartableTimer(self.sim, self._on_delack, "delack")
        self.persist_timer = RestartableTimer(self.sim, self._on_persist, "persist")
        self.time_wait_timer = RestartableTimer(self.sim, self._on_time_wait, "time_wait")

        # FIN bookkeeping.
        self._fin_pending = False  # app asked to close; FIN not yet sent
        self._fin_sent = False
        self._fin_seq: Optional[int] = None
        self._fin_acked = False
        self._fin_received = False

        # Retransmission bookkeeping.
        self._retransmit_count = 0
        self._rto_recovery_point: Optional[int] = None
        self._timing: Optional[Tuple[int, float]] = None  # (end_seq, sent_at)
        self._dupacks = 0
        self._fast_recovery_point: Optional[int] = None
        self._persist_interval = PERSIST_TIMEOUT_MIN

        # Delayed-ACK state.
        self._segments_since_ack = 0
        self._ack_scheduled = False

        # RFC 2861 congestion-window validation.
        self._last_data_send_time: Optional[float] = None

        # RFC 5961-style challenge-ACK rate limiting: without it, two
        # endpoints with momentarily inconsistent state can ping-pong
        # pure ACKs forever.
        self._challenge_window_start = 0.0
        self._challenge_count = 0

        # Timestamp option state.
        self.use_timestamps = False
        self._last_ts_recv: Optional[float] = None

        # Window-update bookkeeping.
        self._last_advertised_window = config.rcv_buffer

        # App-facing callbacks (wired by TCPSocket / listener / ST-TCP).
        self.on_established: Optional[Callable[[], None]] = None
        self.on_readable: Optional[Callable[[], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[BaseException], None]] = None
        #: ST-TCP backup hook: called with each processed inbound segment.
        self.on_segment_observed: Optional[Callable[[TCPSegment], None]] = None
        #: ST-TCP hook: called with the new rcv_nxt whenever the in-order
        #: receive stream advances (distinct from on_readable, which the
        #: socket consumes).
        self.on_rcv_advance: Optional[Callable[[int], None]] = None

        # Counters.
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.suppressed_segments = 0
        self.dupacks_received = 0
        self.error: Optional[BaseException] = None

        # Span bookkeeping (None while no episode is open).
        self._handshake_sid: Optional[int] = None
        self._retx_sid: Optional[int] = None
        #: Set by :meth:`takeover`; the next accepted client segment emits
        #: the failover/first_ack marker (the paper's "first
        #: retransmission accepted" instant).
        self._awaiting_first_ack = False

    # ------------------------------------------------------------------ utils
    @property
    def key(self) -> tuple:
        return (self.local_ip.value, self.local_port, self.remote_ip.value, self.remote_port)

    def _snd_offset(self, seq_abs: int) -> int:
        """Send-stream offset of an absolute sequence number."""
        return seq_abs - self.iss - 1

    def _snd_seq(self, offset: int) -> int:
        return self.iss + 1 + offset

    def _rcv_offset(self, seq_abs: int) -> int:
        return seq_abs - self.irs - 1

    @property
    def flight_size(self) -> int:
        """Unacknowledged sequence space outstanding."""
        return self.snd_max - self.snd_una

    @property
    def is_synchronized(self) -> bool:
        return self.state in SYNCHRONIZED_STATES

    @property
    def eof(self) -> bool:
        """True when the peer's FIN has arrived and all data was read."""
        return self._fin_received and self.recv_buffer.available == 0

    @property
    def readable_bytes(self) -> int:
        return self.recv_buffer.available

    def _trace(self, event: str, **fields: Any) -> None:
        if self.sim.trace.enabled_for("tcp"):
            self.sim.trace.emit(
                self.sim.now,
                "tcp",
                event,
                host=self.layer.host.name,
                local=f"{self.local_ip}:{self.local_port}",
                remote=f"{self.remote_ip}:{self.remote_port}",
                state=self.state.value,
                **fields,
            )

    def _begin_span(self, name: str, **fields: Any) -> Optional[int]:
        trace = self.sim.trace
        if not trace.enabled_for("tcp"):
            return None
        return trace.begin_span(
            self.sim.now,
            "tcp",
            name,
            host=self.layer.host.name,
            remote=f"{self.remote_ip}:{self.remote_port}",
            **fields,
        )

    def _end_span(self, name: str, sid: Optional[int], **fields: Any) -> None:
        if sid is not None:
            self.sim.trace.end_span(self.sim.now, "tcp", name, sid, **fields)

    # ------------------------------------------------------------- opening
    def open_active(self) -> None:
        """Client-side connect: send SYN, enter SYN_SENT."""
        if self.state is not TCPState.CLOSED:
            raise ConnectionClosed(f"open_active in state {self.state}")
        self._choose_isn()
        self.state = TCPState.SYN_SENT
        self._handshake_sid = self._begin_span("handshake", kind="active")
        self._send_syn(with_ack=False)
        self._arm_rto()
        self._trace("active_open")

    def open_passive(self, syn: TCPSegment) -> None:
        """Server-side: a listener accepted this SYN; answer SYN/ACK."""
        if self.state is not TCPState.CLOSED:
            raise ConnectionClosed(f"open_passive in state {self.state}")
        self._choose_isn()
        self.irs = syn.seq  # adopt the wire value as the absolute origin
        self.rcv_nxt = self.irs + 1
        if syn.mss_option is not None:
            self.mss = min(self.mss, syn.mss_option)
            self.cc.mss = self.mss
        if syn.ts_val is not None and self.config.timestamps:
            self.use_timestamps = True
            self._last_ts_recv = syn.ts_val
        self.state = TCPState.SYN_RCVD
        self._handshake_sid = self._begin_span("handshake", kind="passive")
        self._send_syn(with_ack=True)
        self._arm_rto()
        self._trace("passive_open")

    def _choose_isn(self) -> None:
        if self.config.isn is not None:
            isn = self.config.isn
        else:
            isn = self.layer.generate_isn()
        self.iss = isn
        self.snd_una = isn
        self.snd_nxt = isn + 1  # SYN consumes one sequence number
        self.snd_max = isn + 1

    def _send_syn(self, with_ack: bool) -> None:
        flags = FLAG_SYN | (FLAG_ACK if with_ack else 0)
        self._emit(flags, self.iss, EMPTY, mss_option=self.config.mss)

    # --------------------------------------------------------- application API
    def app_write(self, data: ByteSpan) -> int:
        """Accept bytes from the application; returns how many fit."""
        if self.state in (TCPState.CLOSED, TCPState.LISTEN):
            raise ConnectionClosed("write on unconnected socket")
        if self._fin_pending or self._fin_sent:
            raise ConnectionClosed("write after close")
        accepted = self.send_buffer.append(data)
        if accepted and self.is_synchronized:
            self.try_output()
        return accepted

    def app_read(self, max_bytes: int) -> ByteSpan:
        """Pop up to ``max_bytes`` of received in-order data."""
        before = self.recv_buffer.window()
        span = self.recv_buffer.read(max_bytes)
        if len(span) and self.is_synchronized:
            self._maybe_send_window_update(before)
        return span

    def app_close(self) -> None:
        """Orderly close: flush pending data then send FIN."""
        if self.state in (TCPState.CLOSED, TCPState.LISTEN):
            self._enter_closed(None)
            return
        if self._fin_pending or self._fin_sent:
            return
        self._fin_pending = True
        if self.state is TCPState.SYN_SENT:
            # Nothing on the wire that matters; just drop the connection.
            self._enter_closed(None)
            return
        if self.state is TCPState.ESTABLISHED or self.state is TCPState.SYN_RCVD:
            self.state = TCPState.FIN_WAIT_1
        elif self.state is TCPState.CLOSE_WAIT:
            self.state = TCPState.LAST_ACK
        self.try_output()

    def app_abort(self) -> None:
        """Abortive close: emit RST and discard state."""
        if self.is_synchronized or self.state is TCPState.SYN_RCVD:
            self._emit(FLAG_RST | FLAG_ACK, self.snd_nxt, EMPTY)
        self._enter_closed(ConnectionReset("connection aborted locally"))

    # ------------------------------------------------------------- output path
    def _advertised_window(self) -> int:
        window = min(self.recv_buffer.window(), 0xFFFF)
        return window

    def try_output(self) -> None:
        """Send whatever the windows currently allow."""
        if self.state not in (
            TCPState.ESTABLISHED,
            TCPState.FIN_WAIT_1,
            TCPState.CLOSE_WAIT,
            TCPState.CLOSING,
            TCPState.LAST_ACK,
        ):
            return
        if (
            self._last_data_send_time is not None
            and self.flight_size == 0
            and self.sim.now - self._last_data_send_time > self.rtt.rto
        ):
            # Idle longer than an RTO: restart from the initial window
            # (RFC 2861, as Linux does).
            self.cc.restart_after_idle()
        usable_window = min(self.snd_wnd, self.cc.window())
        tail = self.send_buffer.tail_offset
        sent_something = False
        while True:
            in_flight = self.snd_nxt - self.snd_una
            window_left = usable_window - in_flight
            next_offset = self._snd_offset(self.snd_nxt)
            available = tail - next_offset
            if available > 0 and window_left > 0:
                chunk = min(self.mss, available, window_left)
                if (
                    self.config.nagle
                    and chunk < self.mss
                    and in_flight > 0
                    and not self._fin_pending
                ):
                    break
                payload = self.send_buffer.data_range(next_offset, next_offset + chunk)
                flags = FLAG_ACK
                fin_now = (
                    self._fin_pending
                    and not self._fin_sent
                    and next_offset + chunk == tail
                    and window_left > chunk
                )
                if fin_now:
                    flags |= FLAG_FIN
                if next_offset + chunk == tail:
                    flags |= FLAG_PSH
                self._emit(flags, self.snd_nxt, payload)
                self.snd_nxt += chunk
                if fin_now:
                    self._note_fin_sent(self.snd_nxt)
                    self.snd_nxt += 1
                self.snd_max = max(self.snd_max, self.snd_nxt)
                if self._timing is None and not self.suppress_output:
                    self._timing = (self.snd_nxt, self.sim.now)
                self._arm_rto_if_idle()
                sent_something = True
                continue
            # No payload sendable: maybe a lone FIN.
            if (
                self._fin_pending
                and not self._fin_sent
                and available == 0
                and window_left > 0
            ):
                self._emit(FLAG_ACK | FLAG_FIN, self.snd_nxt, EMPTY)
                self._note_fin_sent(self.snd_nxt)
                self.snd_nxt += 1
                self.snd_max = max(self.snd_max, self.snd_nxt)
                self._arm_rto_if_idle()
                sent_something = True
            break
        # Zero-window: arm the persist timer when data waits but the peer
        # advertises nothing and nothing is in flight to trigger an ACK.
        if (
            not sent_something
            and self.snd_wnd == 0
            and self.send_buffer.tail_offset > self._snd_offset(self.snd_nxt)
            and self.flight_size == 0
        ):
            self._arm_persist()
        if self.shadow_mode:
            self._apply_pending_shadow_ack()

    def _note_fin_sent(self, seq_abs: int) -> None:
        self._fin_sent = True
        self._fin_seq = seq_abs

    def _emit(
        self,
        flags: int,
        seq_abs: int,
        payload: ByteSpan,
        mss_option: Optional[int] = None,
    ) -> None:
        """Build and transmit one segment (suppressed in shadow mode)."""
        ts_val = ts_ecr = None
        if self.use_timestamps or (flags & FLAG_SYN and self.config.timestamps):
            ts_val = self.sim.now
            ts_ecr = self._last_ts_recv
        segment = TCPSegment(
            self.local_port,
            self.remote_port,
            wrap(seq_abs),
            wrap(self.rcv_nxt) if flags & FLAG_ACK else 0,
            flags,
            self._advertised_window(),
            payload,
            mss_option=mss_option,
            ts_val=ts_val,
            ts_ecr=ts_ecr,
        )
        if flags & FLAG_ACK:
            self._ack_sent_housekeeping()
        if len(payload) > 0 or flags & (FLAG_SYN | FLAG_FIN):
            self._last_data_send_time = self.sim.now
        self._transmit(segment)

    def _ack_sent_housekeeping(self) -> None:
        self._segments_since_ack = 0
        self._ack_scheduled = False
        self.delack_timer.stop()
        self._last_advertised_window = self.recv_buffer.window()

    def _transmit(self, segment: TCPSegment) -> None:
        if self.suppress_output:
            self.suppressed_segments += 1
            self._trace("suppressed", seg=segment)
            return
        self.segments_sent += 1
        self.bytes_sent += segment.payload_length
        self._trace("send", seg=segment)
        self.layer.send_segment(self, segment)

    # ------------------------------------------------------------ ACK emission
    def ack_now(self) -> None:
        """Send an immediate pure ACK."""
        if self.state in (TCPState.CLOSED, TCPState.LISTEN, TCPState.SYN_SENT):
            return
        self._emit(FLAG_ACK, self.snd_nxt, EMPTY)

    #: Challenge-ACK budget: at most this many per window.
    _CHALLENGE_LIMIT = 5
    _CHALLENGE_WINDOW = 0.1

    def _challenge_ack(self) -> None:
        """Rate-limited ACK answering an unacceptable segment (RFC 5961)."""
        now = self.sim.now
        if now - self._challenge_window_start > self._CHALLENGE_WINDOW:
            self._challenge_window_start = now
            self._challenge_count = 0
        if self._challenge_count >= self._CHALLENGE_LIMIT:
            return
        self._challenge_count += 1
        self.ack_now()

    def _schedule_ack(self, advanced_segments: int) -> None:
        """Delayed-ACK policy after receiving in-order data."""
        if not self.config.delayed_ack:
            self.ack_now()
            return
        self._segments_since_ack += advanced_segments
        if self._segments_since_ack >= self.config.delack_segments:
            self.ack_now()
            return
        if not self._ack_scheduled:
            self._ack_scheduled = True
            if not self.suppress_output:
                self.delack_timer.start(self.config.delack_timeout)

    def _on_delack(self) -> None:
        if not self.layer.host.is_up:
            return
        if self._ack_scheduled:
            self.ack_now()

    def _maybe_send_window_update(self, window_before: int) -> None:
        """After an application read, reopen a closed/shrunken window."""
        window_now = self.recv_buffer.window()
        threshold = min(2 * self.mss, self.config.rcv_buffer // 2)
        if (
            self._last_advertised_window < threshold
            and window_now - self._last_advertised_window >= threshold
        ):
            self.ack_now()

    # ---------------------------------------------------------- timer handlers
    def _arm_rto(self) -> None:
        if self.suppress_output:
            return
        self.rto_timer.start(self.rtt.rto)

    def _arm_rto_if_idle(self) -> None:
        if self.suppress_output:
            return
        self.rto_timer.start_if_idle(self.rtt.rto)

    def _on_rto(self) -> None:
        if not self.layer.host.is_up or self.state is TCPState.CLOSED:
            return
        self._retransmit_count += 1
        limit = (
            self.config.max_syn_retransmits
            if self.state in (TCPState.SYN_SENT, TCPState.SYN_RCVD)
            else self.config.max_retransmits
        )
        if self._retransmit_count > limit:
            self._trace("give_up", retransmits=self._retransmit_count)
            error: BaseException
            if self.state is TCPState.SYN_SENT:
                error = ConnectionTimeout("connect timed out")
            else:
                error = ConnectionTimeout("too many retransmissions")
            self._enter_closed(error)
            return
        self.rtt.on_timeout()
        self._timing = None  # Karn: never sample a retransmitted range
        if self.is_synchronized:
            self.cc.on_retransmission_timeout(self.flight_size)
            self._fast_recovery_point = None
            self._dupacks = 0
            if self.snd_una < self.snd_max:
                self._rto_recovery_point = self.snd_max
        if self._retx_sid is None:
            self._retx_sid = self._begin_span(
                "retx_burst", cause="rto", flight=self.flight_size
            )
        self._retransmit_head()
        self._arm_rto()

    def _retransmit_head(self) -> None:
        """Retransmit the oldest unacknowledged segment."""
        self.retransmissions += 1
        if self.state is TCPState.SYN_SENT:
            self._send_syn(with_ack=False)
            return
        if self.state is TCPState.SYN_RCVD:
            self._send_syn(with_ack=True)
            return
        if self._fin_sent and self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._emit(FLAG_ACK | FLAG_FIN, self._fin_seq, EMPTY)
            return
        if self.snd_una >= self.snd_max:
            return
        start = self._snd_offset(self.snd_una)
        end_limit = self._fin_seq if self._fin_seq is not None else self.snd_max
        chunk = min(self.mss, self._snd_offset(end_limit) - start)
        if chunk <= 0:
            return
        payload = self.send_buffer.data_range(start, start + chunk)
        flags = FLAG_ACK
        if (
            self._fin_sent
            and self._fin_seq is not None
            and self.snd_una + chunk == self._fin_seq
        ):
            flags |= FLAG_FIN
            self._emit(flags, self.snd_una, payload)
            return
        self._emit(flags, self.snd_una, payload)

    def _arm_persist(self) -> None:
        if self.suppress_output or self.persist_timer.running:
            return
        self.persist_timer.start(self._persist_interval)

    def _on_persist(self) -> None:
        if not self.layer.host.is_up or not self.is_synchronized:
            return
        if self.snd_wnd > 0:
            self._persist_interval = PERSIST_TIMEOUT_MIN
            self.try_output()
            return
        # Send a one-byte window probe if data is waiting.  The probe is
        # a real data byte and consumes sequence space: if the receiver's
        # window opened meanwhile it will ACK the byte, and that ACK must
        # be coherent with our send state.
        next_offset = self._snd_offset(self.snd_nxt)
        if self.send_buffer.tail_offset > next_offset and self.snd_nxt == self.snd_max:
            payload = self.send_buffer.data_range(next_offset, next_offset + 1)
            self._emit(FLAG_ACK, self.snd_nxt, payload)
            self.snd_nxt += 1
            self.snd_max = self.snd_nxt
        self._persist_interval = min(self._persist_interval * 2, PERSIST_TIMEOUT_MAX)
        self.persist_timer.start(self._persist_interval)

    def _on_time_wait(self) -> None:
        if self.state is TCPState.TIME_WAIT:
            self._enter_closed(None)

    # ------------------------------------------------------------ input path
    def on_segment(self, segment: TCPSegment) -> None:
        """Process one inbound (or tapped/injected) segment."""
        self.segments_received += 1
        self._trace("recv", seg=segment)
        if self._awaiting_first_ack:
            # Post-takeover, suppression is lifted, so this segment came
            # from the client itself: its retransmission reached us.
            self._note_failover_progress(segment.payload_length)
        if self.on_segment_observed is not None:
            self.on_segment_observed(segment)
        if segment.ts_val is not None and self.use_timestamps:
            self._last_ts_recv = segment.ts_val
        if self.state is TCPState.SYN_SENT:
            self._segment_in_syn_sent(segment)
        elif self.state is TCPState.CLOSED:
            pass  # late segment after close; the layer answers with RST
        elif (
            self.shadow_mode
            and not self.isn_rebased
            and self.state is TCPState.SYN_RCVD
            and segment.is_ack
            and unwrap(segment.seq, self.rcv_nxt) != self.irs + 1
        ):
            # A late client segment reached an un-synchronised shadow (the
            # tap lost the early exchange).  Its *cumulative* ACK does not
            # reveal the primary's ISN — rebasing from it would skew the
            # whole sequence mapping — so absorb the payload only and keep
            # waiting for a safe ISN source (a seq==IRS+1 segment, or the
            # tapped primary SYN/ACK via the backup engine).
            if segment.payload_length:
                self.inject_receive_data(unwrap(segment.seq, self.rcv_nxt), segment.payload)
        else:
            self._segment_in_general(segment)

    # -- SYN_SENT -------------------------------------------------------------
    def _segment_in_syn_sent(self, segment: TCPSegment) -> None:
        ack_abs = unwrap(segment.ack, self.snd_nxt) if segment.is_ack else None
        ack_acceptable = ack_abs is not None and self.snd_una < ack_abs <= self.snd_nxt
        if segment.is_ack and not ack_acceptable:
            if not segment.is_rst:
                self._send_rst_for(segment)
            return
        if segment.is_rst:
            if ack_acceptable:
                self._enter_closed(ConnectionRefused("connection refused"))
            return
        if not segment.is_syn:
            return
        self.irs = segment.seq
        self.rcv_nxt = self.irs + 1
        if segment.mss_option is not None:
            self.mss = min(self.mss, segment.mss_option)
            self.cc.mss = self.mss
        if segment.ts_val is not None and self.config.timestamps:
            self.use_timestamps = True
            self._last_ts_recv = segment.ts_val
        if ack_acceptable:
            self.snd_una = ack_abs  # our SYN is acked
            self._retransmit_count = 0
            self.rto_timer.stop()
            self._update_send_window(segment, self.irs, ack_abs)
            self.state = TCPState.ESTABLISHED
            self._trace("established")
            self._end_span("handshake", self._handshake_sid)
            self._handshake_sid = None
            self.ack_now()
            if self.on_established is not None:
                self.on_established()
            self.try_output()
        else:
            # Simultaneous open.
            self.state = TCPState.SYN_RCVD
            self._send_syn(with_ack=True)
            self._arm_rto()

    # -- everything else --------------------------------------------------------
    def _segment_in_general(self, segment: TCPSegment) -> None:
        seq_abs = unwrap(segment.seq, self.rcv_nxt)
        seg_len = segment.sequence_space_length
        if not self._sequence_acceptable(seq_abs, seg_len):
            if not segment.is_rst:
                # Duplicate or out-of-window: re-ACK our current state
                # (rate-limited so two confused peers cannot loop).
                self._challenge_ack()
            return
        if segment.is_rst:
            self._enter_closed(ConnectionReset("connection reset by peer"))
            return
        if segment.is_syn and self.state is TCPState.SYN_RCVD and seq_abs == self.irs:
            # Retransmitted SYN: re-send our SYN/ACK.
            self._send_syn(with_ack=True)
            return
        if segment.is_syn and seq_abs >= self.rcv_nxt:
            # SYN inside the window is a protocol violation.
            self._emit(FLAG_RST | FLAG_ACK, self.snd_nxt, EMPTY)
            self._enter_closed(ConnectionReset("SYN received mid-connection"))
            return
        if not segment.is_ack:
            return
        if not self._process_ack(segment, seq_abs):
            return
        if segment.payload_length > 0:
            self._process_payload(segment, seq_abs)
        if segment.is_fin:
            self._process_fin(segment, seq_abs)

    def _sequence_acceptable(self, seq_abs: int, seg_len: int) -> bool:
        window = self.recv_buffer.window()
        if seg_len == 0:
            if window == 0:
                return seq_abs == self.rcv_nxt
            return self.rcv_nxt <= seq_abs < self.rcv_nxt + window
        if window == 0:
            return False
        return seq_abs < self.rcv_nxt + window and seq_abs + seg_len > self.rcv_nxt

    # -- ACK processing -----------------------------------------------------------
    def _process_ack(self, segment: TCPSegment, seq_abs: int) -> bool:
        """Returns False when processing must stop (segment dropped)."""
        ack_abs = unwrap(segment.ack, self.snd_una)
        if self.state is TCPState.SYN_RCVD:
            if self.shadow_mode and not self.isn_rebased:
                self._rebase_isn(ack_abs)
                ack_abs = unwrap(segment.ack, self.snd_una)
            if self.shadow_mode and ack_abs > self.snd_max:
                # ISN came from the tapped SYN/ACK; this client ACK already
                # covers data the (suppressed) application has yet to
                # produce — stash it, establish, apply as data appears.
                self._shadow_pending_ack = max(self._shadow_pending_ack or 0, ack_abs)
                ack_abs = self.snd_max
            if self.snd_una <= ack_abs <= self.snd_max:
                self._retransmit_count = 0
                self.rto_timer.stop()
                self.state = (
                    TCPState.FIN_WAIT_1 if self._fin_pending else TCPState.ESTABLISHED
                )
                self._update_send_window(segment, seq_abs, ack_abs, force=True)
                self._trace("established")
                self._end_span("handshake", self._handshake_sid)
                self._handshake_sid = None
                if ack_abs > self.snd_una:
                    self.snd_una = ack_abs
                if self.on_established is not None:
                    self.on_established()
            else:
                self._send_rst_for(segment)
                return False
        if ack_abs > self.snd_max:
            if self.shadow_mode:
                # The client acknowledged bytes the primary sent but our
                # (slower) shadow application has not produced yet.
                # Remember and apply once the data materialises (§4.2,
                # determinism assumption).
                self._shadow_pending_ack = max(
                    self._shadow_pending_ack or 0, ack_abs
                )
                ack_abs = self.snd_max
            else:
                self._challenge_ack()
                return False
        # Window update comes first (RFC 793 ACK processing order): the
        # try_output triggered by a new ACK must see the window this very
        # segment advertises, or a sender can overshoot into a window the
        # peer just closed.
        self._update_send_window(segment, seq_abs, ack_abs)
        if ack_abs > self.snd_una:
            self._handle_new_ack(ack_abs)
        elif (
            ack_abs == self.snd_una
            and segment.payload_length == 0
            and not segment.is_syn
            and not segment.is_fin
            and self.flight_size > 0
        ):
            self._handle_duplicate_ack()
        # State transitions driven by our FIN being acknowledged.
        if self._fin_sent and self._fin_seq is not None and self.snd_una > self._fin_seq:
            self._fin_acked = True
            if self.state is TCPState.FIN_WAIT_1:
                self.state = TCPState.FIN_WAIT_2
            elif self.state is TCPState.CLOSING:
                self._enter_time_wait()
            elif self.state is TCPState.LAST_ACK:
                self._enter_closed(None)
                return False
        return True

    def _handle_new_ack(self, ack_abs: int) -> None:
        bytes_acked = ack_abs - self.snd_una
        previous_una = self.snd_una
        self.snd_una = ack_abs
        self._dupacks = 0
        self._retransmit_count = 0
        self.rtt.reset_backoff()
        # Release acknowledged payload bytes (exclude SYN/FIN seq space).
        data_ack_offset = self._snd_offset(ack_abs)
        if self._fin_seq is not None and ack_abs > self._fin_seq:
            data_ack_offset = self._snd_offset(self._fin_seq)
        if data_ack_offset > self.send_buffer.una_offset:
            self.send_buffer.ack_to(data_ack_offset)
            if self.on_writable is not None:
                self.on_writable()
        # RTT sample (Karn-protected: _timing is cleared on retransmission).
        if self._timing is not None and ack_abs >= self._timing[0]:
            sample = self.sim.now - self._timing[1]
            self.rtt.on_measurement(sample)
            self.layer.rtt_samples.observe(sample)
            self._timing = None
        # Congestion control.
        if self.cc.in_fast_recovery:
            if (
                self._fast_recovery_point is not None
                and ack_abs >= self._fast_recovery_point
            ):
                self.cc.exit_fast_recovery()
                self._fast_recovery_point = None
            else:
                # NewReno partial ACK: retransmit the next hole at once.
                self.cc.on_partial_ack(bytes_acked)
                self._retransmit_head()
        else:
            self.cc.on_ack_new(bytes_acked)
        # Go-back-N continuation after an RTO (Linux-style slow-start
        # retransmission driven by returning ACKs).
        if self._rto_recovery_point is not None:
            if ack_abs >= self._rto_recovery_point:
                self._rto_recovery_point = None
            elif ack_abs > previous_una and ack_abs < self.snd_max:
                self._retransmit_head()
        # Retransmission timer: restart while data remains outstanding.
        if self.snd_una < self.snd_max:
            self._arm_rto()
        else:
            self.rto_timer.stop()
            self._rto_recovery_point = None
        if (
            self._retx_sid is not None
            and self._rto_recovery_point is None
            and not self.cc.in_fast_recovery
        ):
            self._end_span("retx_burst", self._retx_sid, retransmissions=self.retransmissions)
            self._retx_sid = None
        self.try_output()

    def _note_failover_progress(self, amount: int) -> None:
        """First client segment accepted after takeover — the instant the
        paper calls "first retransmission accepted" (end of RTO wait)."""
        self._awaiting_first_ack = False
        trace = self.sim.trace
        if trace.enabled_for("failover"):
            trace.emit(
                self.sim.now,
                "failover",
                "first_ack",
                host=self.layer.host.name,
                remote=f"{self.remote_ip}:{self.remote_port}",
                amount=amount,
            )

    def _handle_duplicate_ack(self) -> None:
        self.dupacks_received += 1
        self._dupacks += 1
        if self.cc.in_fast_recovery:
            self.cc.on_dupack_in_recovery()
            self.try_output()
            return
        if self._dupacks == DUPACK_THRESHOLD:
            self._fast_recovery_point = self.snd_max
            self.cc.enter_fast_recovery(self.flight_size)
            self._timing = None
            if self._retx_sid is None:
                self._retx_sid = self._begin_span(
                    "retx_burst", cause="dupacks", flight=self.flight_size
                )
            self._retransmit_head()
            self._arm_rto()

    def _update_send_window(
        self, segment: TCPSegment, seq_abs: int, ack_abs: int, force: bool = False
    ) -> None:
        if (
            force
            or seq_abs > self._snd_wl1
            or (seq_abs == self._snd_wl1 and ack_abs >= self._snd_wl2)
        ):
            old_window = self.snd_wnd
            self.snd_wnd = segment.window
            self._snd_wl1 = seq_abs
            self._snd_wl2 = ack_abs
            if self.snd_wnd > 0:
                self.persist_timer.stop()
                self._persist_interval = PERSIST_TIMEOUT_MIN
                if old_window == 0:
                    self.try_output()

    def rebase_from_primary_isn(self, isn_abs: int) -> None:
        """Shadow ISN sync from the *tapped primary SYN/ACK* (whose seq
        field is the ISN itself) — the source that works even when the
        tap lost every early client segment."""
        if not self.shadow_mode or self.isn_rebased:
            return
        if self.state is not TCPState.SYN_RCVD:
            return
        old_iss = self.iss
        self.iss = isn_abs
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self.isn_rebased = True
        self._trace("isn_rebase_from_synack", old=wrap(old_iss), new=wrap(self.iss))

    def _rebase_isn(self, ack_abs: int) -> None:
        """Shadow handshake (§4.1 step 3): adopt the primary's ISN.

        The client's handshake ACK acknowledges ``primary_ISS + 1``; our
        own (suppressed) SYN/ACK used a different ISN, so rewrite all send
        sequence state before standard processing sees the ACK.
        """
        old_iss = self.iss
        self.iss = ack_abs - 1
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self.isn_rebased = True
        self._trace("isn_rebase", old=wrap(old_iss), new=wrap(self.iss))

    def _apply_pending_shadow_ack(self) -> None:
        """Apply a client ACK that ran ahead of the shadow application.

        Handling the ack wakes the (shadow) application, which writes and
        virtually sends more data, which may allow more of the pending
        ack to apply — iterated here with a re-entrancy guard, because
        the wake path leads straight back into ``try_output``.
        """
        if self._applying_shadow_ack:
            return
        self._applying_shadow_ack = True
        try:
            while self._shadow_pending_ack is not None:
                pending = self._shadow_pending_ack
                target = min(pending, self.snd_max)
                if pending <= self.snd_max:
                    self._shadow_pending_ack = None
                if target > self.snd_una:
                    self._handle_new_ack(target)
                elif self._shadow_pending_ack is not None:
                    break  # no progress possible until more data is produced
        finally:
            self._applying_shadow_ack = False

    # -- payload ---------------------------------------------------------------
    def _process_payload(self, segment: TCPSegment, seq_abs: int) -> None:
        offset = self._rcv_offset(seq_abs)
        before = self.rcv_nxt
        advanced = self.recv_buffer.insert(offset, segment.payload)
        self.bytes_received += segment.payload_length
        if advanced > 0:
            self.rcv_nxt += advanced
            full_segments = max(1, advanced // self.mss)
            self._schedule_ack(full_segments)
            if self.on_rcv_advance is not None:
                self.on_rcv_advance(self.rcv_nxt)
            if self.on_readable is not None:
                self.on_readable()
        else:
            # Out-of-order or duplicate: immediate ACK to feed the sender's
            # fast-retransmit machinery.
            self.ack_now()
            return
        if self.recv_buffer.out_of_order_bytes > 0 and self.rcv_nxt > before:
            # Filled part of a hole but more reordering remains: ACK now.
            self.ack_now()

    # -- FIN ---------------------------------------------------------------------
    def _process_fin(self, segment: TCPSegment, seq_abs: int) -> None:
        fin_seq = seq_abs + segment.payload_length
        if fin_seq != self.rcv_nxt:
            return  # FIN beyond a hole; wait for retransmission
        if self._fin_received:
            self.ack_now()
            return
        self._fin_received = True
        self.rcv_nxt += 1
        self.ack_now()
        if self.on_readable is not None:
            self.on_readable()  # wake readers so they observe EOF
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
        elif self.state is TCPState.FIN_WAIT_1:
            if self._fin_acked:
                self._enter_time_wait()
            else:
                self.state = TCPState.CLOSING
        elif self.state is TCPState.FIN_WAIT_2:
            self._enter_time_wait()
        elif self.state is TCPState.TIME_WAIT:
            self.time_wait_timer.start(self.config.time_wait)

    # ------------------------------------------------------------ state exits
    def _enter_time_wait(self) -> None:
        self.state = TCPState.TIME_WAIT
        self.rto_timer.stop()
        self.persist_timer.stop()
        self.time_wait_timer.start(self.config.time_wait)
        self._trace("time_wait")

    def _enter_closed(self, error: Optional[BaseException]) -> None:
        previous = self.state
        self.state = TCPState.CLOSED
        self.error = error
        for timer in (
            self.rto_timer,
            self.delack_timer,
            self.persist_timer,
            self.time_wait_timer,
        ):
            timer.stop()
        self.layer.connection_closed(self)
        # Crash mid-span: close any open episode so the trace stays paired.
        self._end_span("handshake", self._handshake_sid, outcome="closed")
        self._handshake_sid = None
        self._end_span("retx_burst", self._retx_sid, outcome="closed")
        self._retx_sid = None
        self._trace("closed", previous=previous.value, error=repr(error))
        if error is not None and self.on_error is not None:
            self.on_error(error)
        if self.on_closed is not None:
            self.on_closed()

    def _send_rst_for(self, segment: TCPSegment) -> None:
        if segment.is_ack:
            rst = TCPSegment(
                self.local_port, self.remote_port, segment.ack, 0, FLAG_RST, 0
            )
        else:
            rst = TCPSegment(
                self.local_port,
                self.remote_port,
                0,
                wrap(unwrap(segment.seq, self.rcv_nxt) + segment.sequence_space_length),
                FLAG_RST | FLAG_ACK,
                0,
            )
        self._transmit(rst)

    # ------------------------------------------------------------ ST-TCP hooks
    def takeover(self) -> None:
        """Failover: make this shadow connection live (§5).

        Output suppression is lifted; if unacknowledged data is
        outstanding it is retransmitted immediately, otherwise a pure ACK
        announces the (indistinguishable) server's liveness.
        """
        if not self.suppress_output:
            return
        self.suppress_output = False
        self._awaiting_first_ack = True
        self._trace("takeover", flight=self.flight_size)
        if self.state is TCPState.CLOSED:
            return
        if self.flight_size > 0:
            # The primary may have died mid-burst: bytes this shadow
            # "sent" virtually but the primary never put on the wire are
            # holes the client cannot dup-ack us toward.  Retransmit the
            # head now and go-back-N through the rest as ACKs return.
            self._rto_recovery_point = self.snd_max
            self._retransmit_head()
            self._arm_rto()
        elif self.is_synchronized:
            self.ack_now()
        self.try_output()

    def inject_receive_data(self, seq_abs: int, payload: ByteSpan) -> int:
        """ST-TCP recovery: insert client bytes recovered over the UDP
        channel or from the packet logger (§4.2, §3.2).

        Touches *only* the receive stream — crucially not the ACK
        machinery, because a synthetic ACK arriving while a shadow is
        still in SYN_RCVD would trigger the ISN rebase against the
        shadow's own (wrong) ISN and skew the whole sequence mapping.
        Returns how far ``rcv_nxt`` advanced.
        """
        if not (self.is_synchronized or self.state is TCPState.SYN_RCVD):
            return 0
        offset = self._rcv_offset(seq_abs)
        advanced = self.recv_buffer.insert(offset, payload)
        self.bytes_received += len(payload)
        if advanced > 0:
            self.rcv_nxt += advanced
            if self.on_rcv_advance is not None:
                self.on_rcv_advance(self.rcv_nxt)
            if self.on_readable is not None:
                self.on_readable()
        return advanced

    def fetch_received_range(self, start_offset: int, stop_offset: int) -> ByteSpan:
        """Serve receive-stream bytes [start, stop) for backup recovery.

        Bytes may live in the retention (second) buffer, the unread part
        of the receive buffer, or both.
        """
        pieces = []
        retention = self.recv_buffer.retention
        if retention is not None:
            fetch = getattr(retention, "fetch", None)
            if fetch is not None:
                pieces.append(fetch(start_offset, stop_offset))
        pieces.append(self.recv_buffer.peek_unread(start_offset, stop_offset))
        from repro.util.bytespan import concat

        return concat([p for p in pieces if len(p)])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TCPConnection {self.local_ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} {self.state.value}"
            f"{' shadow' if self.shadow_mode else ''}>"
        )

"""RTT estimation and retransmission-timeout management (RFC 6298).

The RTO behaviour is central to the reproduction: after the primary
crashes, the client's RTO backoff determines how quickly its
retransmissions reach the freshly promoted backup, which is the second
component of the paper's failover time (§6.2).  Bounds and the ×2 backoff
factor follow Linux (200 ms … 2 min).
"""

from __future__ import annotations

from repro.tcp.constants import (
    RTO_BACKOFF_FACTOR,
    RTO_INITIAL,
    RTO_MAX,
    RTO_MIN,
)

#: RFC 6298 gains.
ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0
K = 4.0

#: Clock granularity lower bound for the variance term.
GRANULARITY = 0.001


class RTTEstimator:
    """Tracks SRTT/RTTVAR and derives the current RTO."""

    def __init__(
        self,
        rto_min: float = RTO_MIN,
        rto_max: float = RTO_MAX,
        initial_rto: float = RTO_INITIAL,
    ) -> None:
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self.has_sample = False
        self._base_rto = initial_rto
        self.backoff_count = 0
        self.samples_taken = 0

    @property
    def rto(self) -> float:
        """The timeout to arm now, including any backoff in effect.

        Backoff doubles the *clamped* value, as Linux does: on a LAN the
        progression is exactly 200 ms, 400 ms, 800 ms, … (§6.2).
        """
        base = min(max(self._base_rto, self.rto_min), self.rto_max)
        return min(base * (RTO_BACKOFF_FACTOR ** self.backoff_count), self.rto_max)

    def on_measurement(self, rtt: float) -> None:
        """Fold a new RTT sample (never from a retransmitted segment —
        Karn's algorithm is enforced by the caller)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt}")
        self.samples_taken += 1
        if not self.has_sample:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            self.has_sample = True
        else:
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * rtt
        self._base_rto = self.srtt + max(GRANULARITY, K * self.rttvar)
        # A fresh measurement ends any backoff in progress.
        self.backoff_count = 0

    def on_timeout(self) -> None:
        """Double the effective RTO (exponential backoff)."""
        self.backoff_count += 1

    def reset_backoff(self) -> None:
        self.backoff_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RTT srtt={self.srtt * 1e3:.2f}ms rttvar={self.rttvar * 1e3:.2f}ms "
            f"rto={self.rto * 1e3:.1f}ms backoff={self.backoff_count}>"
        )

"""Output engine: segmentization, send-policy decisions, emission.

Owns the decision of *what goes on the wire and when* — the sender-side
sliding window walk (flow × congestion window), Nagle, FIN piggybacking,
the delayed-ACK policy and its timer, window-update ACKs after
application reads, and the final build-and-transmit step every segment
funnels through (:meth:`emit` → :meth:`transmit`), where registered
extensions get their ``filter_transmit`` veto.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.tcp.config import TCPConfig
from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TCPState,
)
from repro.sim.datapath import batch_enabled
from repro.tcp.segment import SegmentTemplate, TCPSegment
from repro.tcp.seqspace import unwrap, wrap
from repro.tcp.timers import RestartableTimer
from repro.util.bytespan import EMPTY, ByteSpan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.tcb import TCPConnection

#: States in which :meth:`OutputEngine.try_output` may send payload.
_OUTPUT_STATES = (
    TCPState.ESTABLISHED,
    TCPState.FIN_WAIT_1,
    TCPState.CLOSE_WAIT,
    TCPState.CLOSING,
    TCPState.LAST_ACK,
)


class OutputEngine:
    """Everything that decides to put a segment on the wire."""

    __slots__ = (
        "conn",
        "delack_timer",
        "segments_since_ack",
        "ack_scheduled",
        "last_advertised_window",
        "last_data_send_time",
        "_template",
        "_use_template",
    )

    def __init__(self, conn: "TCPConnection", config: TCPConfig) -> None:
        self.conn = conn
        self.delack_timer = RestartableTimer(conn.sim, self._on_delack, "delack")
        # Delayed-ACK state.
        self.segments_since_ack = 0
        self.ack_scheduled = False
        # Window-update bookkeeping.
        self.last_advertised_window = config.rcv_buffer
        # RFC 2861 congestion-window validation.
        self.last_data_send_time: Optional[float] = None
        # Batch datapath: the per-connection invariant header fields are
        # precomputed once (lazily, at first emit — the remote port is
        # final by then) and only seq/ack/win/flags vary per segment.
        # The object arm keeps the checked constructor as the reference.
        self._use_template = batch_enabled()
        self._template: Optional[SegmentTemplate] = None

    # -- window advertisement ------------------------------------------------
    def advertised_window(self) -> int:
        return min(self.conn.recv_buffer.window(), 0xFFFF)

    # -- the sender-side window walk -----------------------------------------
    def try_output(self) -> None:
        """Send whatever the windows currently allow."""
        conn = self.conn
        if conn.state not in _OUTPUT_STATES:
            return
        if (
            self.last_data_send_time is not None
            and conn.flight_size == 0
            and conn.sim.now - self.last_data_send_time > conn.retransmit.rtt.rto
        ):
            # Idle longer than an RTO: restart from the initial window
            # (RFC 2861, as Linux does).
            conn.cc.restart_after_idle()
        usable_window = min(conn.snd_wnd, conn.cc.window())
        tail = conn.send_buffer.tail_offset
        sent_something = False
        while True:
            in_flight = conn.snd_nxt - conn.snd_una
            window_left = usable_window - in_flight
            next_offset = conn.buffers.snd_offset(conn.snd_nxt)
            available = tail - next_offset
            if available > 0 and window_left > 0:
                chunk = min(conn.mss, available, window_left)
                if (
                    conn.config.nagle
                    and chunk < conn.mss
                    and in_flight > 0
                    and not conn._fin_pending
                ):
                    break
                payload = conn.send_buffer.data_range(next_offset, next_offset + chunk)
                flags = FLAG_ACK
                fin_now = (
                    conn._fin_pending
                    and not conn._fin_sent
                    and next_offset + chunk == tail
                    and window_left > chunk
                )
                if fin_now:
                    flags |= FLAG_FIN
                if next_offset + chunk == tail:
                    flags |= FLAG_PSH
                self.emit(flags, conn.snd_nxt, payload)
                conn.snd_nxt += chunk
                if fin_now:
                    self._note_fin_sent(conn.snd_nxt)
                    conn.snd_nxt += 1
                conn.snd_max = max(conn.snd_max, conn.snd_nxt)
                if conn.retransmit.timing is None and not conn.output_inhibited:
                    conn.retransmit.timing = (conn.snd_nxt, conn.sim.now)
                conn.retransmit.arm_rto_if_idle()
                sent_something = True
                continue
            # No payload sendable: maybe a lone FIN.
            if (
                conn._fin_pending
                and not conn._fin_sent
                and available == 0
                and window_left > 0
            ):
                self.emit(FLAG_ACK | FLAG_FIN, conn.snd_nxt, EMPTY)
                self._note_fin_sent(conn.snd_nxt)
                conn.snd_nxt += 1
                conn.snd_max = max(conn.snd_max, conn.snd_nxt)
                conn.retransmit.arm_rto_if_idle()
                sent_something = True
            break
        # Zero-window: arm the persist timer when data waits but the peer
        # advertises nothing and nothing is in flight to trigger an ACK.
        if (
            not sent_something
            and conn.snd_wnd == 0
            and conn.send_buffer.tail_offset > conn.buffers.snd_offset(conn.snd_nxt)
            and conn.flight_size == 0
        ):
            conn.retransmit.arm_persist()
        hooks = conn._ext_after_output
        if hooks:
            for ext in hooks:
                ext.after_output(conn)

    def _note_fin_sent(self, seq_abs: int) -> None:
        conn = self.conn
        conn._fin_sent = True
        conn._fin_seq = seq_abs

    # -- segment build + handoff ---------------------------------------------
    def send_syn(self, with_ack: bool) -> None:
        conn = self.conn
        flags = FLAG_SYN | (FLAG_ACK if with_ack else 0)
        self.emit(flags, conn.iss, EMPTY, mss_option=conn.config.mss)

    def emit(
        self,
        flags: int,
        seq_abs: int,
        payload: ByteSpan,
        mss_option: Optional[int] = None,
    ) -> None:
        """Build and transmit one segment."""
        conn = self.conn
        ts_val = ts_ecr = None
        if conn.use_timestamps or (flags & FLAG_SYN and conn.config.timestamps):
            ts_val = conn.sim.now
            ts_ecr = conn.last_ts_recv
        if self._use_template:
            template = self._template
            if template is None:
                template = SegmentTemplate(conn.local_port, conn.remote_port)
                self._template = template
            segment = template.build(
                wrap(seq_abs),
                wrap(conn.rcv_nxt) if flags & FLAG_ACK else 0,
                flags,
                self.advertised_window(),
                payload,
                mss_option=mss_option,
                ts_val=ts_val,
                ts_ecr=ts_ecr,
            )
        else:
            segment = TCPSegment(
                conn.local_port,
                conn.remote_port,
                wrap(seq_abs),
                wrap(conn.rcv_nxt) if flags & FLAG_ACK else 0,
                flags,
                self.advertised_window(),
                payload,
                mss_option=mss_option,
                ts_val=ts_val,
                ts_ecr=ts_ecr,
            )
        if flags & FLAG_ACK:
            self._ack_sent_housekeeping()
        if len(payload) > 0 or flags & (FLAG_SYN | FLAG_FIN):
            self.last_data_send_time = conn.sim.now
        self.transmit(segment)

    def _ack_sent_housekeeping(self) -> None:
        self.segments_since_ack = 0
        self.ack_scheduled = False
        self.delack_timer.stop()
        self.last_advertised_window = self.conn.recv_buffer.window()

    def transmit(self, segment: TCPSegment) -> None:
        """Hand a built segment to IP — unless an extension vetoes it."""
        conn = self.conn
        vetoers = conn._ext_filter_transmit
        if vetoers:
            for ext in vetoers:
                if not ext.filter_transmit(conn, segment):
                    return
        conn.segments_sent += 1
        conn.bytes_sent += segment.payload_length
        conn.trace_event("send", seg=segment)
        conn.layer.send_segment(conn, segment)

    def send_rst_for(self, segment: TCPSegment) -> None:
        conn = self.conn
        if segment.is_ack:
            rst = TCPSegment(
                conn.local_port, conn.remote_port, segment.ack, 0, FLAG_RST, 0
            )
        else:
            rst = TCPSegment(
                conn.local_port,
                conn.remote_port,
                0,
                wrap(unwrap(segment.seq, conn.rcv_nxt) + segment.sequence_space_length),
                FLAG_RST | FLAG_ACK,
                0,
            )
        self.transmit(rst)

    # -- ACK emission --------------------------------------------------------
    def ack_now(self) -> None:
        """Send an immediate pure ACK."""
        conn = self.conn
        if conn.state in (TCPState.CLOSED, TCPState.LISTEN, TCPState.SYN_SENT):
            return
        self.emit(FLAG_ACK, conn.snd_nxt, EMPTY)

    def schedule_ack(self, advanced_segments: int) -> None:
        """Delayed-ACK policy after receiving in-order data."""
        conn = self.conn
        if not conn.config.delayed_ack:
            self.ack_now()
            return
        self.segments_since_ack += advanced_segments
        if self.segments_since_ack >= conn.config.delack_segments:
            self.ack_now()
            return
        if not self.ack_scheduled:
            self.ack_scheduled = True
            if not conn.output_inhibited:
                self.delack_timer.start(conn.config.delack_timeout)

    def _on_delack(self) -> None:
        if not self.conn.layer.host.is_up:
            return
        if self.ack_scheduled:
            self.ack_now()

    def maybe_send_window_update(self, window_before: int) -> None:
        """After an application read, reopen a closed/shrunken window."""
        conn = self.conn
        window_now = conn.recv_buffer.window()
        threshold = min(2 * conn.mss, conn.config.rcv_buffer // 2)
        if (
            self.last_advertised_window < threshold
            and window_now - self.last_advertised_window >= threshold
        ):
            self.ack_now()

"""The per-host TCP layer: demultiplexing, listeners, ISN generation.

Protocol variants integrate through :attr:`TCPLayer.connection_observers`:
each observer runs for every passively opened connection *before* the
SYN is processed, so it can attach :class:`repro.tcp.extension.TCPExtension`
objects (the ST-TCP engines do exactly this) without touching listener or
application code.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConnectionClosed, EphemeralPortsExhausted, PortInUseError
from repro.ip.datagram import PROTO_TCP, IPDatagram
from repro.net.addresses import IPAddress
from repro.net.nic import NIC
from repro.tcp.config import TCPConfig
from repro.tcp.constants import FLAG_SYN, SEQ_MASK
from repro.tcp.listener import TCPListener
from repro.tcp.segment import TCPSegment, make_rst
from repro.tcp.socket import TCPSocket
from repro.tcp.tcb import TCPConnection

EPHEMERAL_PORT_START = 32768
EPHEMERAL_PORT_END = 60999

ConnectionKey = Tuple[int, int, int, int]
ConnectionCallback = Callable[[TCPConnection], None]


class TCPLayer:
    """Owns all TCP state of one host."""

    def __init__(self, sim: Any, host: Any, config: Optional[TCPConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.config = config or TCPConfig()
        self._connections: Dict[ConnectionKey, TCPConnection] = {}
        self._listeners: Dict[Tuple[Optional[int], int], TCPListener] = {}
        # Ephemeral-port pool.  Virgin ports are handed out sequentially
        # from the cursor; ports whose last connection was reaped return
        # through the free list and are reused once the cursor wraps.
        # The range is a layer attribute (not a module constant read) so
        # exhaustion tests can shrink it.
        self.ephemeral_start = EPHEMERAL_PORT_START
        self.ephemeral_end = EPHEMERAL_PORT_END
        self._next_ephemeral = self.ephemeral_start
        self._free_ports: Deque[int] = deque()
        #: Live-connection count per local port (ephemeral accounting).
        self._port_refs: Dict[int, int] = {}
        #: Observers invoked for every passive open, before the SYN is
        #: processed (the ST-TCP engines use this to attach retention or
        #: replication extensions to new connections).
        self.connection_observers: List[ConnectionCallback] = []
        #: Observers invoked after a connection leaves the table (reached
        #: CLOSED or expired TIME_WAIT).  The ST-TCP engines use this to
        #: drop their per-connection state, so closed connections return
        #: *all* their memory, not just the TCB table slot.
        self.close_observers: List[ConnectionCallback] = []
        #: Answer unmatched segments with RST (real-stack behaviour).
        self.reset_on_unmatched = True
        # Registry-backed counters (scoped <host>.tcp.*); the read-only
        # properties below preserve the historical attribute API.
        metrics = sim.metrics.scope(f"{host.name}.tcp")
        self._c_segments_demuxed = metrics.counter("segments_demuxed")
        self._c_segments_unmatched = metrics.counter("segments_unmatched")
        self._c_syns_deflected = metrics.counter("syns_deflected")
        self._c_resets_sent = metrics.counter("resets_sent")
        self._c_tcbs_reaped = metrics.counter("tcbs_reaped")
        self._c_ports_exhausted = metrics.counter("ephemeral_ports_exhausted")
        #: Current / high-water connection-table size.
        self._g_connections = metrics.gauge("connections")
        self._g_connections_peak = metrics.gauge("connections_peak")
        self._g_ports_in_use = metrics.gauge("ephemeral_ports_in_use")
        #: RTT samples (Karn-filtered) across all connections of the host.
        self.rtt_samples = metrics.histogram("rtt")
        host.ip_layer.register_protocol(PROTO_TCP, self._receive)

    @property
    def segments_demuxed(self) -> int:
        return self._c_segments_demuxed.value

    @property
    def segments_unmatched(self) -> int:
        return self._c_segments_unmatched.value

    @property
    def syns_deflected(self) -> int:
        """SYNs that found a bound listener which refused them (backlog
        full) — kept separate from :attr:`segments_unmatched`, which
        counts segments with no matching endpoint at all."""
        return self._c_syns_deflected.value

    @property
    def resets_sent(self) -> int:
        return self._c_resets_sent.value

    @property
    def connection_count(self) -> int:
        """Connections currently in the table (all states)."""
        return len(self._connections)

    @property
    def connection_peak(self) -> int:
        """High-water mark of the connection table."""
        return int(self._g_connections_peak.value)

    @property
    def tcbs_reaped(self) -> int:
        """Connections removed after reaching CLOSED / expiring TIME_WAIT."""
        return self._c_tcbs_reaped.value

    @property
    def ephemeral_ports_exhausted(self) -> int:
        """Active opens refused because no ephemeral port was free."""
        return self._c_ports_exhausted.value

    # Connection-table bookkeeping --------------------------------------------
    def _track(self, key: ConnectionKey, tcb: TCPConnection) -> None:
        self._connections[key] = tcb
        count = len(self._connections)
        self._g_connections.value = count
        if count > self._g_connections_peak.value:
            self._g_connections_peak.value = count
        port = key[1]
        if self.ephemeral_start <= port <= self.ephemeral_end:
            self._port_refs[port] = self._port_refs.get(port, 0) + 1
            self._g_ports_in_use.value = len(self._port_refs)

    # ISN ----------------------------------------------------------------------
    def generate_isn(self) -> int:
        """A random 32-bit initial sequence number.

        Primary and backup draw from *different* host-named streams, so
        their ISNs differ — which is precisely why a backup replica must
        rebase its ISN onto the primary's during the handshake (§4.1).
        """
        rng = self.sim.random.stream(f"tcp.isn.{self.host.name}")
        return rng.randrange(0, SEQ_MASK)

    # Active open -----------------------------------------------------------------
    def connect(
        self,
        remote: Tuple[IPAddress, int],
        local_ip: Optional[IPAddress] = None,
        local_port: Optional[int] = None,
        config: Optional[TCPConfig] = None,
    ) -> TCPSocket:
        """Begin an active open; returns the socket immediately.

        ``yield sock.wait_connected()`` to block until established.
        """
        remote_ip, remote_port = remote
        if local_ip is None:
            route = self.host.ip_layer.routes.lookup(remote_ip)
            if route is None:
                raise ConnectionClosed(f"no route to {remote_ip}")
            local_ip = route.src_ip or self.host.primary_ip_on(route.nic)
        if local_port is None:
            local_port = self._allocate_ephemeral(local_ip, remote_ip, remote_port)
        key = (local_ip.value, local_port, remote_ip.value, remote_port)
        if key in self._connections:
            raise PortInUseError(f"connection {key} already exists")
        tcb = TCPConnection(
            self, local_ip, local_port, remote_ip, remote_port, config or self.config
        )
        self._track(key, tcb)
        socket = TCPSocket(tcb)
        tcb.open_active()
        return socket

    def _allocate_ephemeral(
        self, local_ip: IPAddress, remote_ip: IPAddress, remote_port: int
    ) -> int:
        """Pick a local port for an active open, O(1) in the common case.

        Virgin ports come off the sequential cursor; once the range has
        been walked, ports freed by reaped connections are reused from
        the free list.  Only when both are empty — every port carries at
        least one live connection — does allocation fall back to probing
        for a port whose specific 4-tuple is free, and a fully loaded
        range raises :class:`EphemeralPortsExhausted`.
        """
        while self._next_ephemeral <= self.ephemeral_end:
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if (local_ip.value, port, remote_ip.value, remote_port) not in self._connections:
                return port
        while self._free_ports:
            port = self._free_ports.popleft()
            if self._port_refs.get(port, 0):
                continue  # re-bound explicitly since it was freed; stale entry
            if (local_ip.value, port, remote_ip.value, remote_port) not in self._connections:
                return port
        # Every port in the range is busy; a port serving *other* remotes
        # can still reach this one.  Exhaustion-adjacent, so O(range) is
        # acceptable here and only here.
        for port in range(self.ephemeral_start, self.ephemeral_end + 1):
            if (local_ip.value, port, remote_ip.value, remote_port) not in self._connections:
                return port
        self._c_ports_exhausted.value += 1
        raise EphemeralPortsExhausted(
            f"{self.host.name}: all {self.ephemeral_end - self.ephemeral_start + 1} "
            f"ephemeral ports hold live connections to {remote_ip}:{remote_port}"
        )

    # Passive open -------------------------------------------------------------------
    def listen(
        self,
        port: int,
        bind_ip: Optional[IPAddress] = None,
        backlog: int = 128,
        config: Optional[TCPConfig] = None,
    ) -> TCPListener:
        """Open a listening endpoint on ``port``."""
        lkey = (bind_ip.value if bind_ip else None, port)
        if lkey in self._listeners:
            raise PortInUseError(f"TCP port {port} already listening on {self.host.name}")
        listener = TCPListener(self, port, bind_ip, backlog)
        if config is not None:
            listener.config = config  # type: ignore[attr-defined]
        self._listeners[lkey] = listener
        return listener

    def remove_listener(self, listener: TCPListener) -> None:
        lkey = (listener.bind_ip.value if listener.bind_ip else None, listener.port)
        self._listeners.pop(lkey, None)

    def _find_listener(self, dst_ip: IPAddress, port: int) -> Optional[TCPListener]:
        listener = self._listeners.get((dst_ip.value, port))
        if listener is None:
            listener = self._listeners.get((None, port))
        return listener

    # Demux -----------------------------------------------------------------------------
    def _receive(self, datagram: IPDatagram, nic: Optional[NIC]) -> None:
        segment: TCPSegment = datagram.payload
        key = (datagram.dst.value, segment.dst_port, datagram.src.value, segment.src_port)
        tcb = self._connections.get(key)
        if tcb is not None:
            self._c_segments_demuxed.value += 1
            tcb.on_segment(segment)
            return
        if segment.is_syn and not segment.is_ack:
            listener = self._find_listener(datagram.dst, segment.dst_port)
            if listener is not None:
                if listener.may_accept_syn():
                    self._passive_open(listener, datagram, segment)
                    return
                # A listener is bound but refused (backlog full): not the
                # same failure as a segment with no endpoint at all.
                self._c_syns_deflected.value += 1
                if self.reset_on_unmatched and not segment.is_rst:
                    self._send_unmatched_rst(datagram, segment)
                return
        self._c_segments_unmatched.value += 1
        if self.reset_on_unmatched and not segment.is_rst:
            self._send_unmatched_rst(datagram, segment)

    def _passive_open(
        self, listener: TCPListener, datagram: IPDatagram, syn: TCPSegment
    ) -> None:
        config = getattr(listener, "config", None) or self.config
        tcb = TCPConnection(
            self,
            datagram.dst,
            syn.dst_port,
            datagram.src,
            syn.src_port,
            config,
        )
        key = tcb.key
        self._track(key, tcb)
        listener.track_handshake(tcb)
        for observer in self.connection_observers:
            observer(tcb)
        tcb.open_passive(syn)

    def synthesize_passive_open(
        self,
        local_ip: IPAddress,
        local_port: int,
        remote_ip: IPAddress,
        remote_port: int,
        client_isn: int,
    ) -> Optional[TCPConnection]:
        """Passively open a connection whose client SYN this host missed.

        The ST-TCP backup calls this when a *tapped primary SYN/ACK*
        reveals a connection it never saw (the tap lost the client's
        handshake): the SYN/ACK's ack field gives the client's ISN, so
        the connection can be opened — observers attached, extensions and
        all — exactly as if the SYN had arrived.  Returns ``None`` unless
        a listener is bound and accepts.
        """
        if self.find_connection(local_ip, local_port, remote_ip, remote_port):
            return None
        listener = self._find_listener(local_ip, local_port)
        if listener is None or not listener.may_accept_syn():
            return None
        syn = TCPSegment(
            src_port=remote_port,
            dst_port=local_port,
            seq=client_isn & SEQ_MASK,
            ack=0,
            flags=FLAG_SYN,
            window=0,
        )
        datagram = IPDatagram(remote_ip, local_ip, PROTO_TCP, syn, syn.size)
        self._passive_open(listener, datagram, syn)
        return self.find_connection(local_ip, local_port, remote_ip, remote_port)

    def _send_unmatched_rst(self, datagram: IPDatagram, segment: TCPSegment) -> None:
        if segment.is_ack:
            rst = make_rst(segment.dst_port, segment.src_port, segment.ack, 0, False)
        else:
            answer = (segment.seq + segment.sequence_space_length) & SEQ_MASK
            rst = make_rst(segment.dst_port, segment.src_port, 0, answer, True)
        self._c_resets_sent.value += 1
        self.host.ip_layer.send(
            datagram.src, PROTO_TCP, rst, rst.size, src=datagram.dst
        )

    # Outbound -----------------------------------------------------------------------------
    def send_segment(self, tcb: TCPConnection, segment: TCPSegment) -> None:
        self.host.ip_layer.send(
            tcb.remote_ip, PROTO_TCP, segment, segment.size, src=tcb.local_ip
        )

    # Lifecycle ------------------------------------------------------------------------------
    def connection_closed(self, tcb: TCPConnection) -> None:
        """Reap a connection that reached CLOSED (directly or out of
        TIME_WAIT): drop the table entry, return its ephemeral port to
        the pool, and let lifecycle observers release their state."""
        if self._connections.pop(tcb.key, None) is None:
            return
        self._c_tcbs_reaped.value += 1
        self._g_connections.value = len(self._connections)
        port = tcb.local_port
        if self.ephemeral_start <= port <= self.ephemeral_end:
            refs = self._port_refs.get(port, 0) - 1
            if refs <= 0:
                self._port_refs.pop(port, None)
                self._free_ports.append(port)
            else:
                self._port_refs[port] = refs
            self._g_ports_in_use.value = len(self._port_refs)
        for observer in self.close_observers:
            observer(tcb)

    @property
    def connections(self) -> List[TCPConnection]:
        return list(self._connections.values())

    def find_connection(
        self, local_ip: IPAddress, local_port: int, remote_ip: IPAddress, remote_port: int
    ) -> Optional[TCPConnection]:
        return self._connections.get(
            (local_ip.value, local_port, remote_ip.value, remote_port)
        )

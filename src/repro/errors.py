"""Exception hierarchy shared across the :mod:`repro` packages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistency (e.g. time reversal)."""


class ProcessError(SimulationError):
    """A coroutine process was used incorrectly (e.g. double start)."""


class InterruptError(SimulationError):
    """Raised inside a process that was interrupted by another process."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class NetworkError(ReproError):
    """Base class for link-layer and topology errors."""


class AddressError(NetworkError):
    """An address literal could not be parsed or is out of range."""


class PortInUseError(NetworkError):
    """A transport port was already bound on the host."""


class EphemeralPortsExhausted(PortInUseError):
    """No ephemeral port can reach the requested remote endpoint.

    Raised by the TCP layer's ephemeral-port pool when every port in the
    dynamic range already carries a live connection to the same remote
    (IP, port).  A subclass of :class:`PortInUseError` so existing
    callers that treat port exhaustion as "port trouble" keep working,
    while connection-churn workloads can tell the two apart.
    """


class ConnectionError_(NetworkError):
    """Base class for transport-level connection failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``ConnectionError`` while staying recognisable.
    """


class ConnectionRefused(ConnectionError_):
    """The remote host answered with RST during connection establishment."""


class ConnectionReset(ConnectionError_):
    """The connection was torn down by an RST segment."""


class ConnectionTimeout(ConnectionError_):
    """The connection gave up after exhausting retransmissions."""


class ConnectionClosed(ConnectionError_):
    """An operation was attempted on a socket that is already closed."""


class HostDownError(NetworkError):
    """An operation was attempted on a crashed host."""


class ConfigurationError(ReproError):
    """A scenario or protocol configuration is invalid."""


class FailoverError(ReproError):
    """The ST-TCP failover machinery hit an unrecoverable condition."""

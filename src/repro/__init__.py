"""repro — a reproduction of ST-TCP (Server fault-Tolerant TCP), DSN 2003.

The package provides a deterministic discrete-event network simulator with
a full TCP implementation, and builds the paper's contribution — transparent
TCP server failover to an active tapping backup — on top of it.

See README.md for the full tour and :mod:`repro.harness` for the paper's
experiments.
"""

from repro.errors import (
    ConfigurationError,
    ConnectionClosed,
    ConnectionRefused,
    ConnectionReset,
    ConnectionTimeout,
    FailoverError,
    NetworkError,
    ReproError,
    SimulationError,
)
from repro.host import Host, make_gateway
from repro.net.addresses import IPAddress, MACAddress, ip, mac
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ConnectionClosed",
    "ConnectionRefused",
    "ConnectionReset",
    "ConnectionTimeout",
    "FailoverError",
    "Host",
    "IPAddress",
    "MACAddress",
    "NetworkError",
    "ReproError",
    "SimulationError",
    "Simulator",
    "ip",
    "mac",
    "make_gateway",
    "__version__",
]

"""Messages of the logger query protocol.

The backup queries the logger only during failover, for client bytes that
both (a) never arrived on its tap and (b) can no longer be repaired by the
crashed primary — the double-failure case of §3.2.  Ranges use 32-bit
client sequence numbers, like the primary↔backup channel.
"""

from __future__ import annotations

from typing import Tuple

from repro.util.bytespan import ByteSpan

ConnKey = Tuple[int, int]  # (client_ip.value, client_port)

#: Modelled wire payload of the fixed-size messages.
QUERY_MESSAGE_SIZE = 64
DONE_MESSAGE_SIZE = 32
DATA_HEADER_SIZE = 32


class LoggerQuery:
    """Ask for client-stream bytes [start_seq, stop_seq)."""

    __slots__ = ("key", "start_seq", "stop_seq")

    def __init__(self, key: ConnKey, start_seq: int, stop_seq: int) -> None:
        self.key = key
        self.start_seq = start_seq
        self.stop_seq = stop_seq

    @property
    def wire_size(self) -> int:
        return QUERY_MESSAGE_SIZE


class LoggerData:
    """One recovered chunk."""

    __slots__ = ("key", "seq", "payload")

    def __init__(self, key: ConnKey, seq: int, payload: ByteSpan) -> None:
        self.key = key
        self.seq = seq
        self.payload = payload

    @property
    def wire_size(self) -> int:
        return DATA_HEADER_SIZE + len(self.payload)


class LoggerDone:
    """Terminates the response stream for one query."""

    __slots__ = ("key", "recovered_bytes")

    def __init__(self, key: ConnKey, recovered_bytes: int) -> None:
        self.key = key
        self.recovered_bytes = recovered_bytes

    @property
    def wire_size(self) -> int:
        return DONE_MESSAGE_SIZE

"""The backup's client for the packet-logger query service.

Supports several redundant loggers (§3.2: "by having two loggers ... one
can prevent the logger from becoming a single point of failure"): each
query goes to every logger, duplicate chunks are harmless (the receive
buffer discards overlaps), and a query completes when any logger has
streamed everything it claimed for that connection.

Responses travel over the same medium the backup taps, so a recovery
chunk can be lost exactly like the frame it is repairing.  ``LoggerDone``
carries the byte count the logger sent; when fewer bytes arrived, the
client re-issues the incomplete queries (the logger re-streams the range;
overlaps are discarded downstream) for up to ``RECOVERY_ATTEMPTS``
rounds.  A round that produced *no* response at all means the logger is
dead or unreachable, not lossy — the client gives up immediately so
takeover never stalls longer than one timeout on a dead logger.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.logger.messages import ConnKey, LoggerData, LoggerDone, LoggerQuery
from repro.net.addresses import IPAddress
from repro.tcp.timers import RestartableTimer

#: Give up on an unresponsive logger after this long; takeover must not
#: stall indefinitely on a dead logger.
RECOVERY_TIMEOUT = 0.200

#: Total query rounds against a *responding* logger before accepting the
#: loss; bounds the takeover delay at RECOVERY_ATTEMPTS * RECOVERY_TIMEOUT.
RECOVERY_ATTEMPTS = 4

OnData = Callable[[ConnKey, int, Any], None]
OnDone = Callable[[], None]


class LoggerClient:
    """Issues gap-recovery queries during failover and streams results."""

    def __init__(
        self,
        host: Any,
        logger_addr: Union[Tuple[IPAddress, int], Sequence[Tuple[IPAddress, int]]],
    ) -> None:
        self.host = host
        self.sim = host.sim
        if isinstance(logger_addr, tuple) and len(logger_addr) == 2 and not isinstance(
            logger_addr[0], tuple
        ):
            self.logger_addrs: List[Tuple[IPAddress, int]] = [logger_addr]
        else:
            self.logger_addrs = list(logger_addr)  # type: ignore[arg-type]
        self.socket = host.udp.socket()
        self.socket.on_datagram = self._on_message
        self._pending: Dict[ConnKey, Tuple[int, int]] = {}
        self._rx_bytes: Dict[Tuple[int, ConnKey], int] = {}
        self._attempt = 0
        self._heard_this_attempt = False
        self._on_data: Optional[OnData] = None
        self._on_done: Optional[OnDone] = None
        self._deadline = RestartableTimer(self.sim, self._timed_out, "logger-client")
        self.bytes_recovered = 0
        self.recoveries_timed_out = 0
        self.recovery_retries = 0

    @property
    def logger_addr(self) -> Tuple[IPAddress, int]:
        """The first configured logger (single-logger compatibility)."""
        return self.logger_addrs[0]

    def recover(
        self,
        queries: List[Tuple[ConnKey, int, int]],
        on_data: OnData,
        on_done: OnDone,
    ) -> None:
        """Fetch ranges [(key, start_seq32, stop_seq32)]; stream chunks to
        ``on_data(key, seq32, payload)``; call ``on_done()`` when every
        query finished or the retry budget is exhausted."""
        if not queries:
            on_done()
            return
        self._on_data = on_data
        self._on_done = on_done
        self._pending = {key: (start, stop) for key, start, stop in queries}
        self._attempt = 1
        self._send_pending()

    def _send_pending(self) -> None:
        # Per-round accounting: a retry re-streams the whole range, so
        # byte counts from the previous round must not carry over (they
        # would make a re-lost chunk look delivered).
        self._rx_bytes = {}
        self._heard_this_attempt = False
        self._deadline.start(RECOVERY_TIMEOUT)
        for key, (start_seq, stop_seq) in self._pending.items():
            message = LoggerQuery(key, start_seq, stop_seq)
            for addr in self.logger_addrs:
                self.socket.send_to(addr, message, message.wire_size)

    def _on_message(self, message: Any, addr: tuple) -> None:
        if self._on_done is None:
            return  # stale response after completion/timeout
        source = addr[0].value
        if isinstance(message, LoggerData):
            self._heard_this_attempt = True
            self.bytes_recovered += len(message.payload)
            slot = (source, message.key)
            self._rx_bytes[slot] = self._rx_bytes.get(slot, 0) + len(message.payload)
            if self._on_data is not None:
                self._on_data(message.key, message.seq, message.payload)
        elif isinstance(message, LoggerDone):
            self._heard_this_attempt = True
            if message.key not in self._pending:
                return  # duplicate/stale completion
            # Complete only when every byte this logger streamed actually
            # arrived; a short count means a chunk died en route and the
            # range must be re-queried.
            if self._rx_bytes.get((source, message.key), 0) >= message.recovered_bytes:
                del self._pending[message.key]
                if not self._pending:
                    self._finish()

    def _timed_out(self) -> None:
        if self._on_done is None:
            return
        if self._heard_this_attempt and self._attempt < RECOVERY_ATTEMPTS:
            # The logger is alive but a frame was lost: retry what is
            # still incomplete.  (A silent round falls through — a dead
            # logger earns exactly one timeout, never the full budget.)
            self._attempt += 1
            self.recovery_retries += 1
            self._send_pending()
            return
        self.recoveries_timed_out += 1
        self._finish()

    def _finish(self) -> None:
        self._deadline.stop()
        done, self._on_done, self._on_data = self._on_done, None, None
        self._pending = {}
        if done is not None:
            done()

"""The backup's client for the packet-logger query service.

Supports several redundant loggers (§3.2: "by having two loggers ... one
can prevent the logger from becoming a single point of failure"): each
query goes to every logger, duplicate chunks are harmless (the receive
buffer discards overlaps), and the recovery completes when any logger has
answered every query — or the timeout fires.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.logger.messages import ConnKey, LoggerData, LoggerDone, LoggerQuery
from repro.net.addresses import IPAddress
from repro.tcp.timers import RestartableTimer

#: Give up on an unresponsive logger after this long; takeover must not
#: stall indefinitely on a dead logger.
RECOVERY_TIMEOUT = 0.200

OnData = Callable[[ConnKey, int, Any], None]
OnDone = Callable[[], None]


class LoggerClient:
    """Issues gap-recovery queries during failover and streams results."""

    def __init__(
        self,
        host: Any,
        logger_addr: Union[Tuple[IPAddress, int], Sequence[Tuple[IPAddress, int]]],
    ) -> None:
        self.host = host
        self.sim = host.sim
        if isinstance(logger_addr, tuple) and len(logger_addr) == 2 and not isinstance(
            logger_addr[0], tuple
        ):
            self.logger_addrs: List[Tuple[IPAddress, int]] = [logger_addr]
        else:
            self.logger_addrs = list(logger_addr)  # type: ignore[arg-type]
        self.socket = host.udp.socket()
        self.socket.on_datagram = self._on_message
        self._queries_total = 0
        self._done_by_logger: Dict[int, int] = {}
        self._on_data: Optional[OnData] = None
        self._on_done: Optional[OnDone] = None
        self._deadline = RestartableTimer(self.sim, self._timed_out, "logger-client")
        self.bytes_recovered = 0
        self.recoveries_timed_out = 0

    @property
    def logger_addr(self) -> Tuple[IPAddress, int]:
        """The first configured logger (single-logger compatibility)."""
        return self.logger_addrs[0]

    def recover(
        self,
        queries: List[Tuple[ConnKey, int, int]],
        on_data: OnData,
        on_done: OnDone,
    ) -> None:
        """Fetch ranges [(key, start_seq32, stop_seq32)]; stream chunks to
        ``on_data(key, seq32, payload)``; call ``on_done()`` when every
        query finished or the timeout fires."""
        if not queries:
            on_done()
            return
        self._on_data = on_data
        self._on_done = on_done
        self._queries_total = len(queries)
        self._done_by_logger = {}
        self._deadline.start(RECOVERY_TIMEOUT)
        for key, start_seq, stop_seq in queries:
            message = LoggerQuery(key, start_seq, stop_seq)
            for addr in self.logger_addrs:
                self.socket.send_to(addr, message, message.wire_size)

    def _on_message(self, message: Any, addr: tuple) -> None:
        if self._on_done is None:
            return  # stale response after completion/timeout
        if isinstance(message, LoggerData):
            self.bytes_recovered += len(message.payload)
            if self._on_data is not None:
                self._on_data(message.key, message.seq, message.payload)
        elif isinstance(message, LoggerDone):
            source = addr[0].value
            self._done_by_logger[source] = self._done_by_logger.get(source, 0) + 1
            # Complete when any single logger answered every query.
            if max(self._done_by_logger.values()) >= self._queries_total:
                self._finish()

    def _timed_out(self) -> None:
        if self._on_done is not None:
            self.recoveries_timed_out += 1
            self._finish()

    def _finish(self) -> None:
        self._deadline.stop()
        done, self._on_done, self._on_data = self._on_done, None, None
        if done is not None:
            done()

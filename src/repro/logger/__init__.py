"""The packet logger: double-failure masking for ST-TCP (§3.2)."""

from repro.logger.client import RECOVERY_TIMEOUT, LoggerClient
from repro.logger.messages import LoggerData, LoggerDone, LoggerQuery
from repro.logger.packet_logger import LOGGER_PORT, PacketLogger

__all__ = [
    "LOGGER_PORT",
    "LoggerClient",
    "LoggerData",
    "LoggerDone",
    "LoggerQuery",
    "PacketLogger",
    "RECOVERY_TIMEOUT",
]

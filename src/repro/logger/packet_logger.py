"""The in-memory packet logger node (§3.2).

"This logger machine logs all packets on the Ethernet in its main memory
for a bounded amount of time."  The logger taps the medium like the backup
does, retains the client→server payload stream for ``retain_seconds``
(sized by the maximum failover time), and serves range queries over UDP.
The logger introduces no forwarding delay — it taps, it does not relay.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ip.datagram import PROTO_TCP, IPDatagram
from repro.logger.messages import LoggerData, LoggerDone, LoggerQuery
from repro.net.addresses import IPAddress
from repro.net.nic import NIC
from repro.tcp.segment import TCPSegment
from repro.tcp.seqspace import unwrap, wrap
from repro.util.bytespan import ByteSpan

#: Default UDP port of the logger query service.
LOGGER_PORT = 39100

#: Payload ceiling per LoggerData chunk.
LOGGER_CHUNK = 1400


class _StreamLog:
    """Retained client→server payload history for one connection."""

    __slots__ = ("last_abs", "entries", "bytes_logged")

    def __init__(self, isn_abs: int) -> None:
        self.last_abs = isn_abs
        self.entries: List[Tuple[float, int, ByteSpan]] = []  # (time, seq_abs, span)
        self.bytes_logged = 0

    def record(self, now: float, seq32: int, payload: ByteSpan) -> None:
        seq_abs = unwrap(seq32, self.last_abs)
        self.last_abs = max(self.last_abs, seq_abs + len(payload))
        self.entries.append((now, seq_abs, payload))
        self.bytes_logged += len(payload)

    def prune(self, horizon: float) -> None:
        keep_from = 0
        for index, (when, _seq, _span) in enumerate(self.entries):
            if when >= horizon:
                keep_from = index
                break
        else:
            keep_from = len(self.entries)
        if keep_from:
            del self.entries[:keep_from]

    def collect(self, start_abs: int, stop_abs: int) -> List[Tuple[int, ByteSpan]]:
        """All stored byte ranges overlapping [start, stop)."""
        pieces = []
        for _when, seq_abs, span in self.entries:
            lo = max(seq_abs, start_abs)
            hi = min(seq_abs + len(span), stop_abs)
            if lo < hi:
                pieces.append((lo, span.slice(lo - seq_abs, hi - seq_abs)))
        return pieces


class PacketLogger:
    """A logging node: promiscuous tap + UDP query service."""

    def __init__(
        self,
        host: Any,
        service_ip: IPAddress,
        service_port: int,
        retain_seconds: float = 60.0,
        port: int = LOGGER_PORT,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.service_ip = service_ip
        self.service_port = service_port
        self.retain_seconds = retain_seconds
        self.port = port
        self._streams: Dict[Tuple[int, int], _StreamLog] = {}
        host.ip_layer.add_tap(self._tap)
        self.query_socket = host.udp.socket(port)
        self.query_socket.on_datagram = self._on_query
        self.queries_served = 0
        self.bytes_served = 0

    @property
    def address(self) -> Tuple[IPAddress, int]:
        return (self.host.interfaces[0].ip, self.port)

    @property
    def total_bytes_logged(self) -> int:
        return sum(stream.bytes_logged for stream in self._streams.values())

    @property
    def retained_bytes(self) -> int:
        return sum(
            sum(len(span) for _t, _s, span in stream.entries)
            for stream in self._streams.values()
        )

    # Tap side -----------------------------------------------------------------
    def _tap(self, datagram: IPDatagram, nic: Optional[NIC]) -> None:
        if datagram.protocol != PROTO_TCP or datagram.dst != self.service_ip:
            return  # only the client→server direction needs logging
        segment: TCPSegment = datagram.payload
        if segment.dst_port != self.service_port:
            return
        key = (datagram.src.value, segment.src_port)
        if segment.is_syn:
            self._streams[key] = _StreamLog(segment.seq)
            return
        stream = self._streams.get(key)
        if stream is None or segment.payload_length == 0:
            return
        stream.record(self.sim.now, segment.seq, segment.payload)
        stream.prune(self.sim.now - self.retain_seconds)

    # Query side ------------------------------------------------------------------
    def _on_query(self, message: Any, addr: tuple) -> None:
        if not isinstance(message, LoggerQuery) or not self.host.is_up:
            return
        self.queries_served += 1
        stream = self._streams.get(message.key)
        recovered = 0
        if stream is not None:
            start_abs = unwrap(message.start_seq, stream.last_abs)
            if message.stop_seq == message.start_seq:
                # Open-ended query: everything retained from start on.
                stop_abs = stream.last_abs
            else:
                stop_abs = unwrap(message.stop_seq, stream.last_abs)
            for seq_abs, span in stream.collect(start_abs, stop_abs):
                for piece_start in range(0, len(span), LOGGER_CHUNK):
                    piece = span.slice(
                        piece_start, min(piece_start + LOGGER_CHUNK, len(span))
                    )
                    reply = LoggerData(message.key, wrap(seq_abs + piece_start), piece)
                    self.query_socket.send_to(addr, reply, reply.wire_size)
                    recovered += len(piece)
        self.bytes_served += recovered
        done = LoggerDone(message.key, recovered)
        self.query_socket.send_to(addr, done, done.wire_size)

"""UDP sockets.

Two consumption styles are supported:

* coroutine: ``payload, addr = yield sock.recv()``
* callback: ``sock.on_datagram = handler`` — used by protocol engines
  (the ST-TCP sync channel) that react to every datagram immediately.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple, Union

from repro.errors import ConnectionClosed
from repro.net.addresses import IPAddress
from repro.sim.events import SimEvent
from repro.udp.datagram import UDPDatagram
from repro.util.bytespan import ByteSpan, as_span

Address = Tuple[IPAddress, int]
DatagramCallback = Callable[[Any, Address], None]


class UDPSocket:
    """A bound UDP endpoint."""

    def __init__(self, layer: Any, port: int) -> None:
        self._layer = layer
        self.port = port
        self.closed = False
        self.on_datagram: Optional[DatagramCallback] = None
        self._queue: Deque[Tuple[Any, Address]] = deque()
        self._waiters: Deque[SimEvent] = deque()
        self.sent_datagrams = 0
        self.received_datagrams = 0

    # Sending ---------------------------------------------------------------
    def send_to(
        self,
        addr: Address,
        payload: Union[bytes, ByteSpan, Any],
        payload_size: Optional[int] = None,
    ) -> None:
        """Send one datagram to ``(ip, port)``.

        Bytes-like payloads size themselves; protocol objects must pass
        ``payload_size`` explicitly (their modelled wire size).
        """
        if self.closed:
            raise ConnectionClosed(f"UDP socket :{self.port} is closed")
        if payload_size is None:
            span = as_span(payload)
            payload, payload_size = span, len(span)
        dst_ip, dst_port = addr
        datagram = UDPDatagram(self.port, dst_port, payload, payload_size)
        self.sent_datagrams += 1
        self._layer.transmit(dst_ip, datagram)

    # Receiving ---------------------------------------------------------------
    def recv(self) -> SimEvent:
        """Waitable for the next datagram: succeeds with (payload, addr)."""
        event = SimEvent(self._layer.sim, f"udp:{self.port}.recv")
        if self.closed:
            event.fail(ConnectionClosed(f"UDP socket :{self.port} is closed"))
            return event
        if self._queue:
            event.succeed(self._queue.popleft())
        else:
            self._waiters.append(event)
        return event

    def deliver(self, payload: Any, addr: Address) -> None:
        """Called by the UDP layer on matching inbound datagrams."""
        if self.closed:
            return
        self.received_datagrams += 1
        if self.on_datagram is not None:
            self.on_datagram(payload, addr)
            return
        if self._waiters:
            self._waiters.popleft().succeed((payload, addr))
        else:
            self._queue.append((payload, addr))

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._layer.unbind(self.port)
        while self._waiters:
            self._waiters.popleft().fail(
                ConnectionClosed(f"UDP socket :{self.port} closed while receiving")
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return f"<UDPSocket :{self.port} {state}>"

"""The per-host UDP layer: port table and demux."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import PortInUseError
from repro.ip.datagram import PROTO_UDP, IPDatagram
from repro.net.addresses import IPAddress
from repro.net.nic import NIC
from repro.udp.datagram import UDPDatagram
from repro.udp.socket import UDPSocket

#: First port used for automatic (ephemeral) binds.
EPHEMERAL_PORT_START = 32768
EPHEMERAL_PORT_END = 60999


class UDPLayer:
    """Owns the UDP port space of one host."""

    def __init__(self, sim: Any, host: Any) -> None:
        self.sim = sim
        self.host = host
        self._sockets: Dict[int, UDPSocket] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        self.received = 0
        self.dropped_no_port = 0
        host.ip_layer.register_protocol(PROTO_UDP, self._receive)

    def socket(self, port: Optional[int] = None) -> UDPSocket:
        """Create a socket bound to ``port`` (or an ephemeral port)."""
        if port is None:
            port = self._allocate_ephemeral()
        elif port in self._sockets:
            raise PortInUseError(f"UDP port {port} already bound on {self.host.name}")
        sock = UDPSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _allocate_ephemeral(self) -> int:
        start = self._next_ephemeral
        port = start
        while port in self._sockets:
            port += 1
            if port > EPHEMERAL_PORT_END:
                port = EPHEMERAL_PORT_START
            if port == start:
                raise PortInUseError(f"no free UDP ports on {self.host.name}")
        self._next_ephemeral = port + 1
        if self._next_ephemeral > EPHEMERAL_PORT_END:
            self._next_ephemeral = EPHEMERAL_PORT_START
        return port

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def transmit(self, dst_ip: IPAddress, datagram: UDPDatagram) -> None:
        """Hand a UDP datagram to the IP layer."""
        self.host.ip_layer.send(dst_ip, PROTO_UDP, datagram, datagram.size)

    def _receive(self, ip_datagram: IPDatagram, nic: Optional[NIC]) -> None:
        udp_datagram: UDPDatagram = ip_datagram.payload
        sock = self._sockets.get(udp_datagram.dst_port)
        if sock is None:
            self.dropped_no_port += 1
            return
        self.received += 1
        sock.deliver(udp_datagram.payload, (ip_datagram.src, udp_datagram.src_port))

"""UDP datagrams."""

from __future__ import annotations

from typing import Any

#: UDP header size.
UDP_HEADER_SIZE = 8


class UDPDatagram:
    """A UDP datagram: ports plus an opaque payload with explicit size.

    The ST-TCP sync channel sends small protocol objects
    (:mod:`repro.sttcp.messages`) rather than serialised bytes; each
    message declares its wire size, so traffic accounting stays honest.
    """

    __slots__ = ("src_port", "dst_port", "payload", "payload_size")

    def __init__(self, src_port: int, dst_port: int, payload: Any, payload_size: int) -> None:
        if not 0 < src_port < 65536 or not 0 < dst_port < 65536:
            raise ValueError(f"bad UDP ports {src_port}->{dst_port}")
        if payload_size < 0:
            raise ValueError(f"negative payload size {payload_size}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        self.payload_size = payload_size

    @property
    def size(self) -> int:
        return UDP_HEADER_SIZE + self.payload_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UDP {self.src_port}->{self.dst_port} {self.payload_size}B>"

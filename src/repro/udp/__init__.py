"""UDP: datagrams, per-host layer, sockets."""

from repro.udp.datagram import UDP_HEADER_SIZE, UDPDatagram
from repro.udp.layer import EPHEMERAL_PORT_START, UDPLayer
from repro.udp.socket import UDPSocket

__all__ = [
    "EPHEMERAL_PORT_START",
    "UDPDatagram",
    "UDPLayer",
    "UDPSocket",
    "UDP_HEADER_SIZE",
]

"""Unit helpers used across configuration and the harness.

All sizes are bytes; all rates are bits per second; all times are seconds —
the helpers make literals self-describing at call sites
(``mbps(100)`` rather than ``100_000_000``).
"""

from __future__ import annotations

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def kbps(value: float) -> float:
    """Kilobits per second → bits per second."""
    return value * 1_000.0


def mbps(value: float) -> float:
    """Megabits per second → bits per second."""
    return value * 1_000_000.0


def gbps(value: float) -> float:
    """Gigabits per second → bits per second."""
    return value * 1_000_000_000.0


def ms(value: float) -> float:
    """Milliseconds → seconds."""
    return value / 1_000.0


def us(value: float) -> float:
    """Microseconds → seconds."""
    return value / 1_000_000.0


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Seconds to clock ``size_bytes`` onto a link of ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * 8.0 / rate_bps


def fmt_bytes(size: float) -> str:
    """Human-readable byte count (``1.5 MB``)."""
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if size >= factor:
            return f"{size / factor:.6g} {unit}"
    return f"{size:.6g} B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration (``2.35 s`` / ``150 ms`` / ``42 us``)."""
    if seconds >= 1.0:
        return f"{seconds:.6g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.6g} ms"
    return f"{seconds * 1e6:.6g} us"

"""Byte-payload modelling for the simulator.

Simulating the paper's 100 MB bulk transfer with real ``bytes`` payloads
would copy gigabytes through links, buffers and retransmission queues.
Instead, payloads are :class:`ByteSpan` objects:

* :class:`RealBytes` wraps actual bytes (used by the small-message apps so
  content correctness is checked end-to-end for real data).
* :class:`PatternBytes` describes a *deterministic synthetic* byte range —
  byte at absolute stream position ``p`` equals ``pattern_table[p % 251]``
  — in O(1) memory.  Receivers can verify any slice of the stream without
  the sender shipping the content.
* :class:`CatBytes` concatenates spans without copying.

All spans are immutable; slicing returns new spans sharing structure.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Union

_TABLE_PERIOD = 251  # prime, so patterns don't resonate with power-of-2 MSS

_pattern_tables: dict = {}


def _pattern_table(pattern_id: int) -> bytes:
    table = _pattern_tables.get(pattern_id)
    if table is None:
        table = bytes((pattern_id * 37 + k * 101 + 7) % 256 for k in range(_TABLE_PERIOD))
        _pattern_tables[pattern_id] = table
    return table


class ByteSpan:
    """Abstract immutable byte sequence.

    Subclasses implement ``__len__``, ``slice`` and ``to_bytes``.  Slicing
    with ``span[a:b]`` is supported for convenience.
    """

    __slots__ = ()

    def __len__(self) -> int:
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "ByteSpan":
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        raise NotImplementedError

    def iter_chunks(self, chunk_size: int = 65536) -> Iterator[bytes]:
        """Materialise the span in bounded-size pieces."""
        length = len(self)
        for start in range(0, length, chunk_size):
            yield self.slice(start, min(start + chunk_size, length)).to_bytes()

    def __getitem__(self, key: slice) -> "ByteSpan":
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise TypeError("ByteSpan only supports contiguous slicing")
        start, stop, _ = key.indices(len(self))
        return self.slice(start, stop)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (ByteSpan, bytes, bytearray)):
            return NotImplemented
        other_span = as_span(other) if not isinstance(other, ByteSpan) else other
        return span_equal(self, other_span)

    def __hash__(self) -> int:
        # Spans are rarely hashed; a cheap structural hash on length plus
        # first/last bytes is enough for set/dict use in tests.
        length = len(self)
        if length == 0:
            return hash((0, b""))
        head = self.slice(0, min(16, length)).to_bytes()
        return hash((length, head))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} len={len(self)}>"


def _check_bounds(start: int, stop: int, length: int) -> None:
    if not 0 <= start <= stop <= length:
        raise IndexError(f"slice [{start}, {stop}) outside span of length {length}")


class RealBytes(ByteSpan):
    """A span backed by actual bytes."""

    __slots__ = ("data",)

    def __init__(self, data: Union[bytes, bytearray, memoryview]) -> None:
        self.data = bytes(data)

    def __len__(self) -> int:
        return len(self.data)

    def slice(self, start: int, stop: int) -> ByteSpan:
        _check_bounds(start, stop, len(self.data))
        return RealBytes(self.data[start:stop])

    def to_bytes(self) -> bytes:
        return self.data


class PatternBytes(ByteSpan):
    """A synthetic span: byte at stream offset ``p`` is a pure function of
    ``p`` and ``pattern_id``.

    ``offset`` is the absolute stream position of the first byte, so slices
    of the same logical stream produced independently by sender and
    receiver compare equal.
    """

    __slots__ = ("length", "offset", "pattern_id")

    def __init__(self, length: int, offset: int = 0, pattern_id: int = 0) -> None:
        if length < 0:
            raise ValueError(f"negative length {length}")
        self.length = length
        self.offset = offset
        self.pattern_id = pattern_id

    def __len__(self) -> int:
        return self.length

    def slice(self, start: int, stop: int) -> ByteSpan:
        _check_bounds(start, stop, self.length)
        return PatternBytes(stop - start, self.offset + start, self.pattern_id)

    def to_bytes(self) -> bytes:
        table = _pattern_table(self.pattern_id)
        phase = self.offset % _TABLE_PERIOD
        if self.length <= _TABLE_PERIOD:
            doubled = table + table
            return doubled[phase : phase + self.length]
        # Tile the table starting at the right phase.
        repeats = (self.length + phase) // _TABLE_PERIOD + 2
        tiled = table * repeats
        return tiled[phase : phase + self.length]


class CatBytes(ByteSpan):
    """Zero-copy concatenation of spans.

    Nested ``CatBytes`` children are flattened at construction so deep
    append chains (e.g. a send buffer drained one MSS at a time) never
    build pathological trees.
    """

    __slots__ = ("parts", "length")

    def __init__(self, parts: Sequence[ByteSpan]) -> None:
        flat: List[ByteSpan] = []
        for part in parts:
            if isinstance(part, CatBytes):
                flat.extend(part.parts)
            elif len(part) > 0:
                flat.append(part)
        self.parts = _coalesce(flat)
        self.length = sum(len(part) for part in self.parts)

    def __len__(self) -> int:
        return self.length

    def slice(self, start: int, stop: int) -> ByteSpan:
        _check_bounds(start, stop, self.length)
        if start == stop:
            return EMPTY
        picked: List[ByteSpan] = []
        position = 0
        for part in self.parts:
            part_len = len(part)
            if position + part_len <= start:
                position += part_len
                continue
            if position >= stop:
                break
            lo = max(0, start - position)
            hi = min(part_len, stop - position)
            picked.append(part.slice(lo, hi))
            position += part_len
        if len(picked) == 1:
            return picked[0]
        return CatBytes(picked)

    def to_bytes(self) -> bytes:
        return b"".join(part.to_bytes() for part in self.parts)


def _coalesce(parts: List[ByteSpan]) -> List[ByteSpan]:
    """Merge adjacent spans that are contiguous pieces of one pattern."""
    merged: List[ByteSpan] = []
    for part in parts:
        if (
            merged
            and isinstance(part, PatternBytes)
            and isinstance(merged[-1], PatternBytes)
            and merged[-1].pattern_id == part.pattern_id
            and merged[-1].offset + merged[-1].length == part.offset
        ):
            last = merged[-1]
            merged[-1] = PatternBytes(
                last.length + part.length, last.offset, last.pattern_id
            )
        else:
            merged.append(part)
    return merged


EMPTY = RealBytes(b"")


def as_span(data: Union[ByteSpan, bytes, bytearray, memoryview]) -> ByteSpan:
    """Coerce raw bytes to a span; spans pass through unchanged."""
    if isinstance(data, ByteSpan):
        return data
    if isinstance(data, (bytes, bytearray, memoryview)):
        return RealBytes(data) if len(data) else EMPTY
    raise TypeError(f"cannot treat {type(data).__name__} as bytes")


def concat(parts: Sequence[ByteSpan]) -> ByteSpan:
    """Concatenate spans, returning the cheapest representation."""
    live = [part for part in parts if len(part)]
    if not live:
        return EMPTY
    if len(live) == 1:
        return live[0]
    return CatBytes(live)


def span_equal(a: ByteSpan, b: ByteSpan) -> bool:
    """Content equality, materialising at most 64 KiB at a time."""
    if len(a) != len(b):
        return False
    for chunk_a, chunk_b in zip(a.iter_chunks(), b.iter_chunks()):
        if chunk_a != chunk_b:
            return False
    return True


def fingerprint(span: ByteSpan) -> int:
    """A cheap order-sensitive content fingerprint (FNV-1a over chunks)."""
    value = 0xCBF29CE484222325
    for chunk in span.iter_chunks():
        for byte in chunk:
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value

"""Shared utilities: byte-span payload modelling, FIFO span buffers, units."""

from repro.util.bytespan import (
    EMPTY,
    ByteSpan,
    CatBytes,
    PatternBytes,
    RealBytes,
    as_span,
    concat,
    fingerprint,
    span_equal,
)
from repro.util.spanbuffer import SpanBuffer
from repro.util.units import (
    GB,
    KB,
    MB,
    fmt_bytes,
    fmt_time,
    gbps,
    kbps,
    mbps,
    ms,
    transmission_time,
    us,
)

__all__ = [
    "ByteSpan",
    "CatBytes",
    "EMPTY",
    "GB",
    "KB",
    "MB",
    "PatternBytes",
    "RealBytes",
    "SpanBuffer",
    "as_span",
    "concat",
    "fingerprint",
    "fmt_bytes",
    "fmt_time",
    "gbps",
    "kbps",
    "mbps",
    "ms",
    "span_equal",
    "transmission_time",
    "us",
]

"""A FIFO byte buffer over :class:`~repro.util.bytespan.ByteSpan` pieces.

Used by the TCP send/receive paths: append spans at the tail, read or
discard from the head, and take zero-copy slices at arbitrary offsets (for
retransmission).  All operations are O(pieces touched).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Union

from repro.util.bytespan import EMPTY, ByteSpan, as_span, concat


class SpanBuffer:
    """FIFO of byte spans with an absolute head offset.

    ``head_offset`` tracks how many bytes have ever been popped, so callers
    can address content by absolute stream position (TCP sequence space is
    mapped onto this after subtracting the ISN).
    """

    __slots__ = ("_pieces", "_length", "head_offset")

    def __init__(self) -> None:
        self._pieces: Deque[ByteSpan] = deque()
        self._length = 0
        self.head_offset = 0

    def __len__(self) -> int:
        return self._length

    @property
    def tail_offset(self) -> int:
        """Absolute offset one past the last byte in the buffer."""
        return self.head_offset + self._length

    def append(self, data: Union[ByteSpan, bytes]) -> None:
        span = as_span(data)
        if len(span) == 0:
            return
        self._pieces.append(span)
        self._length += len(span)

    def pop_front(self, count: int) -> ByteSpan:
        """Remove and return the first ``count`` bytes (clamped to length)."""
        count = min(count, self._length)
        if count <= 0:
            return EMPTY
        taken = []
        remaining = count
        while remaining > 0:
            piece = self._pieces[0]
            piece_len = len(piece)
            if piece_len <= remaining:
                taken.append(self._pieces.popleft())
                remaining -= piece_len
            else:
                taken.append(piece.slice(0, remaining))
                self._pieces[0] = piece.slice(remaining, piece_len)
                remaining = 0
        self._length -= count
        self.head_offset += count
        return concat(taken)

    def discard_front(self, count: int) -> None:
        """Drop the first ``count`` bytes without materialising them."""
        count = min(count, self._length)
        remaining = count
        while remaining > 0:
            piece = self._pieces[0]
            piece_len = len(piece)
            if piece_len <= remaining:
                self._pieces.popleft()
                remaining -= piece_len
            else:
                self._pieces[0] = piece.slice(remaining, piece_len)
                remaining = 0
        self._length -= count
        self.head_offset += count

    def peek_absolute(self, start: int, stop: int) -> ByteSpan:
        """Zero-copy slice by *absolute* offsets (within the buffer range)."""
        if start < self.head_offset or stop > self.tail_offset or start > stop:
            raise IndexError(
                f"[{start}, {stop}) outside buffered range "
                f"[{self.head_offset}, {self.tail_offset})"
            )
        if start == stop:
            return EMPTY
        rel_start = start - self.head_offset
        rel_stop = stop - self.head_offset
        picked = []
        position = 0
        for piece in self._pieces:
            piece_len = len(piece)
            if position + piece_len <= rel_start:
                position += piece_len
                continue
            if position >= rel_stop:
                break
            lo = max(0, rel_start - position)
            hi = min(piece_len, rel_stop - position)
            picked.append(piece.slice(lo, hi))
            position += piece_len
        return concat(picked)

    def peek_front(self, count: int) -> ByteSpan:
        """Zero-copy view of the first ``count`` bytes (clamped)."""
        count = min(count, self._length)
        return self.peek_absolute(self.head_offset, self.head_offset + count)

    def clear(self) -> None:
        self._pieces.clear()
        self.head_offset += self._length
        self._length = 0

    def seek(self, offset: int) -> None:
        """Jump an *empty* buffer's head to ``offset``.

        Lets a stream adopt a position it never carried bytes through
        (ST-TCP snapshot handoff: a fresh backup joins mid-connection at
        the primary's current offsets).  Rewinding is refused — absolute
        offsets already handed out would alias.
        """
        if self._length != 0:
            raise ValueError(f"seek on non-empty buffer ({self._length} bytes held)")
        if offset < self.head_offset:
            raise ValueError(
                f"seek backwards from {self.head_offset} to {offset}"
            )
        self.head_offset = offset

"""Incrementally maintained indexes over the backup's shadow set.

With a handful of connections the backup could afford to walk its whole
``_connections`` dict on every sync tick, takeover, and convergence
check.  At thousands of simultaneous shadows those walks dominate: a
sync tick touching 2,000 idle connections to ack the 3 that progressed
is O(all) work for O(changed) information.

:class:`BackupConnectionIndex` keeps four views current as events
arrive, each O(1) amortised per update:

* **ack schedule** — a time-ordered queue of (last-ack time, state)
  entries, so a sync tick pops exactly the connections whose SyncTime
  expired instead of scanning everything (§4.3).  Entries are lazily
  invalidated: a state acked again before its entry surfaces simply
  leaves a stale entry behind that is dropped on pop.
* **retx-pending set** — the connections with an outstanding §4.2
  recovery request, so re-issue checks touch only those.
* **gap index** — the connections whose tapped ``primary_rcv_nxt`` runs
  ahead of the local receive stream; takeover gap-finding reads this
  instead of re-deriving gaps from a full scan (§3.2).
* **pending-rebase set** — shadows whose send sequence space has not yet
  been re-anchored on the primary's ISN (§4.1); convergence accounting
  and the takeover degraded-connection check iterate only these.

Every entry is validated against ground truth (the state/TCB fields)
when read, so the indexes can only *over*-approximate; the hypothesis
test in ``tests/sttcp/test_scale_indexes.py`` drives random event
sequences against a brute-force oracle to prove the approximation is
exact at read time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Tuple

ConnKey = Tuple[int, int]


class BackupConnectionIndex:
    """O(changed) bookkeeping for the backup-side shadow set.

    ``state`` objects are the backup's per-connection records; the index
    only relies on ``state.key``, ``state.closed``,
    ``state.last_ack_time``, ``state.pending_retx``,
    ``state.primary_rcv_nxt`` and ``state.tcb`` (``rcv_nxt``,
    ``is_synchronized``) — duck-typed so tests can drive it with fakes.
    """

    __slots__ = ("_ack_queue", "_retx_pending", "_gapped", "_pending_rebase")

    def __init__(self) -> None:
        #: (last_ack_time when enqueued, state); sorted by construction
        #: because sim time is monotone and every append uses "now".
        self._ack_queue: Deque[Tuple[float, Any]] = deque()
        self._retx_pending: Dict[ConnKey, Any] = {}
        self._gapped: Dict[ConnKey, Any] = {}
        self._pending_rebase: Dict[ConnKey, Any] = {}

    # -- lifecycle -------------------------------------------------------------
    def add(self, state: Any) -> None:
        """Register a freshly attached shadow (not yet rebased/acked)."""
        self._pending_rebase[state.key] = state
        self._ack_queue.append((state.last_ack_time, state))

    def discard(self, state: Any) -> None:
        """Drop a reaped shadow from every view.  Ack-queue entries are
        invalidated lazily via ``state.closed`` rather than searched."""
        self._retx_pending.pop(state.key, None)
        self._gapped.pop(state.key, None)
        self._pending_rebase.pop(state.key, None)

    # -- ack schedule (§4.3) ---------------------------------------------------
    def note_acked(self, state: Any) -> None:
        """Record that ``state`` was just acked at ``state.last_ack_time``
        (a fresh queue entry; any older entry turns stale)."""
        self._ack_queue.append((state.last_ack_time, state))

    def requeue_unready(self, state: Any) -> None:
        """Put a due-but-unsynchronized state back so the next tick
        re-examines it (its last-ack time is unchanged).

        Front, not back: the entry's timestamp predates everything else
        in the queue (it was just popped as due), and appending it at the
        tail would hide it behind newer, not-yet-due entries — the pop
        loop stops at the first not-due head."""
        self._ack_queue.appendleft((state.last_ack_time, state))

    def ack_due(self, now: float, sync_time: float) -> List[Any]:
        """Pop and return the states whose SyncTime has expired.

        Stale entries (superseded by a later ack) and closed states are
        dropped in passing.  The caller must either ack each returned
        state (which re-enqueues it via :meth:`note_acked`) or hand it
        back through :meth:`requeue_unready` — dropping one on the floor
        would silence its SyncTime forever.
        """
        due: List[Any] = []
        seen: set = set()
        queue = self._ack_queue
        threshold = now - sync_time
        while queue and queue[0][0] <= threshold:
            enqueued_at, state = queue.popleft()
            if state.closed or enqueued_at != state.last_ack_time:
                continue  # reaped, or re-acked since this entry was queued
            key = state.key
            if key in seen:
                continue
            seen.add(key)
            due.append(state)
        return due

    def ack_queue_len(self) -> int:
        """Queue entries including stale ones (tests / introspection)."""
        return len(self._ack_queue)

    # -- outstanding recovery requests (§4.2) ----------------------------------
    def note_retx_pending(self, state: Any) -> None:
        self._retx_pending[state.key] = state

    def clear_retx_pending(self, state: Any) -> None:
        self._retx_pending.pop(state.key, None)

    def retx_pending_states(self) -> List[Any]:
        """States that had a recovery request outstanding, validated
        against ground truth (``pending_retx`` may have been satisfied)."""
        stale = [k for k, s in self._retx_pending.items() if s.closed or s.pending_retx is None]
        for key in stale:
            del self._retx_pending[key]
        return list(self._retx_pending.values())

    # -- gap index (§3.2) ------------------------------------------------------
    def note_gap(self, state: Any) -> None:
        """The tapped primary ACK stream ran ahead of the local shadow."""
        self._gapped[state.key] = state

    def reconcile_gap(self, state: Any) -> None:
        """The local stream advanced: drop the entry once it caught up."""
        target = state.primary_rcv_nxt
        if target is None or state.tcb.rcv_nxt >= target:
            self._gapped.pop(state.key, None)

    def reconcile_batch(self, states: Iterable[Any]) -> None:
        """One index update for a whole dispatch batch of advances.

        The batch datapath defers :meth:`reconcile_gap` per event and
        flushes the deduplicated dirty set here — same end state (the
        gap index is validated against ground truth at every read), one
        walk over the *changed* connections per batch instead of one
        dict probe per tapped segment.
        """
        gapped = self._gapped
        for state in states:
            target = state.primary_rcv_nxt
            if target is None or state.tcb.rcv_nxt >= target:
                gapped.pop(state.key, None)

    def gaps(self) -> List[Tuple[ConnKey, int, int]]:
        """``(key, local rcv_nxt, primary rcv_nxt)`` for every connection
        the primary had out-received — exactly the §3.2 takeover gaps."""
        out: List[Tuple[ConnKey, int, int]] = []
        stale: List[ConnKey] = []
        for key, state in self._gapped.items():
            target = state.primary_rcv_nxt
            if state.closed or target is None or state.tcb.rcv_nxt >= target:
                stale.append(key)
                continue
            out.append((key, state.tcb.rcv_nxt, target))
        for key in stale:
            del self._gapped[key]
        return out

    # -- ISN-rebase / convergence (§4.1) ---------------------------------------
    def note_rebased(self, state: Any) -> None:
        self._pending_rebase.pop(state.key, None)

    def pending_rebase_states(self) -> List[Any]:
        return list(self._pending_rebase.values())

    def pending_rebase_count(self) -> int:
        return len(self._pending_rebase)

    # -- sizes (gauges / tests) ------------------------------------------------
    def sizes(self) -> Dict[str, int]:
        return {
            "ack_queue": len(self._ack_queue),
            "retx_pending": len(self._retx_pending),
            "gapped": len(self._gapped),
            "pending_rebase": len(self._pending_rebase),
        }


def brute_force_gaps(states: Iterable[Any]) -> List[Tuple[ConnKey, int, int]]:
    """The O(all-connections) gap scan the index replaces — kept as the
    oracle for the differential/hypothesis tests."""
    gaps: List[Tuple[ConnKey, int, int]] = []
    for state in states:
        target = state.primary_rcv_nxt
        if not state.closed and target is not None and target > state.tcb.rcv_nxt:
            gaps.append((state.key, state.tcb.rcv_nxt, target))
    return gaps

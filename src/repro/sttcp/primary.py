"""The primary-side ST-TCP engine (§4.2–4.4).

Responsibilities:

* attach a :class:`SecondReceiveBuffer` to every service connection so
  client bytes survive until the backups acknowledge them;
* serve the UDP channel: release retained bytes on BACKUP_ACKs (answering
  each, which doubles as a heartbeat), and answer RETX_REQUESTs from the
  retained + unread receive data;
* send periodic heartbeats and monitor each backup's liveness, dropping
  to non-fault-tolerant mode when the *last* backup dies.

The paper's design allows "one or more backup servers" (§3); with several
backups a retained byte is only discarded once **every live backup** has
acknowledged it, and the loss of one backup merely shrinks the ack set.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.addresses import IPAddress
from repro.sttcp.config import STTCPConfig
from repro.sttcp.failure_detector import HeartbeatMonitor, heartbeats_sent_counter
from repro.sttcp.messages import (
    AckReply,
    BackupAck,
    ChannelMessage,
    ConnKey,
    ConnSnapshot,
    Heartbeat,
    RetxData,
    RetxRequest,
    SyncDone,
    SyncRequest,
    conn_key,
)
from repro.sttcp.retention import SecondReceiveBuffer
from repro.sttcp.shadow import ShadowExtension
from repro.tcp.constants import TCPState
from repro.tcp.seqspace import unwrap, wrap
from repro.tcp.tcb import TCPConnection
from repro.tcp.timers import RestartableTimer

#: Payload ceiling per RETX_DATA chunk (fits one Ethernet frame).
RETX_CHUNK = 1400


class _PrimaryConnState:
    """Per-connection bookkeeping on the primary."""

    __slots__ = ("tcb", "retention", "acked_by")

    def __init__(self, tcb: TCPConnection, retention: SecondReceiveBuffer) -> None:
        self.tcb = tcb
        self.retention = retention
        #: backup channel IP value → highest acked receive-stream offset.
        self.acked_by: Dict[int, int] = {}


class STTCPPrimary:
    """Primary-side protocol engine for one service endpoint."""

    def __init__(
        self,
        host: Any,
        service_ip: IPAddress,
        service_port: int,
        backup_ip: Union[IPAddress, Iterable[IPAddress]],
        config: Optional[STTCPConfig] = None,
        channel: Optional[Any] = None,
        backup_hosts: Optional[Dict[int, Any]] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.service_ip = service_ip
        self.service_port = service_port
        if isinstance(backup_ip, IPAddress):
            self.backup_ips: List[IPAddress] = [backup_ip]
        else:
            self.backup_ips = list(backup_ip)
        if not self.backup_ips:
            raise ValueError("at least one backup address is required")
        self.config = config or STTCPConfig()
        self.config.validate()
        self.fault_tolerant = True
        self.backup_failed_at: Optional[float] = None
        #: backup channel-IP value → Host, when known (lets the failure
        #: detector classify false suspicions against actual liveness).
        self.backup_hosts: Dict[int, Any] = dict(backup_hosts or {})
        self._connections: Dict[ConnKey, _PrimaryConnState] = {}
        #: requester channel-IP value → in-progress snapshot handoff.
        self._sync_sessions: Dict[int, Dict[str, Any]] = {}
        self._hb_sequence = 0
        self._started = False
        # Channel socket on the primary's own (non-virtual) address.  A
        # promoted backup already owns a channel socket on this port; in
        # that case the engine is handed the existing one — explicitly
        # via ``channel`` (clusters, where one host runs several
        # engines on distinct ports), or through the host-level stash.
        if channel is not None and not channel.closed:
            self.channel = channel
        else:
            existing = getattr(host, "_sttcp_channel_socket", None)
            if (
                existing is not None
                and not existing.closed
                and existing.port == self.config.channel_port
            ):
                self.channel = existing
            else:
                self.channel = host.udp.socket(self.config.channel_port)
                host._sttcp_channel_socket = self.channel
        self.channel.on_datagram = self._on_channel_message
        self._hb_timer = RestartableTimer(self.sim, self._send_heartbeat, "primary-hb")
        self.backup_monitors: Dict[int, HeartbeatMonitor] = {}
        for ip_addr in self.backup_ips:
            self.backup_monitors[ip_addr.value] = self._make_monitor(ip_addr)
        host.tcp.connection_observers.append(self._on_new_connection)
        host.tcp.close_observers.append(self._on_connection_closed)
        self._c_hb_sent = heartbeats_sent_counter(self.sim)
        # Registry-backed counters (scoped <host>.sttcp.*); the read-only
        # properties below preserve the historical attribute API.
        metrics = self.sim.metrics.scope(f"{host.name}.sttcp")
        self._c_acks_received = metrics.counter("acks_received")
        self._c_retx_requests_served = metrics.counter("retx_requests_served")
        self._c_retx_bytes_sent = metrics.counter("retx_bytes_sent")
        self._c_retained_reaped = metrics.counter("retention_states_reaped")
        self._g_retained = metrics.gauge("retained_connections")
        #: Open fault-tolerant-mode span id (start → last backup lost).
        self._ft_sid: Optional[int] = None

    @property
    def acks_received(self) -> int:
        return self._c_acks_received.value

    @property
    def retx_requests_served(self) -> int:
        return self._c_retx_requests_served.value

    @property
    def retx_bytes_sent(self) -> int:
        return self._c_retx_bytes_sent.value

    def _make_monitor(self, ip_addr: IPAddress) -> HeartbeatMonitor:
        return HeartbeatMonitor(
            self.sim,
            self.config.hb_interval,
            self.config.hb_miss_threshold,
            lambda value=ip_addr.value: self._on_backup_suspected(value),
            name=f"{self.host.name}.backup-monitor.{ip_addr}",
            jitter=self.config.hb_jitter,
            peer_host=self.backup_hosts.get(ip_addr.value),
        )

    # Lifecycle --------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating and monitoring the backups."""
        if self._started:
            return
        self._started = True
        if self.sim.trace.enabled_for("sttcp"):
            self._ft_sid = self.sim.trace.begin_span(
                self.sim.now, "sttcp", "fault_tolerant", backups=len(self.backup_ips)
            )
        for monitor in self.backup_monitors.values():
            monitor.start()
        self._hb_timer.start(self.config.hb_interval)

    def stop(self) -> None:
        self._started = False
        self._hb_timer.stop()
        for monitor in self.backup_monitors.values():
            monitor.stop()

    # Backup-set queries ---------------------------------------------------------------
    def live_backup_values(self) -> List[int]:
        return [
            value
            for value, monitor in self.backup_monitors.items()
            if not monitor.suspected
        ]

    # Connection hook -----------------------------------------------------------------
    def _on_new_connection(self, tcb: TCPConnection) -> None:
        if ShadowExtension.of(tcb) is not None:
            # A shadow replica on this host (promoted-backup topologies):
            # retention belongs to live primaries only.
            return
        if tcb.local_ip != self.service_ip or tcb.local_port != self.service_port:
            return
        capacity = self.config.second_buffer_size or tcb.config.rcv_buffer
        retention = SecondReceiveBuffer(capacity)
        if not self.fault_tolerant:
            retention.disable()
        tcb.recv_buffer.retention = retention
        self._connections[conn_key(tcb.remote_ip, tcb.remote_port)] = _PrimaryConnState(
            tcb, retention
        )
        self._g_retained.value = len(self._connections)
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "primary_attach",
                client=f"{tcb.remote_ip}:{tcb.remote_port}",
            )

    def _on_connection_closed(self, tcb: TCPConnection) -> None:
        """Close observer: the TCP layer reaped a TCB; drop the retention
        state with it so churning clients don't accumulate dead buffers."""
        key = conn_key(tcb.remote_ip, tcb.remote_port)
        state = self._connections.get(key)
        if state is None or state.tcb is not tcb:
            return
        del self._connections[key]
        self._c_retained_reaped.value += 1
        self._g_retained.value = len(self._connections)

    def adopt_connection(self, tcb: TCPConnection) -> None:
        """Attach retention to a live connection (a promoted backup's
        former shadow): the second buffer starts at the connection's
        current read position."""
        if not tcb.is_synchronized:
            return
        capacity = self.config.second_buffer_size or tcb.config.rcv_buffer
        retention = SecondReceiveBuffer(capacity)
        retention.prime_at(tcb.recv_buffer.read_offset)
        if not self.fault_tolerant:
            retention.disable()
        tcb.recv_buffer.retention = retention
        self._connections[conn_key(tcb.remote_ip, tcb.remote_port)] = _PrimaryConnState(
            tcb, retention
        )
        self._g_retained.value = len(self._connections)

    def connection_state(self, key: ConnKey) -> Optional[_PrimaryConnState]:
        return self._connections.get(key)

    @property
    def retained_connection_count(self) -> int:
        return len(self._connections)

    @property
    def retention_states_reaped(self) -> int:
        return self._c_retained_reaped.value

    # Heartbeats -----------------------------------------------------------------------
    def _send_heartbeat(self) -> None:
        if not self._started or not self.host.is_up:
            return
        self._hb_sequence += 1
        message = Heartbeat("primary", self._hb_sequence)
        for ip_addr in self.backup_ips:
            monitor = self.backup_monitors[ip_addr.value]
            if not monitor.suspected:
                self._send(message, ip_addr)
                self._c_hb_sent.inc()
        self._hb_timer.start(self.config.hb_interval)

    def _send(self, message: ChannelMessage, target: IPAddress) -> None:
        self.channel.send_to((target, self.config.channel_port), message, message.wire_size)

    # Channel input -----------------------------------------------------------------------
    def _on_channel_message(self, message: Any, addr: Tuple[IPAddress, int]) -> None:
        if not self.host.is_up:
            return
        source_value = addr[0].value
        monitor = self.backup_monitors.get(source_value)
        if monitor is not None:
            monitor.heard()
        if isinstance(message, BackupAck):
            self._handle_backup_ack(message, addr[0])
        elif isinstance(message, RetxRequest):
            self._handle_retx_request(message, addr[0])
        elif isinstance(message, SyncRequest):
            self._begin_sync(message, addr[0])
        # Heartbeats carry liveness only.

    def _handle_backup_ack(self, ack: BackupAck, source: IPAddress) -> None:
        self._c_acks_received.value += 1
        state = self._connections.get(ack.key)
        if state is not None:
            tcb = state.tcb
            ack_abs = unwrap(ack.ack_seq, tcb.rcv_nxt)
            offset = tcb._rcv_offset(ack_abs)
            previous = state.acked_by.get(source.value, 0)
            if offset > previous:
                state.acked_by[source.value] = offset
            freed = self._release_retained(state)
            if freed and tcb.is_synchronized:
                # Window may have been pinched by retention overflow;
                # releasing bytes can reopen it.
                tcb._maybe_send_window_update(0)
        # The reply doubles as the primary→backup heartbeat (§4.3).
        self._send(AckReply(ack.key, ack.ack_seq), source)

    def _release_retained(self, state: _PrimaryConnState) -> int:
        """Discard retained bytes every *live* backup has acknowledged."""
        live = self.live_backup_values()
        if not live:
            return 0
        floor = min(state.acked_by.get(value, 0) for value in live)
        return state.retention.backup_acked(floor)

    def _handle_retx_request(self, request: RetxRequest, source: IPAddress) -> None:
        state = self._connections.get(request.key)
        if state is None:
            return
        tcb = state.tcb
        start_abs = unwrap(request.start_seq, tcb.rcv_nxt)
        stop_abs = unwrap(request.stop_seq, tcb.rcv_nxt)
        if stop_abs <= start_abs:
            return
        start_offset = tcb._rcv_offset(start_abs)
        stop_offset = tcb._rcv_offset(stop_abs)
        data = tcb.fetch_received_range(start_offset, stop_offset)
        if len(data) == 0:
            return
        self._c_retx_requests_served.value += 1
        # Chunk into frame-sized RETX_DATA messages.
        for piece_start in range(0, len(data), RETX_CHUNK):
            piece = data.slice(piece_start, min(piece_start + RETX_CHUNK, len(data)))
            seq32 = (start_abs + piece_start) & 0xFFFFFFFF
            self._c_retx_bytes_sent.value += len(piece)
            self._send(RetxData(request.key, seq32, piece), source)

    # Snapshot handoff (cluster election) ------------------------------------------------
    def _quiescent(self, tcb: TCPConnection) -> bool:
        """True when the connection's transferable state is fully captured
        by its two stream offsets: nothing in flight, nothing buffered on
        either side, nothing the app has not read."""
        return (
            tcb.state is TCPState.ESTABLISHED
            and tcb.flight_size == 0
            and len(tcb.send_buffer) == 0
            and tcb.recv_buffer.available == 0
            and tcb.recv_buffer.out_of_order_bytes == 0
        )

    def _begin_sync(self, request: SyncRequest, source: IPAddress) -> None:
        """A new backup asks for the connections it is not yet shadowing."""
        known = set(request.known_keys)
        pending = [key for key in self._connections if key not in known]
        self._sync_sessions[source.value] = {"ip": source, "pending": pending, "sent": 0}
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now, "sttcp", "sync_begin", backup=str(source), missing=len(pending)
            )
        self._continue_sync(source.value)

    def _continue_sync(self, source_value: int) -> None:
        """Snapshot every *quiescent* pending connection; busy ones retry.

        A request/response service is quiescent between exchanges, so a
        retry tick or two drains the whole set; connections that close
        meanwhile simply drop out of the pending list.
        """
        session = self._sync_sessions.get(source_value)
        if session is None or not self._started or not self.host.is_up:
            return
        source: IPAddress = session["ip"]
        still: List[ConnKey] = []
        for key in session["pending"]:
            state = self._connections.get(key)
            if state is None:
                continue  # closed while the handoff was in progress
            tcb = state.tcb
            if not self._quiescent(tcb):
                still.append(key)
                continue
            self._send(
                ConnSnapshot(
                    key,
                    wrap(tcb.irs),
                    wrap(tcb.iss),
                    tcb.recv_buffer.rcv_nxt_offset,
                    tcb.buffers.snd_offset(tcb.snd_una),
                    tcb.snd_wnd,
                ),
                source,
            )
            session["sent"] += 1
        if still:
            session["pending"] = still
            self.sim.schedule(
                self.config.retx_request_timeout,
                lambda: self._continue_sync(source_value),
            )
            return
        del self._sync_sessions[source_value]
        self._send(SyncDone(session["sent"]), source)
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "sync_done",
                backup=str(source),
                snapshots=session["sent"],
            )

    # Backup replacement (cluster election) ----------------------------------------------
    def replace_backup(
        self, old_ip: IPAddress, new_ip: IPAddress, new_host: Optional[Any] = None
    ) -> None:
        """Swap a consumed backup for a freshly elected one.

        The old backup's monitor and ack floor are dropped; the new one
        gets a full detection grace period.  If losing the old backup had
        already pushed the engine into non-fault-tolerant mode, retention
        re-arms from each connection's current read position — history
        the new backup never saw is unprotectable either way, and the
        snapshot handoff starts it at the current offsets.
        """
        old_value = old_ip.value
        monitor = self.backup_monitors.pop(old_value, None)
        if monitor is not None:
            monitor.stop()
        self.backup_ips = [addr for addr in self.backup_ips if addr.value != old_value]
        self.backup_hosts.pop(old_value, None)
        if new_host is not None:
            self.backup_hosts[new_ip.value] = new_host
        self.backup_ips.append(new_ip)
        for state in self._connections.values():
            state.acked_by.pop(old_value, None)
        new_monitor = self._make_monitor(new_ip)
        self.backup_monitors[new_ip.value] = new_monitor
        if self._started:
            new_monitor.start()
            if not self._hb_timer.running:
                self._hb_timer.start(self.config.hb_interval)
        if not self.fault_tolerant:
            self._reenter_fault_tolerant()
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "backup_replaced",
                old=str(old_ip),
                new=str(new_ip),
            )

    def _reenter_fault_tolerant(self) -> None:
        self.fault_tolerant = True
        self.backup_failed_at = None
        for state in self._connections.values():
            if not state.retention.enabled:
                retention = SecondReceiveBuffer(state.retention.capacity)
                retention.prime_at(state.tcb.recv_buffer.read_offset)
                state.retention = retention
                state.tcb.recv_buffer.retention = retention
        if self.sim.trace.enabled_for("sttcp"):
            self._ft_sid = self.sim.trace.begin_span(
                self.sim.now, "sttcp", "fault_tolerant", backups=len(self.backup_ips)
            )

    # Backup failure ---------------------------------------------------------------------
    def _on_backup_suspected(self, backup_value: int) -> None:
        """One backup died: shrink the ack set; if it was the last, drop
        to non-fault-tolerant mode (§4.4)."""
        if not self.host.is_up:
            return
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now, "sttcp", "backup_suspected", remaining=len(self.live_backup_values())
            )
        if self.live_backup_values():
            # Survivors may have acked further than the dead backup did.
            for state in self._connections.values():
                freed = self._release_retained(state)
                if freed and state.tcb.is_synchronized:
                    state.tcb._maybe_send_window_update(0)
            return
        self.fault_tolerant = False
        self.backup_failed_at = self.sim.now
        for state in self._connections.values():
            state.retention.disable()
            if state.tcb.is_synchronized:
                state.tcb._maybe_send_window_update(0)
        self._hb_timer.stop()
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(self.sim.now, "sttcp", "non_fault_tolerant_mode")
        if self._ft_sid is not None:
            self.sim.trace.end_span(
                self.sim.now, "sttcp", "fault_tolerant", self._ft_sid
            )
            self._ft_sid = None

"""The controllable power switch (§3.2, §4.4).

ST-TCP requires a *perfect* failure detector: the backup must never take
over while the primary still serves the client, or both would transmit on
the same connection.  The paper's remedy is physical: "if the backup
suspects the primary, it switches off the power of the primary", making
the suspicion true before it is acted on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class PowerSwitch:
    """A remote-controlled power relay for one or more hosts."""

    def __init__(self, sim: Any, actuation_delay: float = 0.010) -> None:
        if actuation_delay < 0:
            raise ValueError(f"negative actuation delay {actuation_delay}")
        self.sim = sim
        self.actuation_delay = actuation_delay
        self.cuts_performed = 0

    def cut_power(self, host: Any, done: Optional[Callable[[], None]] = None) -> None:
        """Crash ``host`` after the relay actuates, then call ``done``.

        Idempotent: cutting power to an already-crashed host still invokes
        ``done`` after the actuation delay (the backup cannot tell, and
        must not care, whether the primary was already dead).
        """
        def actuate() -> None:
            self.cuts_performed += 1
            if host.is_up:
                host.crash()
            if self.sim.trace.enabled_for("sttcp"):
                self.sim.trace.emit(self.sim.now, "sttcp", "stonith", host=host.name)
            if done is not None:
                done()

        self.sim.schedule(self.actuation_delay, actuate)

"""N:K shadowing: one pool backup host shadowing several primaries.

The paper's testbed is one primary, one backup, one service.  A cluster
pool backup instead runs one :class:`~repro.sttcp.backup.STTCPBackup`
engine *per shadowed primary* — each with its own service identity
(service IP + port), its own UDP channel port, and its own failure
detector.  The engines coexist on one host because every per-engine hook
(connection observer, IP tap, channel socket) filters on its own service
address; this manager owns the set and the lifecycle transitions the
cluster layer needs:

* **takeover** — when one engine goes active its host is *consumed*: it
  is now a primary and can no longer shadow anyone.  The manager
  surfaces the event (synchronously, inside the takeover) through
  :attr:`on_takeover` so the election layer can retire the sibling
  engines and elect a replacement backup in the same simulation instant,
  leaving no event window in which a consumed backup still taps other
  primaries.
* **retirement** — :meth:`retire_service` stands an engine down and runs
  the topology-supplied detach hook (close the service listener, drop
  the service VNIC, leave the tap multicast groups) so the retired host
  stops receiving — and can never RST — traffic for services it no
  longer shadows.

The manager deliberately knows nothing about switches, VNICs, or
elections: those belong to ``repro.cluster`` (which layers on this
module, never the reverse).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.net.addresses import IPAddress
from repro.sttcp.backup import ROLE_ACTIVE, STTCPBackup
from repro.sttcp.config import STTCPConfig
from repro.sttcp.power_switch import PowerSwitch


class ShadowedService:
    """One shadowed primary, as seen from the pool backup host."""

    __slots__ = (
        "name",
        "service_ip",
        "service_port",
        "primary_ip",
        "primary_host",
        "config",
        "engine",
        "on_retire",
    )

    def __init__(
        self,
        name: str,
        service_ip: IPAddress,
        service_port: int,
        primary_ip: IPAddress,
        primary_host: Optional[Any],
        config: STTCPConfig,
        engine: STTCPBackup,
        on_retire: Optional[Callable[["ShadowedService"], None]],
    ) -> None:
        self.name = name
        self.service_ip = service_ip
        self.service_port = service_port
        self.primary_ip = primary_ip
        self.primary_host = primary_host
        self.config = config
        self.engine = engine
        self.on_retire = on_retire

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShadowedService {self.name} {self.service_ip}:{self.service_port}>"


class MultiPrimaryShadowManager:
    """The set of backup engines one pool host runs (N:K shadowing)."""

    def __init__(self, host: Any) -> None:
        self.host = host
        self.sim = host.sim
        self.services: Dict[str, ShadowedService] = {}
        #: Election hook: fired (synchronously, inside the takeover event)
        #: when one of the managed engines completes a takeover.
        self.on_takeover: Optional[Callable[[str, ShadowedService], None]] = None
        self._started = False

    # Assembly ---------------------------------------------------------------------
    def add_service(
        self,
        name: str,
        service_ip: IPAddress,
        service_port: int,
        primary_ip: IPAddress,
        config: STTCPConfig,
        primary_host: Optional[Any] = None,
        power_switch: Optional[PowerSwitch] = None,
        on_retire: Optional[Callable[[ShadowedService], None]] = None,
    ) -> ShadowedService:
        """Start shadowing one more primary from this host.

        ``config.channel_port`` must be unique per service on this host —
        each engine owns its own UDP channel socket.
        """
        if name in self.services:
            raise ConfigurationError(f"service {name!r} already shadowed on {self.host.name}")
        for existing in self.services.values():
            if existing.config.channel_port == config.channel_port:
                raise ConfigurationError(
                    f"channel port {config.channel_port} already used by "
                    f"service {existing.name!r} on {self.host.name}"
                )
        engine = STTCPBackup(
            self.host,
            service_ip,
            service_port,
            primary_ip,
            config,
            primary_host=primary_host,
            power_switch=power_switch,
        )
        record = ShadowedService(
            name, service_ip, service_port, primary_ip, primary_host, config, engine, on_retire
        )
        engine.on_takeover = lambda _engine, service=name: self._engine_took_over(service)
        self.services[name] = record
        if self._started:
            engine.start()
        return record

    def start(self) -> None:
        self._started = True
        for record in self.services.values():
            record.engine.start()

    # Queries ----------------------------------------------------------------------
    def service(self, name: str) -> ShadowedService:
        return self.services[name]

    def engine(self, name: str) -> STTCPBackup:
        return self.services[name].engine

    def shadowed_names(self) -> List[str]:
        return sorted(self.services)

    def siblings_of(self, name: str) -> List[str]:
        """The services orphaned when the engine for ``name`` consumes
        this host by taking over."""
        return sorted(n for n in self.services if n != name)

    @property
    def consumed(self) -> bool:
        """True once any managed engine went active: this host is now a
        primary and cannot shadow."""
        return any(
            record.engine.role is ROLE_ACTIVE for record in self.services.values()
        )

    # Lifecycle transitions -----------------------------------------------------------
    def _engine_took_over(self, name: str) -> None:
        record = self.services.get(name)
        if record is None:
            return
        if self.sim.trace.enabled_for("cluster"):
            self.sim.trace.emit(
                self.sim.now,
                "cluster",
                "backup_consumed",
                host=self.host.name,
                service=name,
                orphaned=len(self.siblings_of(name)),
            )
        if self.on_takeover is not None:
            self.on_takeover(name, record)

    def retire_service(self, name: str) -> Optional[ShadowedService]:
        """Stand the engine for ``name`` down and run its detach hook.

        Returns the retired record, or None if the service was unknown.
        The record is removed from the managed set either way.
        """
        record = self.services.pop(name, None)
        if record is None:
            return None
        record.engine.retire()
        if record.on_retire is not None:
            record.on_retire(record)
        return record

    def release_service(self, name: str) -> Optional[ShadowedService]:
        """Drop a record without retiring its engine (the engine went
        active and lives on as a primary)."""
        return self.services.pop(name, None)

"""Multi-backup ST-TCP deployments (§3: "one or more backup servers").

A :class:`STTCPServerGroup` runs one primary and N ranked active backups:

* every backup shadows every connection, and the primary only discards a
  retained byte once **all live backups** acknowledged it;
* on a primary crash the lowest-ranked live backup takes over (rank i
  defers by i × ``takeover_grace`` and stands down when it hears the new
  primary's heartbeat);
* the winner *promotes* itself to a full primary — retention attached to
  the adopted connections, heartbeats to the remaining backups — so the
  service stays fault-tolerant and can survive **cascading** failures.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.net.addresses import IPAddress
from repro.sttcp.backup import ROLE_ACTIVE, STTCPBackup
from repro.sttcp.config import STTCPConfig
from repro.sttcp.manager import FailoverMetrics
from repro.sttcp.power_switch import PowerSwitch
from repro.sttcp.primary import STTCPPrimary


class STTCPServerGroup:
    """A deployed primary + N-backup ST-TCP service."""

    def __init__(
        self,
        primary_host: Any,
        backup_hosts: List[Any],
        service_ip: IPAddress,
        service_port: int,
        config: Optional[STTCPConfig] = None,
        power_switch: Optional[PowerSwitch] = None,
        logger_clients: Optional[List[Any]] = None,
    ) -> None:
        if not backup_hosts:
            raise ConfigurationError("a server group needs at least one backup")
        hosts = [primary_host] + backup_hosts
        for host in hosts:
            if host.sim is not primary_host.sim:
                raise ConfigurationError("all group members must share a simulator")
            if service_ip not in host.local_ips():
                raise ConfigurationError(
                    f"service IP {service_ip} not configured on {host.name}"
                )
        self.sim = primary_host.sim
        self.primary_host = primary_host
        self.backup_hosts = list(backup_hosts)
        self.service_ip = service_ip
        self.service_port = service_port
        self.config = config or STTCPConfig()
        loggers = logger_clients or [None] * len(backup_hosts)
        backup_channel_ips = [host.interfaces[0].ip for host in backup_hosts]
        host_by_channel_ip = {
            address.value: host
            for address, host in zip(backup_channel_ips, backup_hosts)
        }
        primary_channel_ip = primary_host.interfaces[0].ip
        self.primary_engine = STTCPPrimary(
            primary_host, service_ip, service_port, backup_channel_ips, self.config
        )
        self.backup_engines: List[STTCPBackup] = []
        for rank, host in enumerate(backup_hosts):
            host.arp.suppress_ip(service_ip)
            peers = [
                address
                for index, address in enumerate(backup_channel_ips)
                if index != rank
            ]
            engine = STTCPBackup(
                host,
                service_ip,
                service_port,
                primary_channel_ip,
                dataclasses.replace(self.config),
                primary_host=primary_host,
                power_switch=power_switch,
                logger_client=loggers[rank],
                rank=rank,
                peer_backup_ips=peers,
                peer_hosts=host_by_channel_ip,
            )
            self.backup_engines.append(engine)
        self._server_processes: list = []

    # Convenience: single-backup compatibility ----------------------------------
    @property
    def backup_engine(self) -> STTCPBackup:
        return self.backup_engines[0]

    def start_service(self, service_time: float = 0.0) -> None:
        """Launch the (identical) server application on every replica and
        start all protocol engines."""
        from repro.apps.server import start_server

        for host in [self.primary_host] + self.backup_hosts:
            self._server_processes.append(
                start_server(host, self.service_port, service_time=service_time)
            )
        self.primary_engine.start()
        for engine in self.backup_engines:
            engine.start()

    @property
    def failed_over(self) -> bool:
        return any(engine.role is ROLE_ACTIVE for engine in self.backup_engines)

    @property
    def active_engine(self) -> Optional[STTCPBackup]:
        """The backup engine currently serving as primary, if any.

        An engine that took over and then crashed itself no longer
        counts — the service moved on to a lower-ranked survivor.
        """
        for engine in reversed(self.backup_engines):
            if engine.role is ROLE_ACTIVE and engine.host.is_up:
                return engine
        return None

    @property
    def active_host(self) -> Any:
        """Whichever host currently serves the virtual IP."""
        engine = self.active_engine
        return engine.host if engine is not None else self.primary_host

    def failover_metrics(self) -> FailoverMetrics:
        engine = self.active_engine or self.backup_engines[0]
        return FailoverMetrics(
            primary_crashed_at=self.primary_host.crashed_at,
            suspected_at=engine.detection_time,
            takeover_at=engine.takeover_time,
            degraded_connections=len(engine.degraded_connections),
        )

"""The backup-side ST-TCP engine: tapping, shadowing, failover (§3–§5).

The backup:

* turns every passive open into a *shadow* connection (suppressed output,
  ISN synchronisation) while running the unmodified server application;
* observes the tapped primary→client stream to learn how far the primary's
  receive state has advanced — any client bytes the primary ACKed that the
  backup failed to tap are requested back over the UDP channel (§4.2);
* acknowledges received client bytes to the primary with the X / SyncTime
  strategy (§4.3);
* monitors heartbeats and, on suspicion, power-switches the primary and
  takes the connections over — making itself indistinguishable from the
  primary to the client (§4.4, §5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.ip.datagram import PROTO_TCP, IPDatagram
from repro.net.addresses import IPAddress
from repro.net.nic import NIC
from repro.sttcp.config import STTCPConfig
from repro.sttcp.failure_detector import HeartbeatMonitor, heartbeats_sent_counter
from repro.sttcp.indexes import BackupConnectionIndex
from repro.sttcp.messages import (
    BackupAck,
    ChannelMessage,
    ConnKey,
    ConnSnapshot,
    Heartbeat,
    RetxData,
    RetxRequest,
    SyncDone,
    SyncRequest,
    conn_key,
)
from repro.sttcp.power_switch import PowerSwitch
from repro.sttcp.shadow import ShadowExtension
from repro.tcp.constants import FLAG_ACK, TCPState
from repro.tcp.segment import TCPSegment
from repro.tcp.seqspace import unwrap, wrap
from repro.tcp.tcb import TCPConnection
from repro.tcp.timers import RestartableTimer

ROLE_PASSIVE = "passive"
ROLE_TAKING_OVER = "taking_over"
ROLE_ACTIVE = "active"
ROLE_RETIRED = "retired"


class _ShadowConnState:
    """Per-connection bookkeeping on the backup."""

    __slots__ = (
        "tcb",
        "ext",
        "key",
        "closed",
        "converged",
        "last_acked_offset",
        "last_ack_time",
        "pending_retx",
        "primary_rcv_nxt",
        "primary_snd_nxt",
        "convergence_sid",
    )

    def __init__(self, tcb: TCPConnection, ext: ShadowExtension, now: float) -> None:
        self.tcb = tcb
        self.ext = ext
        self.key: ConnKey = conn_key(tcb.remote_ip, tcb.remote_port)
        self.closed = False  # reaped; invalidates lazy index entries
        self.converged = False  # rebased + synchronized at least once
        self.last_acked_offset = 0  # LastByteAcked (as a stream offset)
        self.last_ack_time = now
        self.pending_retx: Optional[tuple] = None  # (start_abs, stop_abs, at)
        self.primary_rcv_nxt: Optional[int] = None  # abs, from tapped ACKs
        self.primary_snd_nxt: Optional[int] = None  # abs, from tapped data
        #: Open shadow_convergence span id (None once converged/untraced).
        self.convergence_sid: Optional[int] = None


class STTCPBackup:
    """Backup-side protocol engine for one service endpoint."""

    def __init__(
        self,
        host: Any,
        service_ip: IPAddress,
        service_port: int,
        primary_ip: IPAddress,
        config: Optional[STTCPConfig] = None,
        primary_host: Optional[Any] = None,
        power_switch: Optional[PowerSwitch] = None,
        logger_client: Optional[Any] = None,
        rank: int = 0,
        peer_backup_ips: Optional[List[IPAddress]] = None,
        peer_hosts: Optional[Dict[int, Any]] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.service_ip = service_ip
        self.service_port = service_port
        self.primary_ip = primary_ip
        self.primary_host = primary_host
        self.power_switch = power_switch
        self.logger_client = logger_client
        self.config = config or STTCPConfig()
        self.config.validate()
        self.rank = rank
        self.peer_backup_ips = list(peer_backup_ips or [])
        #: channel-IP value → host, so an adopted primary can be STONITHed.
        self.peer_hosts: Dict[int, Any] = dict(peer_hosts or {})
        self.promoted_primary: Optional[Any] = None
        self._deferred_takeover = None
        self.role = ROLE_PASSIVE
        self.detection_time: Optional[float] = None
        self.takeover_time: Optional[float] = None
        self.degraded_connections: List[ConnKey] = []
        self._connections: Dict[ConnKey, _ShadowConnState] = {}
        #: Incrementally maintained views (ack schedule, gaps, pending
        #: rebase, outstanding recovery) — the per-event paths below never
        #: walk ``_connections``; only takeover-time code does.
        self._index = BackupConnectionIndex()
        #: Batch datapath: stream advances mark their state dirty here
        #: and the gap index reconciles once per dispatch batch (and
        #: before every ``gaps()`` read) instead of once per tapped
        #: segment.  The object arm reconciles inline, per event.
        self._gap_dirty: Dict[ConnKey, _ShadowConnState] = {}
        self._batched_tap = self.sim.batch_dispatch
        if self._batched_tap:
            self.sim.add_batch_hook(self._flush_gap_reconcile)
        self._hb_sequence = 0
        self._started = False
        # Backups answer nothing on their own: no RSTs for unmatched
        # tapped segments, no ARP for the (suppressed) service IP.
        host.tcp.reset_on_unmatched = False
        host.tcp.connection_observers.append(self._on_passive_open)
        host.tcp.close_observers.append(self._on_shadow_closed)
        host.ip_layer.add_tap(self._on_tapped_datagram)
        self.channel = host.udp.socket(self.config.channel_port)
        host._sttcp_channel_socket = self.channel
        self.channel.on_datagram = self._on_channel_message
        self.primary_monitor = HeartbeatMonitor(
            self.sim,
            self.config.hb_interval,
            self.config.hb_miss_threshold,
            self._on_primary_suspected,
            name=f"{host.name}.primary-monitor",
            jitter=self.config.hb_jitter,
            peer_host=primary_host,
        )
        self._sync_timer = RestartableTimer(self.sim, self._on_sync_tick, "backup-sync")
        self._hb_timer = RestartableTimer(self.sim, self._send_heartbeat, "backup-hb")
        #: Election hooks: fired when this engine completes a takeover /
        #: when a requested snapshot handoff finishes.
        self.on_takeover: Optional[Callable[["STTCPBackup"], None]] = None
        self.on_sync_done: Optional[Callable[["STTCPBackup"], None]] = None
        self.sync_requested_at: Optional[float] = None
        self.sync_done_at: Optional[float] = None
        # Registry-backed counters (scoped <host>.sttcp.*); the read-only
        # properties below preserve the historical attribute API.
        metrics = self.sim.metrics.scope(f"{host.name}.sttcp")
        self._c_acks_sent = metrics.counter("acks_sent")
        self._c_retx_requests_sent = metrics.counter("retx_requests_sent")
        self._c_retx_bytes_recovered = metrics.counter("retx_bytes_recovered")
        self._c_logger_bytes_recovered = metrics.counter("logger_bytes_recovered")
        self._c_snapshots_adopted = metrics.counter("snapshots_adopted")
        self._c_shadows_reaped = metrics.counter("shadows_reaped")
        self._c_hb_sent = heartbeats_sent_counter(self.sim)
        self._g_shadows = metrics.gauge("shadows")
        self._g_pending_rebase = metrics.gauge("shadows_pending_rebase")
        #: Open takeover-episode span id (suspicion → active role).
        self._takeover_sid: Optional[int] = None
        #: Causal-chain id of the failover in progress: allocated at
        #: suspicion, carried on the takeover-episode span, and set as
        #: the tracer's dynamic flow context around the STONITH request
        #: and the takeover completion so the arbiter fence, the election
        #: and the first-ack probes join the same chain.
        self._failover_flow: Optional[int] = None

    @property
    def acks_sent(self) -> int:
        return self._c_acks_sent.value

    @property
    def retx_requests_sent(self) -> int:
        return self._c_retx_requests_sent.value

    @property
    def retx_bytes_recovered(self) -> int:
        return self._c_retx_bytes_recovered.value

    @property
    def logger_bytes_recovered(self) -> int:
        return self._c_logger_bytes_recovered.value

    @property
    def shadow_count(self) -> int:
        return len(self._connections)

    @property
    def shadows_reaped(self) -> int:
        return self._c_shadows_reaped.value

    @property
    def pending_rebase_count(self) -> int:
        """Shadows not yet re-anchored on the primary's ISN (§4.1) — the
        backup's convergence lag, as a count."""
        return self._index.pending_rebase_count()

    def index_sizes(self) -> Dict[str, int]:
        self._flush_gap_reconcile()
        return self._index.sizes()

    # Lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.primary_monitor.start()
        self._sync_timer.start(self.config.effective_sync_time())
        self._hb_timer.start(self.config.hb_interval)

    def stop(self) -> None:
        self._started = False
        self.primary_monitor.stop()
        self._sync_timer.stop()
        self._hb_timer.stop()

    # Shadow connections -----------------------------------------------------------
    def _on_passive_open(self, tcb: TCPConnection) -> None:
        """Connection observer: shadow every passive open of the service
        endpoint while this host is a passive backup (once active, new
        connections are regular primaries-to-be)."""
        if self.role is not ROLE_PASSIVE:
            return
        if tcb.local_ip != self.service_ip or tcb.local_port != self.service_port:
            return
        ext = ShadowExtension()
        tcb.add_extension(ext)
        state = _ShadowConnState(tcb, ext, self.sim.now)
        self._connections[state.key] = state
        self._index.add(state)
        self._g_shadows.value = len(self._connections)
        self._g_pending_rebase.value = self._index.pending_rebase_count()
        tcb.on_rcv_advance = lambda _rcv, s=state: self._on_stream_advance(s)
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "shadow_attach",
                client=f"{tcb.remote_ip}:{tcb.remote_port}",
            )
            # Converges once the shadow is ESTABLISHED on the primary's ISN.
            state.convergence_sid = self.sim.trace.begin_span(
                self.sim.now,
                "sttcp",
                "shadow_convergence",
                client=f"{tcb.remote_ip}:{tcb.remote_port}",
            )

    @property
    def shadow_connections(self) -> List[TCPConnection]:
        return [state.tcb for state in self._connections.values()]

    def connection_state(self, key: ConnKey) -> Optional[_ShadowConnState]:
        return self._connections.get(key)

    def _on_shadow_closed(self, tcb: TCPConnection) -> None:
        """Close observer: the TCP layer reaped a TCB; drop our shadow
        state too so churning clients don't accumulate dead bookkeeping."""
        state = self._connections.get(conn_key(tcb.remote_ip, tcb.remote_port))
        if state is None or state.tcb is not tcb:
            return
        if state.convergence_sid is not None:
            self.sim.trace.end_span(
                self.sim.now,
                "sttcp",
                "shadow_convergence",
                state.convergence_sid,
                outcome="closed",
            )
            state.convergence_sid = None
        state.closed = True
        del self._connections[state.key]
        self._index.discard(state)
        tcb.on_rcv_advance = None
        self._c_shadows_reaped.value += 1
        self._g_shadows.value = len(self._connections)
        self._g_pending_rebase.value = self._index.pending_rebase_count()

    # Acknowledgment strategy (§4.3) ---------------------------------------------------
    def _ack_threshold(self, tcb: TCPConnection) -> int:
        second_buffer = self.config.second_buffer_size or tcb.config.rcv_buffer
        return max(1, int(self.config.ack_threshold_fraction * second_buffer))

    def _on_stream_advance(self, state: _ShadowConnState) -> None:
        if self.role is not ROLE_PASSIVE:
            return
        tcb = state.tcb
        if not state.converged and state.ext.isn_rebased and tcb.is_synchronized:
            self._note_converged(state)
        # The local stream moved: it may have caught up with the primary.
        if self._batched_tap:
            self._gap_dirty[state.key] = state
        else:
            self._index.reconcile_gap(state)
        received = tcb.recv_buffer.rcv_nxt_offset - state.last_acked_offset
        if received >= self._ack_threshold(tcb):
            self._send_backup_ack(state)
        # A filled gap may satisfy an outstanding recovery request.
        if state.pending_retx is not None:
            _, stop_abs, _ = state.pending_retx
            if tcb.rcv_nxt >= stop_abs:
                state.pending_retx = None
                self._index.clear_retx_pending(state)

    def _note_converged(self, state: _ShadowConnState) -> None:
        """The shadow is ESTABLISHED on the primary's ISN: discharge it
        from the pending-rebase index and close the convergence span."""
        state.converged = True
        self._index.note_rebased(state)
        self._g_pending_rebase.value = self._index.pending_rebase_count()
        if state.convergence_sid is not None:
            self.sim.trace.end_span(
                self.sim.now, "sttcp", "shadow_convergence", state.convergence_sid
            )
            state.convergence_sid = None

    def _on_sync_tick(self) -> None:
        """SyncTime expiry: ack every *due* connection.

        The ack-schedule index pops exactly the connections whose
        SyncTime elapsed since their last BackupAck, so an idle tick over
        N shadows is O(due + expired recovery requests), not O(N).
        """
        if not self._started or self.role is not ROLE_PASSIVE or not self.host.is_up:
            return
        sync_time = self.config.effective_sync_time()
        now = self.sim.now
        for state in self._index.ack_due(now, sync_time):
            if state.tcb.is_synchronized:
                self._send_backup_ack(state)  # re-enqueues via note_acked
            else:
                self._index.requeue_unready(state)
        for state in self._index.retx_pending_states():
            self._maybe_reissue_retx(state)
        self._sync_timer.start(sync_time)

    def _send_backup_ack(self, state: _ShadowConnState) -> None:
        tcb = state.tcb
        self._c_acks_sent.value += 1
        self._send(BackupAck(state.key, wrap(tcb.rcv_nxt)))
        state.last_acked_offset = tcb.recv_buffer.rcv_nxt_offset
        state.last_ack_time = self.sim.now
        self._index.note_acked(state)

    def _send_heartbeat(self) -> None:
        if not self._started or self.role is not ROLE_PASSIVE or not self.host.is_up:
            return
        self._hb_sequence += 1
        self._send(Heartbeat("backup", self._hb_sequence))
        self._c_hb_sent.inc()
        self._hb_timer.start(self.config.hb_interval)

    def _send(self, message: ChannelMessage) -> None:
        self.channel.send_to(
            (self.primary_ip, self.config.channel_port), message, message.wire_size
        )

    # Tap observation ------------------------------------------------------------------
    def _on_tapped_datagram(self, datagram: IPDatagram, nic: Optional[NIC]) -> None:
        """Observe the primary→client direction of the byte stream."""
        if self.role is not ROLE_PASSIVE:
            return
        if datagram.protocol != PROTO_TCP or datagram.src != self.service_ip:
            return
        segment: TCPSegment = datagram.payload
        if segment.src_port != self.service_port:
            return
        state = self._connections.get(conn_key(datagram.dst, segment.dst_port))
        if state is None:
            if segment.is_syn and segment.is_ack:
                state = self._adopt_missed_connection(datagram.dst, segment)
            if state is None:
                return
        tcb = state.tcb
        if segment.is_syn and segment.is_ack and not state.ext.isn_rebased:
            # The primary's SYN/ACK reveals its ISN directly (§4.1) — the
            # robust sync source when the tap lost the client's handshake.
            state.ext.learn_primary_isn(tcb, segment.seq)
        if segment.is_ack:
            # The ACK field tracks the *client's* stream, which the shadow
            # anchors from the tapped SYN — valid even before ISN rebase.
            primary_rcv = unwrap(segment.ack, tcb.rcv_nxt)
            if state.primary_rcv_nxt is None or primary_rcv > state.primary_rcv_nxt:
                state.primary_rcv_nxt = primary_rcv
            if primary_rcv > tcb.rcv_nxt:
                # The primary holds client bytes we never tapped; the
                # client has purged them, so only the primary can help.
                self._index.note_gap(state)
                self._request_retransmission(state, tcb.rcv_nxt, primary_rcv)
        if segment.payload_length > 0 and state.ext.isn_rebased:
            seg_end = unwrap(segment.seq, tcb.snd_nxt) + segment.payload_length
            if state.primary_snd_nxt is None or seg_end > state.primary_snd_nxt:
                state.primary_snd_nxt = seg_end

    def _adopt_missed_connection(
        self, client_ip: IPAddress, synack: TCPSegment
    ) -> Optional[_ShadowConnState]:
        """The tap lost the client's SYN: reconstruct the shadow from the
        tapped primary SYN/ACK, whose ack field reveals the client's ISN
        (§4.1).  Without this, one lost frame on the tap makes the whole
        connection invisible to the backup and the takeover resets it.
        """
        tcb = self.host.tcp.synthesize_passive_open(
            self.service_ip,
            self.service_port,
            client_ip,
            synack.dst_port,
            wrap(synack.ack - 1),
        )
        if tcb is None:
            return None
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "late_shadow",
                client=f"{client_ip}:{synack.dst_port}",
            )
        return self._connections.get(conn_key(client_ip, synack.dst_port))

    def _request_retransmission(
        self, state: _ShadowConnState, start_abs: int, stop_abs: int
    ) -> None:
        if state.pending_retx is not None:
            pending_start, pending_stop, requested_at = state.pending_retx
            fresh = self.sim.now - requested_at < self.config.retx_request_timeout
            if fresh:
                if stop_abs <= pending_stop:
                    return  # fully covered by the request in flight
                # Only the new tail needs asking for.
                start_abs = max(start_abs, pending_stop)
        self._c_retx_requests_sent.value += 1
        self._send(RetxRequest(state.key, wrap(start_abs), wrap(stop_abs)))
        state.pending_retx = (start_abs, stop_abs, self.sim.now)
        self._index.note_retx_pending(state)

    def _maybe_reissue_retx(self, state: _ShadowConnState) -> None:
        if state.pending_retx is None:
            return
        start_abs, stop_abs, requested_at = state.pending_retx
        if state.tcb.rcv_nxt >= stop_abs:
            state.pending_retx = None
            self._index.clear_retx_pending(state)
            return
        if self.sim.now - requested_at >= self.config.retx_request_timeout:
            state.pending_retx = None
            self._request_retransmission(state, state.tcb.rcv_nxt, stop_abs)

    # Channel input -----------------------------------------------------------------------
    def _on_channel_message(self, message: ChannelMessage, addr: tuple) -> None:
        if not self.host.is_up:
            return
        source = addr[0]
        if (
            isinstance(message, Heartbeat)
            and message.sender == "primary"
            and source != self.primary_ip
        ):
            self._adopt_new_primary(source)
            return
        self.primary_monitor.heard()
        if isinstance(message, RetxData):
            self._handle_retx_data(message)
        elif isinstance(message, ConnSnapshot):
            self._adopt_snapshot(message)
        elif isinstance(message, SyncDone):
            self._on_sync_done_msg(message)
        # Heartbeat / AckReply carry liveness only.

    def _adopt_new_primary(self, source: IPAddress) -> None:
        """A peer backup took over and now heartbeats as the primary:
        re-target shadowing at it and stand down from any takeover."""
        if self.role is ROLE_ACTIVE:
            return
        self.primary_ip = source
        # Future suspicions must power-switch the *new* primary.
        self.primary_host = self.peer_hosts.get(source.value, self.primary_host)
        self.primary_monitor.peer_host = self.primary_host
        if self._deferred_takeover is not None:
            self._deferred_takeover.cancel()
            self._deferred_takeover = None
        if self._takeover_sid is not None:
            self.sim.trace.end_span(
                self.sim.now,
                "sttcp",
                "takeover_episode",
                self._takeover_sid,
                outcome="stood_down",
            )
            self._takeover_sid = None
        self.role = ROLE_PASSIVE
        self.primary_monitor.start()  # fresh grace period for the new primary
        if not self._hb_timer.running:
            self._hb_timer.start(self.config.hb_interval)
        if not self._sync_timer.running:
            self._sync_timer.start(self.config.effective_sync_time())
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now, "sttcp", "adopt_new_primary", primary=str(source), rank=self.rank
            )

    def _handle_retx_data(self, data: RetxData) -> None:
        state = self._connections.get(data.key)
        if state is None:
            return
        self._inject_payload(state.tcb, unwrap(data.seq, state.tcb.rcv_nxt), data.payload)
        self._c_retx_bytes_recovered.value += len(data.payload)
        if state.pending_retx is not None and state.tcb.rcv_nxt >= state.pending_retx[1]:
            state.pending_retx = None
            self._index.clear_retx_pending(state)

    def _inject_payload(self, tcb: TCPConnection, seq_abs: int, payload: Any) -> None:
        """Feed recovered client bytes into the shadow's receive stream.

        Deliberately bypasses segment processing: recovery repairs the
        receive stream only, and must not touch the ACK machinery (a
        synthetic ACK while the shadow is still in SYN_RCVD would rebase
        the ISN against the shadow's own wrong value).
        """
        tcb.inject_receive_data(seq_abs, payload)

    # Snapshot handoff (cluster election) ---------------------------------------------------
    def request_sync(self) -> None:
        """Ask the primary to snapshot every connection we don't shadow.

        Used by a freshly elected pool backup joining mid-stream: the
        retention machinery cannot replay history the previous backup
        already acknowledged away, so instead each quiescent connection
        is adopted at the primary's current offsets via
        :class:`ConnSnapshot` and :meth:`TCPConnection.fast_forward`.
        """
        self.sync_requested_at = self.sim.now
        self.sync_done_at = None
        self._send(SyncRequest(tuple(self._connections.keys())))
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now, "sttcp", "sync_request", known=len(self._connections)
            )

    @property
    def snapshots_adopted(self) -> int:
        return self._c_snapshots_adopted.value

    def _adopt_snapshot(self, snap: ConnSnapshot) -> None:
        """Build a converged shadow from a primary's connection snapshot.

        The replica handshake is synthesised (suppressed SYN/ACK + a
        synthetic client ACK carrying the client's window), the send
        space is rebased on the primary's real ISN, and both streams
        fast-forward to the snapshot offsets.  From there the ordinary
        tap keeps the shadow current; anything that slipped between the
        snapshot and the first tapped segment is repaired by the
        RetxRequest gap machinery, exactly like a tap loss.
        """
        if self.role is not ROLE_PASSIVE or snap.key in self._connections:
            return
        client_ip = IPAddress(snap.key[0])
        client_port = snap.key[1]
        tcb = self.host.tcp.synthesize_passive_open(
            self.service_ip, self.service_port, client_ip, client_port, snap.client_isn
        )
        if tcb is None:
            return
        state = self._connections.get(snap.key)
        if state is None:
            return
        state.ext.learn_primary_isn(tcb, snap.server_isn)
        tcb.on_segment(
            TCPSegment(
                client_port,
                self.service_port,
                wrap(tcb.rcv_nxt),
                wrap(tcb.snd_nxt),
                FLAG_ACK,
                snap.client_window,
            )
        )
        if tcb.state is not TCPState.ESTABLISHED:
            return  # handshake synthesis failed; leave it unconverged
        tcb.fast_forward(snap.rcv_offset, snap.snd_offset)
        if not state.converged:
            self._note_converged(state)
        self._c_snapshots_adopted.value += 1
        # Announce our position immediately so the primary re-arms
        # retention coverage from the snapshot point.
        self._send_backup_ack(state)
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "snapshot_adopted",
                client=f"{client_ip}:{client_port}",
                rcv_offset=snap.rcv_offset,
                snd_offset=snap.snd_offset,
            )

    def _on_sync_done_msg(self, message: SyncDone) -> None:
        self.sync_done_at = self.sim.now
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now, "sttcp", "sync_complete", snapshots=message.count
            )
        if self.on_sync_done is not None:
            self.on_sync_done(self)

    # Retirement (cluster election) ---------------------------------------------------------
    def retire(self) -> None:
        """Stand this engine down permanently (its host was consumed by a
        takeover for another service, or its duties moved to an elected
        replacement).  Shadows are aborted locally — their RSTs are
        vetoed by the shadow extension, so nothing reaches the wire —
        and the channel socket closes.  Idempotent.
        """
        if self.role is ROLE_RETIRED:
            return
        self.stop()
        self.role = ROLE_RETIRED
        if self._deferred_takeover is not None:
            self._deferred_takeover.cancel()
            self._deferred_takeover = None
        if self._takeover_sid is not None:
            self.sim.trace.end_span(
                self.sim.now,
                "sttcp",
                "takeover_episode",
                self._takeover_sid,
                outcome="retired",
            )
            self._takeover_sid = None
        for state in list(self._connections.values()):
            if not state.closed and state.tcb.state is not TCPState.CLOSED:
                state.tcb.app_abort()
        self.channel.close()
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(self.sim.now, "sttcp", "retired", host=self.host.name)

    # Failover (§4.4, §5) ---------------------------------------------------------------------
    def _on_primary_suspected(self) -> None:
        if not self.host.is_up or self.role is not ROLE_PASSIVE:
            return
        self.role = ROLE_TAKING_OVER
        self.detection_time = self.sim.now
        if self.sim.trace.enabled_for("sttcp"):
            self._failover_flow = self.sim.trace.new_flow()
            self.sim.trace.emit(
                self.sim.now, "sttcp", "primary_suspected", rank=self.rank
            )
            self._takeover_sid = self.sim.trace.begin_span(
                self.sim.now,
                "sttcp",
                "takeover_episode",
                rank=self.rank,
                flow=self._failover_flow,
            )
        if self.rank > 0:
            # Defer: a higher-priority backup gets first claim; if its
            # heartbeat-as-primary arrives meanwhile, we stand down.
            delay = self.rank * self.config.takeover_grace
            self._deferred_takeover = self.sim.schedule(delay, self._deferred_takeover_due)
            return
        self._proceed_with_takeover()

    def _deferred_takeover_due(self) -> None:
        self._deferred_takeover = None
        if not self.host.is_up or self.role is not ROLE_TAKING_OVER:
            return
        # Nobody higher-ranked announced themselves: our turn.
        self._proceed_with_takeover()

    def _proceed_with_takeover(self) -> None:
        if self.config.stonith and self.power_switch is not None and self.primary_host is not None:
            # Convert the suspicion into a certainty before taking over.
            # The flow context is set only for the synchronous request —
            # a cluster arbiter captures it then, even though its
            # actuation lands later in a different event.
            trace = self.sim.trace
            trace.current_flow = self._failover_flow
            try:
                self.power_switch.cut_power(
                    self.primary_host, self._recover_gaps_then_takeover
                )
            finally:
                trace.current_flow = None
        else:
            self._recover_gaps_then_takeover()

    def _recover_gaps_then_takeover(self) -> None:
        """Mask double failures from the logger if configured (§3.2).

        If the tap itself was down, the backup cannot even *know* what it
        missed (the tapped primary ACKs were lost too), so with a logger
        configured every connection issues an open-ended query from its
        ``rcv_nxt`` — the logger holds the complete recent client stream.
        """
        if self.logger_client is None:
            for key, _start, _stop in self._find_gaps():
                self.degraded_connections.append(key)
            self._complete_takeover()
            return
        queries = []
        # Takeover-time one-shot walk: every synchronized connection must
        # be queried, so O(all) is inherent here (unlike the per-segment
        # and per-tick paths, which go through the indexes).
        for key, state in list(self._connections.items()):
            if state.tcb.is_synchronized:
                start = wrap(state.tcb.rcv_nxt)
                queries.append((key, start, start))  # start == stop: to end
        self.logger_client.recover(
            queries,
            on_data=self._on_logger_data,
            on_done=self._on_logger_done,
        )

    def _flush_gap_reconcile(self) -> None:
        """Batch-datapath flush point: fold every deferred stream
        advance into the gap index in one update."""
        if self._gap_dirty:
            dirty = self._gap_dirty
            self._gap_dirty = {}
            self._index.reconcile_batch(dirty.values())

    def _find_gaps(self) -> List[tuple]:
        """Ranges the primary had received that this backup still lacks.

        Reads the gap index maintained from the tapped ACK stream instead
        of re-deriving gaps from a scan of every connection; the
        hypothesis test in ``tests/sttcp/test_scale_indexes.py`` checks
        this against the brute-force oracle.
        """
        self._flush_gap_reconcile()
        return self._index.gaps()

    def _on_logger_data(self, key: ConnKey, seq32: int, payload: Any) -> None:
        state = self._connections.get(key)
        if state is not None:
            seq_abs = unwrap(seq32, state.tcb.rcv_nxt)
            self._inject_payload(state.tcb, seq_abs, payload)
            self._c_logger_bytes_recovered.value += len(payload)

    def _on_logger_done(self) -> None:
        # _find_gaps only reports ranges still missing, i.e. whatever the
        # logger could not repair: those connections stay degraded.
        for key, _start, _stop in self._find_gaps():
            self.degraded_connections.append(key)
        self._complete_takeover()

    def _complete_takeover(self) -> None:
        """Become the primary: answer ARP, transmit, accept new clients."""
        # Everything that happens synchronously inside the completion —
        # the first go-back-N batch (whose FirstAckProbes mark stream
        # resume) and the election hook — belongs to the failover's
        # causal chain, so set the dynamic flow context for the duration.
        trace = self.sim.trace
        trace.current_flow = self._failover_flow
        try:
            self._complete_takeover_inner()
        finally:
            trace.current_flow = None

    def _complete_takeover_inner(self) -> None:
        self.role = ROLE_ACTIVE
        self.takeover_time = self.sim.now
        self.host.arp.unsuppress_ip(self.service_ip)
        # New passive opens stay regular: _on_passive_open checks the role.
        self.host.tcp.reset_on_unmatched = True
        self._sync_timer.stop()
        self._hb_timer.stop()
        # Takeover-time one-shot walk over a snapshot (taking a shadow
        # over can close it, and the close observer mutates the dict).
        adoptable: List[_ShadowConnState] = []
        for key, state in list(self._connections.items()):
            if state.tcb.is_synchronized and not state.ext.isn_rebased:
                # The send-stream anchor was never learned: this
                # connection cannot be continued faithfully (§3.2-style
                # incomplete communication state).
                self.degraded_connections.append(key)
                continue
            adoptable.append(state)
        self._take_over_batch(adoptable, 0)
        if self.peer_backup_ips:
            self._promote_to_primary()
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now,
                "sttcp",
                "takeover",
                connections=len(self._connections),
                degraded=len(self.degraded_connections),
            )
        if self._takeover_sid is not None:
            self.sim.trace.end_span(
                self.sim.now,
                "sttcp",
                "takeover_episode",
                self._takeover_sid,
                connections=len(self._connections),
                degraded=len(self.degraded_connections),
            )
            self._takeover_sid = None
        if self.on_takeover is not None:
            # Election hook: runs synchronously inside the takeover event
            # so no other simulation event can observe the intermediate
            # state (e.g. a consumed pool backup still shadowing others).
            self.on_takeover(self)

    def _take_over_batch(self, states: List[_ShadowConnState], start: int) -> None:
        """Kick off go-back-N for ``states[start:start+batch]`` now and
        schedule the rest on the next event-loop turn (same sim time)."""
        batch = self.config.takeover_batch
        for state in states[start : start + batch]:
            if not state.closed:
                state.tcb.takeover()
        nxt = start + batch
        if nxt < len(states):
            self.sim.schedule(0.0, lambda: self._take_over_batch(states, nxt))

    def _promote_to_primary(self) -> None:
        """Become a full primary serving the remaining backups: attach
        retention to the adopted connections and start heartbeating as
        the primary so the peers re-target their shadowing."""
        from repro.sttcp.primary import STTCPPrimary

        engine = STTCPPrimary(
            self.host,
            self.service_ip,
            self.service_port,
            self.peer_backup_ips,
            self.config,
        )
        for state in list(self._connections.values()):
            engine.adopt_connection(state.tcb)
        engine.start()
        self.promoted_primary = engine
        if self.sim.trace.enabled_for("sttcp"):
            self.sim.trace.emit(
                self.sim.now, "sttcp", "promoted", peers=len(self.peer_backup_ips)
            )

    def force_failover(self) -> None:
        """Administrative failover (tests and planned-maintenance demos)."""
        if self.role is ROLE_PASSIVE:
            self.primary_monitor.stop()
            self._on_primary_suspected()

"""Messages on the primary↔backup UDP channel (§4.2–4.3).

The paper quotes "the total length (including all header overheads down to
Ethernet) of an ack packet is 128 bytes"; with 18 B Ethernet + 20 B IP +
8 B UDP overhead that leaves 82 bytes of payload, which is what the small
messages here declare.  Retransmission-data messages size themselves by
their payload.

Connections are identified by ``(client_ip, client_port)`` — the service
IP and port are fixed per server pair.
"""

from __future__ import annotations

from typing import Tuple

from repro.net.addresses import IPAddress
from repro.util.bytespan import ByteSpan

#: Payload size making a small channel message 128 bytes on the wire.
SMALL_MESSAGE_SIZE = 82

#: Fixed header cost of a RETX_DATA message before its payload.
RETX_DATA_HEADER = 32

ConnKey = Tuple[int, int]  # (client_ip.value, client_port)


def conn_key(client_ip: IPAddress, client_port: int) -> ConnKey:
    return (client_ip.value, client_port)


class ChannelMessage:
    """Base class; subclasses declare their modelled wire payload size."""

    __slots__ = ()

    @property
    def wire_size(self) -> int:
        return SMALL_MESSAGE_SIZE


class Heartbeat(ChannelMessage):
    """Periodic liveness beacon (§4.2)."""

    __slots__ = ("sender", "sequence")

    def __init__(self, sender: str, sequence: int) -> None:
        self.sender = sender  # "primary" | "backup"
        self.sequence = sequence

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HB from={self.sender} #{self.sequence}>"


class BackupAck(ChannelMessage):
    """The backup's LastByteAcked report (§4.3).

    ``ack_seq`` is the 32-bit sequence number one past the last in-order
    client byte the backup holds (its NextByteExpected), i.e. the primary
    may discard retained bytes strictly below it.
    """

    __slots__ = ("key", "ack_seq")

    def __init__(self, key: ConnKey, ack_seq: int) -> None:
        self.key = key
        self.ack_seq = ack_seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BackupAck {self.key} ack={self.ack_seq}>"


class AckReply(ChannelMessage):
    """The primary's response to a BackupAck; doubles as a heartbeat
    ("we use the acks sent by the backup server and its response sent back
    by the primary ... as a mechanism to monitor liveness", §4.3)."""

    __slots__ = ("key", "ack_seq")

    def __init__(self, key: ConnKey, ack_seq: int) -> None:
        self.key = key
        self.ack_seq = ack_seq


class RetxRequest(ChannelMessage):
    """The backup asks for client bytes it failed to tap (§4.2).

    The range is [start_seq, stop_seq) in 32-bit sequence space.
    """

    __slots__ = ("key", "start_seq", "stop_seq")

    def __init__(self, key: ConnKey, start_seq: int, stop_seq: int) -> None:
        self.key = key
        self.start_seq = start_seq
        self.stop_seq = stop_seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RetxRequest {self.key} [{self.start_seq},{self.stop_seq})>"


class RetxData(ChannelMessage):
    """A chunk of recovered client bytes from the primary's buffers."""

    __slots__ = ("key", "seq", "payload")

    def __init__(self, key: ConnKey, seq: int, payload: ByteSpan) -> None:
        self.key = key
        self.seq = seq
        self.payload = payload

    @property
    def wire_size(self) -> int:
        return RETX_DATA_HEADER + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RetxData {self.key} seq={self.seq} len={len(self.payload)}>"

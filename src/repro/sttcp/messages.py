"""Messages on the primary↔backup UDP channel (§4.2–4.3).

The paper quotes "the total length (including all header overheads down to
Ethernet) of an ack packet is 128 bytes"; with 18 B Ethernet + 20 B IP +
8 B UDP overhead that leaves 82 bytes of payload, which is what the small
messages here declare.  Retransmission-data messages size themselves by
their payload.

Connections are identified by ``(client_ip, client_port)`` — the service
IP and port are fixed per server pair.
"""

from __future__ import annotations

from typing import Tuple

from repro.net.addresses import IPAddress
from repro.util.bytespan import ByteSpan

#: Payload size making a small channel message 128 bytes on the wire.
SMALL_MESSAGE_SIZE = 82

#: Fixed header cost of a RETX_DATA message before its payload.
RETX_DATA_HEADER = 32

ConnKey = Tuple[int, int]  # (client_ip.value, client_port)


def conn_key(client_ip: IPAddress, client_port: int) -> ConnKey:
    return (client_ip.value, client_port)


class ChannelMessage:
    """Base class; subclasses declare their modelled wire payload size."""

    __slots__ = ()

    @property
    def wire_size(self) -> int:
        return SMALL_MESSAGE_SIZE


class Heartbeat(ChannelMessage):
    """Periodic liveness beacon (§4.2)."""

    __slots__ = ("sender", "sequence")

    def __init__(self, sender: str, sequence: int) -> None:
        self.sender = sender  # "primary" | "backup"
        self.sequence = sequence

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HB from={self.sender} #{self.sequence}>"


class BackupAck(ChannelMessage):
    """The backup's LastByteAcked report (§4.3).

    ``ack_seq`` is the 32-bit sequence number one past the last in-order
    client byte the backup holds (its NextByteExpected), i.e. the primary
    may discard retained bytes strictly below it.
    """

    __slots__ = ("key", "ack_seq")

    def __init__(self, key: ConnKey, ack_seq: int) -> None:
        self.key = key
        self.ack_seq = ack_seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BackupAck {self.key} ack={self.ack_seq}>"


class AckReply(ChannelMessage):
    """The primary's response to a BackupAck; doubles as a heartbeat
    ("we use the acks sent by the backup server and its response sent back
    by the primary ... as a mechanism to monitor liveness", §4.3)."""

    __slots__ = ("key", "ack_seq")

    def __init__(self, key: ConnKey, ack_seq: int) -> None:
        self.key = key
        self.ack_seq = ack_seq


class RetxRequest(ChannelMessage):
    """The backup asks for client bytes it failed to tap (§4.2).

    The range is [start_seq, stop_seq) in 32-bit sequence space.
    """

    __slots__ = ("key", "start_seq", "stop_seq")

    def __init__(self, key: ConnKey, start_seq: int, stop_seq: int) -> None:
        self.key = key
        self.start_seq = start_seq
        self.stop_seq = stop_seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RetxRequest {self.key} [{self.start_seq},{self.stop_seq})>"


class SyncRequest(ChannelMessage):
    """A freshly assigned backup asks the primary to describe its live
    connections (cluster election: re-establishing shadow state for an
    orphaned primary).

    ``known_keys`` lists connections the backup already shadows, so the
    primary only snapshots the ones the backup is missing.
    """

    __slots__ = ("known_keys",)

    #: Modelled wire cost of one connection key in the request.
    KEY_WIRE_SIZE = 8

    def __init__(self, known_keys: Tuple[ConnKey, ...] = ()) -> None:
        self.known_keys = tuple(known_keys)

    @property
    def wire_size(self) -> int:
        return SMALL_MESSAGE_SIZE + self.KEY_WIRE_SIZE * len(self.known_keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SyncRequest known={len(self.known_keys)}>"


class ConnSnapshot(ChannelMessage):
    """One quiescent connection, described well enough for a new shadow
    to adopt it mid-stream.

    ``client_isn``/``server_isn`` are the 32-bit handshake ISNs;
    ``rcv_offset``/``snd_offset`` are the primary's current stream
    positions (client→server and server→client, as stream offsets);
    ``client_window`` is the client's last advertised window.  The
    primary only snapshots a connection while it is quiescent (nothing
    buffered, nothing in flight), so the two offsets fully determine the
    transferable state — any bytes that move during the channel flight
    are recovered afterwards by the normal tap + RetxRequest machinery.
    """

    __slots__ = (
        "key",
        "client_isn",
        "server_isn",
        "rcv_offset",
        "snd_offset",
        "client_window",
    )

    def __init__(
        self,
        key: ConnKey,
        client_isn: int,
        server_isn: int,
        rcv_offset: int,
        snd_offset: int,
        client_window: int,
    ) -> None:
        self.key = key
        self.client_isn = client_isn
        self.server_isn = server_isn
        self.rcv_offset = rcv_offset
        self.snd_offset = snd_offset
        self.client_window = client_window

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ConnSnapshot {self.key} rcv={self.rcv_offset} snd={self.snd_offset}>"
        )


class SyncDone(ChannelMessage):
    """The primary served every missing snapshot for one SyncRequest."""

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SyncDone count={self.count}>"


class RetxData(ChannelMessage):
    """A chunk of recovered client bytes from the primary's buffers."""

    __slots__ = ("key", "seq", "payload")

    def __init__(self, key: ConnKey, seq: int, payload: ByteSpan) -> None:
        self.key = key
        self.seq = seq
        self.payload = payload

    @property
    def wire_size(self) -> int:
        return RETX_DATA_HEADER + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RetxData {self.key} seq={self.seq} len={len(self.payload)}>"

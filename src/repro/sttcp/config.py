"""ST-TCP configuration (§4).

Key parameters from the paper:

* ``hb_interval`` — heartbeat period on the UDP channel; the paper sweeps
  50 ms … 5 s (Tables 1–2, Figures 5–6).
* ``hb_miss_threshold`` — the backup declares the primary crashed after
  missing three consecutive heartbeats (§6.2), so detection takes between
  3 and 4 heartbeat intervals.
* ``ack_threshold_fraction`` — X as a fraction of the second receive
  buffer; the paper fixes X at three-fourths of the buffer (§4.3).
* ``second_buffer_size`` — the extra receive-buffer space on the primary;
  the paper doubles the allocation, i.e. the second buffer equals the
  first (§4.2).  ``None`` selects that default.
* ``sync_time`` — the backup acknowledges at least this often (§4.3,
  experimented between 50 ms and 5 s); ``None`` ties it to
  ``hb_interval`` as the prototype does (acks double as heartbeats).
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass
class STTCPConfig:
    """Tunables for one primary/backup ST-TCP server pair."""

    hb_interval: float = 0.050
    hb_miss_threshold: int = 3
    #: Fraction of ``hb_interval`` by which each failure-detector check is
    #: randomly perturbed (±).  Zero keeps the detectors lock-stepped (the
    #: paper's 3-host testbed); clusters set it to desynchronise fleet-wide
    #: suspicion storms.
    hb_jitter: float = 0.0
    sync_time: Optional[float] = None
    ack_threshold_fraction: float = 0.75
    second_buffer_size: Optional[int] = None
    #: UDP port of the primary↔backup channel.
    channel_port: int = 39000
    #: Power-switch the suspected primary before takeover (§3.2/§4.4):
    #: converts wrong suspicions into correct ones.
    stonith: bool = True
    #: Relay actuation latency of the controllable power switch.
    stonith_delay: float = 0.010
    #: Query the packet logger for tap gaps that the (dead) primary can no
    #: longer repair (§3.2 double-failure masking).
    use_logger: bool = False
    #: How long the backup waits for an outstanding retransmission request
    #: before re-issuing it.
    retx_request_timeout: float = 0.050
    #: With several backups, backup rank i defers its takeover by
    #: i × takeover_grace so the highest-priority live backup wins; a
    #: deferring backup cancels when it hears the new primary's heartbeat.
    takeover_grace: float = 0.100
    #: On takeover, go-back-N is kicked off for at most this many
    #: connections per event-loop turn; the rest follow in zero-delay
    #: batches so one takeover over thousands of shadows doesn't emit a
    #: single giant retransmit burst in one call.
    takeover_batch: int = 256

    def effective_sync_time(self) -> float:
        return self.sync_time if self.sync_time is not None else self.hb_interval

    def detection_timeout(self) -> float:
        """Silence beyond this means the peer is suspected."""
        return self.hb_miss_threshold * self.hb_interval

    def validate(self) -> None:
        if self.hb_interval <= 0:
            raise ValueError(f"hb_interval must be positive, got {self.hb_interval}")
        if self.hb_miss_threshold < 1:
            raise ValueError("hb_miss_threshold must be >= 1")
        if not 0.0 <= self.hb_jitter < 1.0:
            raise ValueError(f"hb_jitter must be in [0, 1), got {self.hb_jitter}")
        if not 0.0 < self.ack_threshold_fraction <= 1.0:
            raise ValueError(
                f"ack_threshold_fraction must be in (0, 1], got "
                f"{self.ack_threshold_fraction}"
            )
        if self.sync_time is not None and self.sync_time <= 0:
            raise ValueError(f"sync_time must be positive, got {self.sync_time}")
        if self.takeover_batch < 1:
            raise ValueError(f"takeover_batch must be >= 1, got {self.takeover_batch}")

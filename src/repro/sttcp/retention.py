"""The primary's second receive buffer (§4.2, Figure 4).

Standard TCP discards a received byte once the application reads it.  An
ST-TCP primary must hold it until the backup has acknowledged it over the
UDP channel, because a byte the backup missed on the tap can only be
repaired from here — the client purged it from its send buffer the moment
the primary ACKed.

The paper doubles the receive allocation and manages the extra space as a
logically separate second buffer: read-but-unacked bytes move there, and
only when the second buffer overflows do retained bytes start consuming
advertised window (the sole externally visible deviation from standard
TCP, §4.2).
"""

from __future__ import annotations

from repro.errors import FailoverError
from repro.tcp.recv_buffer import RetentionPolicy
from repro.util.bytespan import EMPTY, ByteSpan
from repro.util.spanbuffer import SpanBuffer


class SecondReceiveBuffer(RetentionPolicy):
    """Retains application-read bytes until the backup acknowledges them."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"second buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        self._store = SpanBuffer()  # head = oldest retained offset
        # Counters for the sync-strategy ablation (A1).
        self.bytes_retained_total = 0
        self.bytes_released_total = 0
        self.peak_usage = 0
        self.overflow_byte_peak = 0

    def prime_at(self, offset: int) -> None:
        """Start retention at ``offset`` (used when a promoted backup's
        former shadow connection gains a second buffer mid-stream)."""
        if len(self._store) or self._store.head_offset:
            raise FailoverError("prime_at on a buffer that already retained data")
        self._store.discard_front(0)
        self._store.head_offset = offset

    # RetentionPolicy ------------------------------------------------------------
    def on_read(self, start_offset: int, span: ByteSpan) -> None:
        if not self.enabled:
            return
        if start_offset != self._store.tail_offset:
            raise FailoverError(
                f"non-contiguous retention: read at {start_offset}, "
                f"retained through {self._store.tail_offset}"
            )
        self._store.append(span)
        self.bytes_retained_total += len(span)
        usage = len(self._store)
        if usage > self.peak_usage:
            self.peak_usage = usage
        overflow = self.overflow_bytes()
        if overflow > self.overflow_byte_peak:
            self.overflow_byte_peak = overflow

    def overflow_bytes(self) -> int:
        if not self.enabled:
            return 0
        return max(0, len(self._store) - self.capacity)

    # ST-TCP engine API ------------------------------------------------------------
    @property
    def retained_bytes(self) -> int:
        return len(self._store)

    @property
    def lowest_retained_offset(self) -> int:
        return self._store.head_offset

    def backup_acked(self, offset: int) -> int:
        """Release retained bytes below ``offset``; returns bytes freed.

        The backup acks its NextByteExpected, which can run ahead of what
        the primary's application has read; the release is clamped to the
        retained range.
        """
        if not self.enabled:
            return 0
        target = min(offset, self._store.tail_offset)
        freed = target - self._store.head_offset
        if freed <= 0:
            return 0
        self._store.discard_front(freed)
        self.bytes_released_total += freed
        return freed

    def fetch(self, start_offset: int, stop_offset: int) -> ByteSpan:
        """Bytes [start, stop) ∩ retained range, for recovery service."""
        lo = max(start_offset, self._store.head_offset)
        hi = min(stop_offset, self._store.tail_offset)
        if lo >= hi:
            return EMPTY
        return self._store.peek_absolute(lo, hi)

    def disable(self) -> None:
        """Backup declared failed: revert to standard-TCP semantics
        (non-fault-tolerant mode, §4.4)."""
        self.enabled = False
        self._store.clear()

"""Timeout-based failure detection over the heartbeat stream (§4.4).

Both ends run a :class:`HeartbeatMonitor`: the backup watches the
primary's heartbeats (and ack replies), the primary watches the backup's
acks.  A peer is *suspected* after ``threshold`` consecutive intervals of
silence, so detection latency lies in
``[threshold·interval, (threshold+1)·interval)`` — matching the paper's
"with an HB every 5 sec, the backup will detect primary crash in 15 to 20
seconds depending on when exactly the failure occurs" (§6.2).

Suspicions may be wrong; combining the monitor with the power switch
(:mod:`repro.sttcp.power_switch`) converts wrong suspicions into correct
ones, giving the perfect failure detector ST-TCP requires (§3.2).

Fleet-level behaviour is observable through the metrics registry: every
monitor feeds the shared ``sttcp.hb`` counters (``heartbeats_missed``,
``suspicions``, ``false_suspicions``), and the senders feed
``heartbeats_sent`` — the inputs the cluster arbiter needs to reason
about heartbeat storms.  A monitor given its ``peer_host`` classifies
each suspicion as true (peer crashed) or false (peer alive but silent,
e.g. partitioned) at the moment it fires.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.tcp.timers import RestartableTimer

#: Dotted metrics prefix shared by every monitor in a simulation.
HB_METRICS_SCOPE = "sttcp.hb"


class HeartbeatMonitor:
    """Suspects a peer after N heartbeat intervals of silence."""

    def __init__(
        self,
        sim: Any,
        interval: float,
        threshold: int,
        on_suspect: Callable[[], None],
        name: str = "hb-monitor",
        jitter: float = 0.0,
        peer_host: Optional[Any] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.sim = sim
        self.interval = interval
        self.threshold = threshold
        self.on_suspect = on_suspect
        self.name = name
        #: Fraction of ``interval`` by which each check tick is randomly
        #: perturbed (±), desynchronising the fleet's detectors so a
        #: fabric-wide partition does not fire every suspicion in the
        #: same event-loop instant (the heartbeat-storm pathology).
        self.jitter = jitter
        #: When set, a firing suspicion is classified against the peer's
        #: actual liveness (``is_up``) for the false-suspicion counter.
        self.peer_host = peer_host
        self.last_heard: Optional[float] = None
        self.suspected = False
        self.suspected_at: Optional[float] = None
        self._timer = RestartableTimer(sim, self._check, name)
        self._running = False
        self._rng = sim.random.stream(f"{HB_METRICS_SCOPE}.{name}") if jitter else None
        metrics = sim.metrics.scope(HB_METRICS_SCOPE)
        self._missed_counter = metrics.counter("heartbeats_missed")
        self._suspicion_counter = metrics.counter("suspicions")
        self._false_suspicion_counter = metrics.counter("false_suspicions")
        #: Intervals this monitor saw pass in silence (monotonic).
        self.missed = 0

    @property
    def timeout(self) -> float:
        return self.threshold * self.interval

    def _arm(self) -> None:
        delay = self.interval
        if self._rng is not None:
            delay += self.interval * self.jitter * (2.0 * self._rng.random() - 1.0)
        self._timer.start(delay)

    def start(self) -> None:
        """Begin monitoring; the peer gets a full timeout of grace."""
        self._running = True
        self.last_heard = self.sim.now
        self.suspected = False
        self.suspected_at = None
        self._arm()

    def stop(self) -> None:
        self._running = False
        self._timer.stop()

    def heard(self) -> None:
        """Record evidence of peer liveness (any channel message)."""
        self.last_heard = self.sim.now
        if self.suspected:
            # The protocol never un-suspects (suspicions are made correct
            # by the power switch); late messages are simply recorded.
            return

    def _check(self) -> None:
        if not self._running or self.suspected:
            return
        silence = self.sim.now - (self.last_heard or 0.0)
        if silence > self.interval:
            # At least one full interval passed without a heartbeat.
            self.missed += 1
            self._missed_counter.inc()
        if silence > self.timeout:
            self.suspected = True
            self.suspected_at = self.sim.now
            self._running = False
            self._suspicion_counter.inc()
            peer_alive = self.peer_host is not None and self.peer_host.is_up
            if peer_alive:
                self._false_suspicion_counter.inc()
            trace = self.sim.trace
            if trace.enabled_for("sttcp"):
                # Retroactive detection span: the silent interval itself,
                # [last evidence of life, suspicion].
                sid = trace.begin_span(
                    self.last_heard or 0.0, "sttcp", "detection", monitor=self.name
                )
                trace.emit(
                    self.sim.now, "sttcp", "suspect", monitor=self.name, silence=silence
                )
                trace.end_span(
                    self.sim.now, "sttcp", "detection", sid, silence=silence
                )
            self.on_suspect()
            return
        self._arm()


def heartbeats_sent_counter(sim: Any) -> Any:
    """The shared ``sttcp.hb.heartbeats_sent`` counter (for the senders)."""
    return sim.metrics.scope(HB_METRICS_SCOPE).counter("heartbeats_sent")

"""Timeout-based failure detection over the heartbeat stream (§4.4).

Both ends run a :class:`HeartbeatMonitor`: the backup watches the
primary's heartbeats (and ack replies), the primary watches the backup's
acks.  A peer is *suspected* after ``threshold`` consecutive intervals of
silence, so detection latency lies in
``[threshold·interval, (threshold+1)·interval)`` — matching the paper's
"with an HB every 5 sec, the backup will detect primary crash in 15 to 20
seconds depending on when exactly the failure occurs" (§6.2).

Suspicions may be wrong; combining the monitor with the power switch
(:mod:`repro.sttcp.power_switch`) converts wrong suspicions into correct
ones, giving the perfect failure detector ST-TCP requires (§3.2).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.tcp.timers import RestartableTimer


class HeartbeatMonitor:
    """Suspects a peer after N heartbeat intervals of silence."""

    def __init__(
        self,
        sim: Any,
        interval: float,
        threshold: int,
        on_suspect: Callable[[], None],
        name: str = "hb-monitor",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.sim = sim
        self.interval = interval
        self.threshold = threshold
        self.on_suspect = on_suspect
        self.name = name
        self.last_heard: Optional[float] = None
        self.suspected = False
        self.suspected_at: Optional[float] = None
        self._timer = RestartableTimer(sim, self._check, name)
        self._running = False

    @property
    def timeout(self) -> float:
        return self.threshold * self.interval

    def start(self) -> None:
        """Begin monitoring; the peer gets a full timeout of grace."""
        self._running = True
        self.last_heard = self.sim.now
        self.suspected = False
        self.suspected_at = None
        self._timer.start(self.interval)

    def stop(self) -> None:
        self._running = False
        self._timer.stop()

    def heard(self) -> None:
        """Record evidence of peer liveness (any channel message)."""
        self.last_heard = self.sim.now
        if self.suspected:
            # The protocol never un-suspects (suspicions are made correct
            # by the power switch); late messages are simply recorded.
            return

    def _check(self) -> None:
        if not self._running or self.suspected:
            return
        silence = self.sim.now - (self.last_heard or 0.0)
        if silence > self.timeout:
            self.suspected = True
            self.suspected_at = self.sim.now
            self._running = False
            trace = self.sim.trace
            if trace.enabled_for("sttcp"):
                # Retroactive detection span: the silent interval itself,
                # [last evidence of life, suspicion].
                sid = trace.begin_span(
                    self.last_heard or 0.0, "sttcp", "detection", monitor=self.name
                )
                trace.emit(
                    self.sim.now, "sttcp", "suspect", monitor=self.name, silence=silence
                )
                trace.end_span(
                    self.sim.now, "sttcp", "detection", sid, silence=silence
                )
            self.on_suspect()
            return
        self._timer.start(self.interval)

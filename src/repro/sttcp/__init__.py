"""ST-TCP: Server fault-Tolerant TCP — the paper's contribution.

A primary serves standard TCP clients; an active backup taps the byte
stream, shadows every connection (including sequence numbers), and takes
the connections over transparently when the primary crashes.

Entry point: :class:`STTCPServerPair` (or the engines directly for custom
deployments).
"""

from repro.sttcp.backup import (
    ROLE_ACTIVE,
    ROLE_PASSIVE,
    ROLE_TAKING_OVER,
    STTCPBackup,
)
from repro.sttcp.config import STTCPConfig
from repro.sttcp.failure_detector import HeartbeatMonitor
from repro.sttcp.group import STTCPServerGroup
from repro.sttcp.manager import FailoverMetrics, STTCPServerPair
from repro.sttcp.messages import (
    AckReply,
    BackupAck,
    ChannelMessage,
    Heartbeat,
    RetxData,
    RetxRequest,
    conn_key,
)
from repro.sttcp.power_switch import PowerSwitch
from repro.sttcp.primary import STTCPPrimary
from repro.sttcp.retention import SecondReceiveBuffer
from repro.sttcp.shadow import ShadowExtension

__all__ = [
    "AckReply",
    "BackupAck",
    "ChannelMessage",
    "FailoverMetrics",
    "Heartbeat",
    "HeartbeatMonitor",
    "PowerSwitch",
    "ROLE_ACTIVE",
    "ROLE_PASSIVE",
    "ROLE_TAKING_OVER",
    "RetxData",
    "RetxRequest",
    "STTCPBackup",
    "STTCPConfig",
    "STTCPPrimary",
    "STTCPServerGroup",
    "STTCPServerPair",
    "SecondReceiveBuffer",
    "ShadowExtension",
    "conn_key",
]

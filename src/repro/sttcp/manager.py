"""High-level assembly of an ST-TCP server pair.

:class:`STTCPServerPair` wires the primary and backup engines, launches
the (identical, deterministic) server application on both hosts, and
exposes failover metrics.  Topology-level plumbing — how the backup gets
to *see* the primary's traffic (hub promiscuity, or switched multicast
MACs with static ARP) — is the scenario builder's job
(:mod:`repro.harness.scenario`); this module is topology-agnostic.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.net.addresses import IPAddress
from repro.sttcp.backup import ROLE_ACTIVE, STTCPBackup
from repro.sttcp.config import STTCPConfig
from repro.sttcp.power_switch import PowerSwitch
from repro.sttcp.primary import STTCPPrimary


@dataclasses.dataclass
class FailoverMetrics:
    """What happened, when, during a failover (sim timestamps)."""

    primary_crashed_at: Optional[float]
    suspected_at: Optional[float]
    takeover_at: Optional[float]
    degraded_connections: int

    @property
    def detection_latency(self) -> Optional[float]:
        if self.primary_crashed_at is None or self.suspected_at is None:
            return None
        return self.suspected_at - self.primary_crashed_at

    @property
    def takeover_latency(self) -> Optional[float]:
        if self.primary_crashed_at is None or self.takeover_at is None:
            return None
        return self.takeover_at - self.primary_crashed_at


class STTCPServerPair:
    """A deployed primary/backup ST-TCP service."""

    def __init__(
        self,
        primary_host: Any,
        backup_host: Any,
        service_ip: IPAddress,
        service_port: int,
        config: Optional[STTCPConfig] = None,
        power_switch: Optional[PowerSwitch] = None,
        logger_client: Optional[Any] = None,
        backup_engine_factory: Optional[Any] = None,
    ) -> None:
        if primary_host.sim is not backup_host.sim:
            raise ConfigurationError("primary and backup must share a simulator")
        if service_ip not in primary_host.local_ips():
            raise ConfigurationError(
                f"service IP {service_ip} not configured on {primary_host.name}"
            )
        if service_ip not in backup_host.local_ips():
            raise ConfigurationError(
                f"service IP {service_ip} not configured on {backup_host.name}"
            )
        self.sim = primary_host.sim
        self.primary_host = primary_host
        self.backup_host = backup_host
        self.service_ip = service_ip
        self.service_port = service_port
        self.config = config or STTCPConfig()
        # The backup must be invisible until failover.
        backup_host.arp.suppress_ip(service_ip)
        primary_channel_ip = primary_host.interfaces[0].ip
        backup_channel_ip = backup_host.interfaces[0].ip
        self.primary_engine = STTCPPrimary(
            primary_host, service_ip, service_port, backup_channel_ip, self.config
        )
        engine_factory = backup_engine_factory or STTCPBackup
        self.backup_engine = engine_factory(
            backup_host,
            service_ip,
            service_port,
            primary_channel_ip,
            self.config,
            primary_host=primary_host,
            power_switch=power_switch,
            logger_client=logger_client,
        )
        self._server_processes: list = []

    def start_service(self, service_time: float = 0.0) -> None:
        """Launch the server application on both replicas and start the
        protocol engines."""
        from repro.apps.server import start_server

        self._server_processes = [
            start_server(self.primary_host, self.service_port, service_time=service_time),
            start_server(self.backup_host, self.service_port, service_time=service_time),
        ]
        self.primary_engine.start()
        self.backup_engine.start()

    @property
    def failed_over(self) -> bool:
        return self.backup_engine.role is ROLE_ACTIVE

    def failover_metrics(self) -> FailoverMetrics:
        return FailoverMetrics(
            primary_crashed_at=self.primary_host.crashed_at,
            suspected_at=self.backup_engine.detection_time,
            takeover_at=self.backup_engine.takeover_time,
            degraded_connections=len(self.backup_engine.degraded_connections),
        )
